#ifndef PULSE_MODEL_FITTING_H_
#define PULSE_MODEL_FITTING_H_

#include <vector>

#include "math/polynomial.h"
#include "util/result.h"

namespace pulse {

/// A (time, value) sample of a modeled attribute.
struct Sample {
  double t = 0.0;
  double value = 0.0;
};

/// Least-squares fit of a degree-`degree` polynomial to `samples`
/// (Vandermonde normal equations). Needs at least degree+1 samples.
/// Times are used as-is; callers who want segment-local coefficients
/// shift the samples before fitting.
Result<Polynomial> FitPolynomial(const std::vector<Sample>& samples,
                                 size_t degree);

/// Maximum absolute residual of `p` over `samples`: the paper's absolute
/// error metric between a model and the tuples it represents (Section IV).
double MaxAbsResidual(const Polynomial& p, const std::vector<Sample>& samples);

/// Root-mean-square residual of `p` over `samples`.
double RmsResidual(const Polynomial& p, const std::vector<Sample>& samples);

/// Incremental least-squares fitter over running moments: maintains the
/// Vandermonde normal-equation sums (s_k = sum t^k, b_k = sum v t^k) so
/// samples can arrive in micro-batches and each Fit() costs
/// O(degree^3) regardless of how many samples were absorbed.
///
/// The serving-relevant invariant: the moments are plain ordered sums,
/// so feeding the same samples in the same order yields bit-identical
/// state — and therefore bit-identical fits — no matter how the
/// sequence is split across Add/AddBatch calls. This is why the
/// micro-batcher's adaptive batch boundaries can never change model
/// coefficients (docs/SERVING.md).
class IncrementalFitter {
 public:
  explicit IncrementalFitter(size_t degree);

  void Add(const Sample& sample);
  void AddBatch(const Sample* samples, size_t n);
  void AddBatch(const std::vector<Sample>& samples) {
    AddBatch(samples.data(), samples.size());
  }

  size_t count() const { return count_; }
  size_t degree() const { return degree_; }

  /// Clears the accumulated moments (start a new piece).
  void Reset();

  /// Solves the normal equations over the accumulated moments. Needs at
  /// least degree+1 samples; NumericError when (numerically) singular.
  Result<Polynomial> Fit() const;

 private:
  size_t degree_;
  std::vector<double> s_;  // power sums t^k, k in [0, 2*degree]
  std::vector<double> b_;  // sums v * t^k, k in [0, degree]
  size_t count_ = 0;
};

/// Convenience: best constant fit (the mean value).
Result<Polynomial> FitConstant(const std::vector<Sample>& samples);

/// Convenience: straight-line fit.
Result<Polynomial> FitLine(const std::vector<Sample>& samples);

}  // namespace pulse

#endif  // PULSE_MODEL_FITTING_H_
