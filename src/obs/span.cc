#include "obs/span.h"

namespace pulse {
namespace obs {

namespace {
thread_local MetricsRegistry* g_current_registry = nullptr;
thread_local uint64_t g_registry_epoch = 0;
}  // namespace

MetricsRegistry* CurrentRegistry() {
  return g_current_registry != nullptr ? g_current_registry
                                       : DefaultRegistry();
}

uint64_t CurrentRegistryEpoch() { return g_registry_epoch; }

ScopedMetricsRegistry::ScopedMetricsRegistry(MetricsRegistry* registry)
    : previous_(g_current_registry) {
  g_current_registry = registry;
  ++g_registry_epoch;
}

ScopedMetricsRegistry::~ScopedMetricsRegistry() {
  g_current_registry = previous_;
  ++g_registry_epoch;
}

}  // namespace obs
}  // namespace pulse
