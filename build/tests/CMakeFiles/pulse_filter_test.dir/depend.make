# Empty dependencies file for pulse_filter_test.
# This may be replaced when dependencies are built.
