#ifndef PULSE_CORE_PULSE_PLAN_H_
#define PULSE_CORE_PULSE_PLAN_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/operators/pulse_operator.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "util/result.h"

namespace pulse {

/// A dataflow plan of continuous-time operators. Mirrors the discrete
/// engine's QueryPlan but routes segments: Pulse performs operator-by-
/// operator transformation of a stream query into "an internal query plan
/// comprised of simultaneous equation systems" (paper Section III-C), and
/// this is that plan.
class PulsePlan {
 public:
  using NodeId = size_t;

  struct Edge {
    NodeId to = 0;
    size_t port = 0;
  };

  PulsePlan() = default;
  PulsePlan(PulsePlan&&) = default;
  PulsePlan& operator=(PulsePlan&&) = default;

  NodeId AddOperator(std::shared_ptr<PulseOperator> op);
  Status Connect(NodeId from, NodeId to, size_t port = 0);
  Status BindSource(const std::string& stream, NodeId to, size_t port = 0);

  size_t num_nodes() const { return nodes_.size(); }
  PulseOperator* node(NodeId id) const { return nodes_[id].get(); }
  const std::vector<Edge>& downstream(NodeId id) const { return edges_[id]; }
  const std::vector<Edge>& source_bindings(const std::string& stream) const;
  std::vector<std::string> source_names() const;
  std::vector<NodeId> SinkNodes() const;
  Result<std::vector<NodeId>> TopologicalOrder() const;

  /// The node feeding input `port` of `node`, or nullopt when that port
  /// is fed by an external stream. Used by whole-query bound inversion to
  /// walk upstream.
  std::optional<NodeId> UpstreamOf(NodeId node, size_t port) const;

 private:
  std::vector<std::shared_ptr<PulseOperator>> nodes_;
  std::vector<std::vector<Edge>> edges_;
  std::map<std::string, std::vector<Edge>> sources_;
};

/// Single-threaded push executor for a PulsePlan: drives one segment
/// through the DAG to quiescence, collecting sink segments.
class PulseExecutor {
 public:
  static Result<PulseExecutor> Make(PulsePlan plan);

  /// Pushes a segment on the named source stream. Assigns the segment an
  /// id when it has none.
  Status PushSegment(const std::string& stream, Segment segment);

  /// End-of-stream: flushes every operator.
  Status Finish();

  std::vector<Segment>& output() { return output_; }
  std::vector<Segment> TakeOutput();
  uint64_t total_output() const { return total_output_; }

  void set_output_callback(std::function<void(const Segment&)> cb) {
    callback_ = std::move(cb);
  }
  void set_discard_output(bool discard) { discard_output_ = discard; }

  /// Installs `pool` (nullptr = serial) on every operator in the plan so
  /// fan-out-capable operators shard their solves across it. The pool
  /// must outlive the executor's last Push/Finish call.
  void set_thread_pool(ThreadPool* pool);

  /// Installs `cache` (nullptr = uncached) on every operator in the plan
  /// so selective operators memoize row solves. The cache must outlive
  /// the executor's last Push/Finish call.
  void set_solve_cache(SolveCache* cache);

  /// Publishes every operator's counters into `registry` under the
  /// unified op/<name>/... naming scheme (docs/OBSERVABILITY.md) and
  /// enables per-operator Process latency histograms
  /// (op/<name>/process_ns). The registry must outlive the executor
  /// (same rule as the pool and cache); the views this call binds are
  /// released by the executor's destruction. Pass nullptr to detach.
  void set_metrics_registry(obs::MetricsRegistry* registry);
  obs::MetricsRegistry* metrics_registry() const { return registry_; }

  const PulsePlan& plan() const { return plan_; }
  PulsePlan& plan() { return plan_; }

 private:
  explicit PulseExecutor(PulsePlan plan) : plan_(std::move(plan)) {}

  Status Drain(PulsePlan::NodeId from, SegmentBatch segments);
  void DeliverToSink(const Segment& segment);
  // One Process call, timed into the operator's processing_ns counter
  // and its op/<name>/process_ns histogram when a registry is attached.
  Status RunNode(PulsePlan::NodeId id, size_t port, const Segment& segment,
                 SegmentBatch* out);

  PulsePlan plan_;
  std::vector<PulsePlan::NodeId> topo_order_;
  std::vector<Segment> output_;
  uint64_t total_output_ = 0;
  std::function<void(const Segment&)> callback_;
  bool discard_output_ = false;
  obs::MetricsRegistry* registry_ = nullptr;
  obs::ViewGroup views_;
  // Parallel to plan_ nodes; resolved once in set_metrics_registry so
  // the Process hot path never does a name lookup.
  std::vector<obs::Histogram*> node_hists_;
};

}  // namespace pulse

#endif  // PULSE_CORE_PULSE_PLAN_H_
