// Fault-injection tests for the tiered segment store (docs/STORAGE.md):
// every corruption scenario — torn final record, truncated log,
// bit-flipped checksum, missing checkpoint, checkpoint newer than the
// log — must recover to the last consistent prefix with a structured
// report, never a crash or a silent divergence. The kill-and-restore
// tests prove recovered runtime state answers byte-identically to an
// uninterrupted run.
#include "store/recovery.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "store/checkpoint.h"
#include "store/checksum.h"
#include "store/log.h"
#include "store/store.h"
#include "testing/plan_gen.h"

namespace pulse {
namespace store {
namespace {

class StoreRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string templ =
        (std::filesystem::temp_directory_path() / "pulse_store_test_XXXXXX")
            .string();
    ASSERT_NE(mkdtemp(templ.data()), nullptr);
    dir_ = templ;
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string LogPath() const { return dir_ + "/segments.log"; }
  std::string CheckpointPath() const { return dir_ + "/checkpoint.bin"; }

  std::string ReadFile(const std::string& path) const {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }

  void WriteFile(const std::string& path, const std::string& bytes) const {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::string dir_;
};

Segment MakeSeg(Key key, double lo, double hi, double a0, double a1) {
  Segment s(key, Interval::ClosedOpen(lo, hi));
  s.attributes["x"] = Polynomial({a0, a1});
  return s;
}

// Appends `count` segments on stream "s" and returns their encoded
// record images (byte-identical to what the writer persisted, so tests
// can compute exact corruption offsets).
std::vector<std::string> AppendSegments(SegmentStore* store, int count) {
  std::vector<std::string> images;
  for (int i = 0; i < count; ++i) {
    Segment seg = MakeSeg(7, i, i + 1.0, i * 1.0, 0.5);
    EXPECT_TRUE(store->AppendSegment("s", seg).ok());
    LogRecord record;
    record.type = LogRecordType::kSegment;
    record.stream = "s";
    record.segment = seg;
    std::string image;
    EncodeLogRecord(record, &image);
    images.push_back(std::move(image));
  }
  return images;
}

TEST_F(StoreRecoveryTest, WriterRoundTrip) {
  {
    Result<SegmentStore> store = SegmentStore::Open({.dir = dir_});
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    AppendSegments(&*store, 3);
    Tuple t(1.5, {Value(int64_t{7}), Value(2.5)});
    ASSERT_TRUE(store->AppendTuple("s", t).ok());
    ASSERT_TRUE(store->Sync().ok());
    EXPECT_EQ(store->log_records(), 4u);
  }
  Result<LogScan> scan = ScanLogFile(LogPath());
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->clean());
  ASSERT_EQ(scan->records.size(), 4u);
  EXPECT_EQ(scan->records[0].type, LogRecordType::kSegment);
  EXPECT_EQ(scan->records[3].type, LogRecordType::kTuple);
  EXPECT_EQ(scan->records[3].tuple.timestamp, 1.5);
  for (const LogRecord& r : scan->records) EXPECT_EQ(r.stream, "s");
}

TEST_F(StoreRecoveryTest, CheckpointRoundTripAndAtomicReplace) {
  Checkpoint ckp;
  ckp.log_records = 42;
  ckp.log_bytes = 4242;
  ckp.delivered_outputs = 7;
  ckp.output_hash = 0xdeadbeefcafef00dull;
  ckp.finished = true;
  ASSERT_TRUE(WriteCheckpointFile(CheckpointPath(), ckp).ok());
  Result<Checkpoint> got = ReadCheckpointFile(CheckpointPath());
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->log_records, 42u);
  EXPECT_EQ(got->delivered_outputs, 7u);
  EXPECT_EQ(got->output_hash, ckp.output_hash);
  EXPECT_TRUE(got->finished);
  // Replacing leaves no .tmp behind and reads back the new image.
  ckp.log_records = 43;
  ckp.finished = false;
  ASSERT_TRUE(WriteCheckpointFile(CheckpointPath(), ckp).ok());
  EXPECT_FALSE(std::filesystem::exists(CheckpointPath() + ".tmp"));
  got = ReadCheckpointFile(CheckpointPath());
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->log_records, 43u);
  EXPECT_FALSE(got->finished);
}

TEST_F(StoreRecoveryTest, ReadMissingCheckpointIsNotFound) {
  Result<Checkpoint> got = ReadCheckpointFile(CheckpointPath());
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kNotFound);
}

TEST_F(StoreRecoveryTest, OpenRefusesDirectoryWithExistingLog) {
  {
    Result<SegmentStore> store = SegmentStore::Open({.dir = dir_});
    ASSERT_TRUE(store.ok());
    AppendSegments(&*store, 1);
    ASSERT_TRUE(store->Sync().ok());
  }
  Result<SegmentStore> again = SegmentStore::Open({.dir = dir_});
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(StoreRecoveryTest, RecoverFreshDirectory) {
  Result<RecoveredStore> recovered = SegmentStore::Recover({.dir = dir_});
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered->report.log_missing);
  EXPECT_FALSE(recovered->report.checkpoint_found);
  EXPECT_TRUE(recovered->records.empty());
  // The recovered store is immediately usable.
  AppendSegments(&recovered->store, 2);
  EXPECT_EQ(recovered->store.log_records(), 2u);
}

// Scenario 1: the process died mid-append — the final record is torn.
TEST_F(StoreRecoveryTest, TornFinalRecordIsTruncated) {
  {
    Result<SegmentStore> store = SegmentStore::Open({.dir = dir_});
    ASSERT_TRUE(store.ok());
    AppendSegments(&*store, 3);
    ASSERT_TRUE(store->Sync().ok());
  }
  const std::string intact = ReadFile(LogPath());
  // A torn append: frame + half the payload of a fourth record.
  LogRecord extra;
  extra.type = LogRecordType::kSegment;
  extra.stream = "s";
  extra.segment = MakeSeg(7, 3.0, 4.0, 1.0, 0.5);
  std::string image;
  EncodeLogRecord(extra, &image);
  WriteFile(LogPath(), intact + image.substr(0, image.size() / 2));

  Result<RecoveredStore> recovered = SegmentStore::Recover({.dir = dir_});
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->report.tail, LogTailState::kTornRecord);
  EXPECT_EQ(recovered->records.size(), 3u);
  EXPECT_GT(recovered->report.truncated_bytes, 0u);
  EXPECT_FALSE(recovered->report.clean());
  // The file was repaired to the consistent prefix...
  EXPECT_EQ(std::filesystem::file_size(LogPath()), intact.size());
  // ...and appending resumes cleanly from there.
  AppendSegments(&recovered->store, 1);
  ASSERT_TRUE(recovered->store.Sync().ok());
  Result<LogScan> rescan = ScanLogFile(LogPath());
  ASSERT_TRUE(rescan.ok());
  EXPECT_TRUE(rescan->clean());
  EXPECT_EQ(rescan->records.size(), 4u);
}

// Scenario 2: the log lost records the checkpoint already covered
// (e.g. the log device rolled back further than the checkpoint).
TEST_F(StoreRecoveryTest, CheckpointNewerThanLogIsFlagged) {
  std::vector<std::string> images;
  {
    Result<SegmentStore> store = SegmentStore::Open({.dir = dir_});
    ASSERT_TRUE(store.ok());
    images = AppendSegments(&*store, 4);
    store->NoteDelivered(MakeSeg(7, 0.0, 1.0, 0.0, 0.5));
    ASSERT_TRUE(store->WriteCheckpoint(false).ok());
  }
  // Drop the last two records: the log is now behind the checkpoint.
  const std::string full = ReadFile(LogPath());
  const size_t keep = EncodeLogHeader().size() + images[0].size() +
                      images[1].size();
  WriteFile(LogPath(), full.substr(0, keep));

  Result<RecoveredStore> recovered = SegmentStore::Recover({.dir = dir_});
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered->report.checkpoint_found);
  EXPECT_TRUE(recovered->report.checkpoint_ahead);
  EXPECT_FALSE(recovered->report.clean());
  // The delivered watermark is ignored: everything will be redelivered.
  EXPECT_EQ(recovered->report.effective_delivered, 0u);
  EXPECT_EQ(recovered->records.size(), 2u);
  EXPECT_NE(recovered->report.ToString().find("ahead of log"),
            std::string::npos);
}

// Scenario 3: a bit flip in the middle of the log.
TEST_F(StoreRecoveryTest, BitFlippedChecksumStopsAtLastConsistentRecord) {
  std::vector<std::string> images;
  {
    Result<SegmentStore> store = SegmentStore::Open({.dir = dir_});
    ASSERT_TRUE(store.ok());
    images = AppendSegments(&*store, 4);
    ASSERT_TRUE(store->Sync().ok());
  }
  std::string bytes = ReadFile(LogPath());
  // Flip one payload bit inside record 1 (0-based): everything from
  // that record on is unusable, record 0 survives.
  const size_t offset =
      EncodeLogHeader().size() + images[0].size() + 8 + images[1].size() / 3;
  bytes[offset] = static_cast<char>(bytes[offset] ^ 0x40);
  WriteFile(LogPath(), bytes);

  Result<RecoveredStore> recovered = SegmentStore::Recover({.dir = dir_});
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->report.tail, LogTailState::kBadChecksum);
  EXPECT_EQ(recovered->records.size(), 1u);
  EXPECT_EQ(recovered->report.truncated_bytes,
            images[1].size() + images[2].size() + images[3].size());
  Result<LogScan> rescan = ScanLogFile(LogPath());
  ASSERT_TRUE(rescan.ok());
  EXPECT_TRUE(rescan->clean());
  EXPECT_EQ(rescan->records.size(), 1u);
}

// Scenario 4: no checkpoint at all — replay everything, deliver
// everything.
TEST_F(StoreRecoveryTest, MissingCheckpointRedeliversAll) {
  {
    Result<SegmentStore> store = SegmentStore::Open({.dir = dir_});
    ASSERT_TRUE(store.ok());
    AppendSegments(&*store, 3);
    ASSERT_TRUE(store->Sync().ok());
  }
  Result<RecoveredStore> recovered = SegmentStore::Recover({.dir = dir_});
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_FALSE(recovered->report.checkpoint_found);
  EXPECT_EQ(recovered->report.effective_delivered, 0u);
  EXPECT_EQ(recovered->records.size(), 3u);
  EXPECT_NE(recovered->report.ToString().find("checkpoint: missing"),
            std::string::npos);
}

// Scenario 5: checkpoint present but corrupt.
TEST_F(StoreRecoveryTest, CorruptCheckpointIsReportedNotTrusted) {
  {
    Result<SegmentStore> store = SegmentStore::Open({.dir = dir_});
    ASSERT_TRUE(store.ok());
    AppendSegments(&*store, 2);
    store->NoteDelivered(MakeSeg(7, 0.0, 1.0, 0.0, 0.5));
    ASSERT_TRUE(store->WriteCheckpoint(false).ok());
  }
  std::string bytes = ReadFile(CheckpointPath());
  bytes[bytes.size() - 3] = static_cast<char>(bytes[bytes.size() - 3] ^ 0x01);
  WriteFile(CheckpointPath(), bytes);

  Result<RecoveredStore> recovered = SegmentStore::Recover({.dir = dir_});
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered->report.checkpoint_found);
  EXPECT_FALSE(recovered->report.checkpoint_error.empty());
  EXPECT_EQ(recovered->report.effective_delivered, 0u);
  EXPECT_FALSE(recovered->report.clean());
  EXPECT_NE(recovered->report.ToString().find("unreadable"),
            std::string::npos);
}

TEST_F(StoreRecoveryTest, RecoveredStoreRebuildsTimelinesAndTrees) {
  {
    Result<SegmentStore> store = SegmentStore::Open({.dir = dir_});
    ASSERT_TRUE(store.ok());
    AppendSegments(&*store, 5);
    ASSERT_TRUE(store->Sync().ok());
  }
  Result<RecoveredStore> recovered = SegmentStore::Recover({.dir = dir_});
  ASSERT_TRUE(recovered.ok());
  SegmentStore& store = recovered->store;
  ASSERT_EQ(store.KeysOf("s"), std::vector<Key>{7});
  const std::vector<Segment>* timeline = store.Timeline("s", 7);
  ASSERT_NE(timeline, nullptr);
  EXPECT_EQ(timeline->size(), 5u);
  // x(t) = i + 0.5 (t - i) on [i, i+1): integral over [0, 5) is exact.
  RangeAggregate agg = store.QueryRange("s", 7, "x", 0.0, 5.0);
  EXPECT_EQ(agg.count, 5u);
  EXPECT_NEAR(agg.coverage, 5.0, 1e-12);
  double expected_integral = 0.0;
  for (int i = 0; i < 5; ++i) {
    // ∫_i^{i+1} (i + 0.5 t) dt — AppendSegments builds a0 = i, a1 = 0.5.
    expected_integral += i + 0.5 * (i + 0.5);
  }
  EXPECT_NEAR(agg.integral, expected_integral, 1e-9);
}

TEST_F(StoreRecoveryTest, BackfillPatchesClosedEpochAndRepublishes) {
  Result<SegmentStore> store =
      SegmentStore::Open({.dir = dir_, .epoch_length = 1.0});
  ASSERT_TRUE(store.ok());
  AppendSegments(&*store, 4);  // [0,1) [1,2) [2,3) [3,4)
  RangeAggregate before = store->QueryRange("s", 7, "x", 1.0, 2.0);
  // A late correction rewrites [1.25, 1.75) to the constant 100.
  Segment patch = MakeSeg(7, 1.25, 1.75, 100.0, 0.0);
  Result<BackfillResult> result = store->Backfill("s", patch);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->affected.lo, 1.25);
  // Only epoch [1, 2) is affected at epoch_length 1.0.
  ASSERT_EQ(result->republished.size(), 1u);
  EXPECT_EQ(result->republished[0].epoch, 1);
  EXPECT_EQ(result->republished[0].attribute, "x");
  const RangeAggregate& after = result->republished[0].aggregate;
  EXPECT_GT(after.max, before.max);
  EXPECT_NEAR(after.max, 100.0, 1e-12);
  // The patched epoch's integral reflects the rewrite exactly:
  // old ∫ over [1.25, 1.75) was ∫ (1 + 0.5 t) dt, new is 100 * 0.5.
  const double old_piece = 0.5 * 1.0 + 0.5 * (1.75 * 1.75 - 1.25 * 1.25) / 2;
  EXPECT_NEAR(after.integral, before.integral - old_piece + 50.0, 1e-9);
  // The patch survives recovery: it is in the log as a kBackfill record.
  ASSERT_TRUE(store->Sync().ok());
  Result<LogScan> scan = ScanLogFile(LogPath());
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 5u);
  EXPECT_EQ(scan->records[4].type, LogRecordType::kBackfill);
}

// ---------------------------------------------------------------------
// Kill-and-restore: recovered runtime state must answer byte-identically
// to an uninterrupted run (segment ids excluded — execution accidents).

bool SameSegmentModuloId(const Segment& a, const Segment& b) {
  if (a.key != b.key || a.range.lo != b.range.lo ||
      a.range.hi != b.range.hi || a.range.lo_open != b.range.lo_open ||
      a.range.hi_open != b.range.hi_open ||
      a.attributes.size() != b.attributes.size() ||
      a.unmodeled != b.unmodeled) {
    return false;
  }
  for (const auto& [name, poly] : a.attributes) {
    auto it = b.attributes.find(name);
    if (it == b.attributes.end()) return false;
    if (poly.degree() != it->second.degree()) return false;
    for (size_t i = 0; i <= poly.degree(); ++i) {
      if (poly.coeff(i) != it->second.coeff(i)) return false;
    }
  }
  return true;
}

void ExpectSameOutputs(const std::vector<Segment>& base,
                       const std::vector<Segment>& got) {
  ASSERT_EQ(base.size(), got.size());
  for (size_t i = 0; i < base.size(); ++i) {
    EXPECT_TRUE(SameSegmentModuloId(base[i], got[i]))
        << "output segment " << i << " differs";
  }
}

struct Feed {
  testing::GeneratedCase kase;
  std::vector<std::pair<std::string, Segment>> items;  // (stream, segment)
};

Feed MakeFeed(uint64_t seed) {
  Result<testing::GeneratedCase> kase = testing::GenerateCase(seed);
  EXPECT_TRUE(kase.ok());
  Feed feed;
  feed.kase = std::move(*kase);
  for (const auto& workload : feed.kase.workloads) {
    for (Segment& s : workload.ToSegments()) {
      feed.items.push_back({workload.name, std::move(s)});
    }
  }
  std::stable_sort(feed.items.begin(), feed.items.end(),
                   [](const auto& a, const auto& b) {
                     return a.second.range.lo < b.second.range.lo;
                   });
  return feed;
}

std::vector<Segment> RunUninterrupted(const Feed& feed) {
  HistoricalRuntime::Options options;
  options.collect_outputs = true;
  Result<HistoricalRuntime> rt =
      HistoricalRuntime::Make(feed.kase.spec, options);
  EXPECT_TRUE(rt.ok());
  for (const auto& [stream, segment] : feed.items) {
    EXPECT_TRUE(rt->ProcessSegment(stream, segment).ok());
  }
  EXPECT_TRUE(rt->Finish().ok());
  return rt->TakeOutputSegments();
}

TEST_F(StoreRecoveryTest, KillRestoreHistoricalIsByteIdentical) {
  const Feed feed = MakeFeed(11);
  const std::vector<Segment> base = RunUninterrupted(feed);
  ASSERT_FALSE(feed.items.empty());
  const size_t k = feed.items.size() / 2;

  std::vector<Segment> outputs;
  {
    Result<SegmentStore> store = SegmentStore::Open({.dir = dir_});
    ASSERT_TRUE(store.ok());
    HistoricalRuntime::Options options;
    options.collect_outputs = true;
    Result<HistoricalRuntime> rt =
        HistoricalRuntime::Make(feed.kase.spec, options);
    ASSERT_TRUE(rt.ok());
    for (size_t i = 0; i < k; ++i) {
      const auto& [stream, segment] = feed.items[i];
      ASSERT_TRUE(store->AppendSegment(stream, segment).ok());
      ASSERT_TRUE(rt->ProcessSegment(stream, segment).ok());
    }
    outputs = rt->TakeOutputSegments();
    for (const Segment& s : outputs) store->NoteDelivered(s);
    ASSERT_TRUE(store->WriteCheckpoint(false).ok());
    // Scope exit = the crash: no Finish, no orderly close.
  }

  Result<RecoveredHistorical> recovered =
      RecoverHistorical(feed.kase.spec, {}, {.dir = dir_});
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered->state_verified) << recovered->verify_detail;
  EXPECT_TRUE(recovered->report.clean());
  for (Segment& s : recovered->pending_outputs) {
    outputs.push_back(std::move(s));
  }
  for (size_t i = k; i < feed.items.size(); ++i) {
    const auto& [stream, segment] = feed.items[i];
    ASSERT_TRUE(recovered->store.AppendSegment(stream, segment).ok());
    ASSERT_TRUE(recovered->runtime.ProcessSegment(stream, segment).ok());
  }
  ASSERT_TRUE(recovered->runtime.Finish().ok());
  for (Segment& s : recovered->runtime.TakeOutputSegments()) {
    outputs.push_back(std::move(s));
  }
  ExpectSameOutputs(base, outputs);
}

TEST_F(StoreRecoveryTest, KillRestoreShardedIsByteIdentical) {
  const Feed feed = MakeFeed(23);
  const std::vector<Segment> base = RunUninterrupted(feed);
  ASSERT_FALSE(feed.items.empty());
  const size_t k = feed.items.size() / 3;

  std::vector<Segment> outputs;
  {
    Result<SegmentStore> store = SegmentStore::Open({.dir = dir_});
    ASSERT_TRUE(store.ok());
    shard::ShardedRuntimeOptions options;
    options.num_shards = 2;
    options.runtime.collect_outputs = true;
    Result<shard::ShardedRuntime> rt =
        shard::ShardedRuntime::Make(feed.kase.spec, std::move(options));
    ASSERT_TRUE(rt.ok());
    for (size_t i = 0; i < k; ++i) {
      const auto& [stream, segment] = feed.items[i];
      ASSERT_TRUE(store->AppendSegment(stream, segment).ok());
      ASSERT_TRUE(rt->ProcessSegment(stream, segment).ok());
    }
    // Barrier makes the released output prefix deterministic — the
    // prerequisite for a mid-run sharded checkpoint.
    ASSERT_TRUE(rt->Barrier().ok());
    outputs = rt->TakeOutputSegments();
    for (const Segment& s : outputs) store->NoteDelivered(s);
    ASSERT_TRUE(store->WriteCheckpoint(false).ok());
  }

  shard::ShardedRuntimeOptions options;
  options.num_shards = 2;
  Result<RecoveredSharded> recovered =
      RecoverSharded(feed.kase.spec, std::move(options), {.dir = dir_});
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered->state_verified) << recovered->verify_detail;
  for (Segment& s : recovered->pending_outputs) {
    outputs.push_back(std::move(s));
  }
  for (size_t i = k; i < feed.items.size(); ++i) {
    const auto& [stream, segment] = feed.items[i];
    ASSERT_TRUE(recovered->store.AppendSegment(stream, segment).ok());
    ASSERT_TRUE(recovered->runtime.ProcessSegment(stream, segment).ok());
  }
  ASSERT_TRUE(recovered->runtime.Finish().ok());
  for (Segment& s : recovered->runtime.TakeOutputSegments()) {
    outputs.push_back(std::move(s));
  }
  ExpectSameOutputs(base, outputs);
}

// A finished checkpoint restores the post-Finish state: recovery
// replays, Finishes, and the pending outputs equal the full run's.
TEST_F(StoreRecoveryTest, FinishedCheckpointRestoresFinalState) {
  const Feed feed = MakeFeed(5);
  const std::vector<Segment> base = RunUninterrupted(feed);

  {
    Result<SegmentStore> store = SegmentStore::Open({.dir = dir_});
    ASSERT_TRUE(store.ok());
    for (const auto& [stream, segment] : feed.items) {
      ASSERT_TRUE(store->AppendSegment(stream, segment).ok());
    }
    ASSERT_TRUE(store->WriteCheckpoint(/*finished=*/true).ok());
  }
  Result<RecoveredHistorical> recovered =
      RecoverHistorical(feed.kase.spec, {}, {.dir = dir_});
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered->state_verified) << recovered->verify_detail;
  EXPECT_TRUE(recovered->report.checkpoint.finished);
  ExpectSameOutputs(base, recovered->pending_outputs);
}

}  // namespace
}  // namespace store
}  // namespace pulse
