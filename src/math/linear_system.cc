#include "math/linear_system.h"

#include <cmath>

#include "util/logging.h"

namespace pulse {

namespace {
constexpr double kSingularEpsilon = 1e-12;
}  // namespace

Result<std::vector<double>> SolveLinearSystem(Matrix a,
                                              std::vector<double> b) {
  const size_t n = a.rows();
  if (a.cols() != n || b.size() != n) {
    return Status::InvalidArgument("SolveLinearSystem: shape mismatch");
  }
  // Forward elimination with partial pivoting.
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    double best = std::abs(a.At(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      const double v = std::abs(a.At(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < kSingularEpsilon) {
      return Status::NumericError("SolveLinearSystem: singular matrix");
    }
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(a.At(col, c), a.At(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    const double inv = 1.0 / a.At(col, col);
    for (size_t r = col + 1; r < n; ++r) {
      const double factor = a.At(r, col) * inv;
      if (factor == 0.0) continue;
      a.At(r, col) = 0.0;
      for (size_t c = col + 1; c < n; ++c) {
        a.At(r, c) -= factor * a.At(col, c);
      }
      b[r] -= factor * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (size_t r = n; r-- > 0;) {
    double acc = b[r];
    for (size_t c = r + 1; c < n; ++c) acc -= a.At(r, c) * x[c];
    x[r] = acc / a.At(r, r);
  }
  return x;
}

Result<LuDecomposition> LuDecompose(Matrix a) {
  const size_t n = a.rows();
  if (a.cols() != n) {
    return Status::InvalidArgument("LuDecompose: matrix not square");
  }
  LuDecomposition out;
  out.perm.resize(n);
  for (size_t i = 0; i < n; ++i) out.perm[i] = i;

  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    double best = std::abs(a.At(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      const double v = std::abs(a.At(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < kSingularEpsilon) {
      return Status::NumericError("LuDecompose: singular matrix");
    }
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(a.At(col, c), a.At(pivot, c));
      std::swap(out.perm[col], out.perm[pivot]);
      out.permutation_sign = -out.permutation_sign;
    }
    const double inv = 1.0 / a.At(col, col);
    for (size_t r = col + 1; r < n; ++r) {
      const double factor = a.At(r, col) * inv;
      a.At(r, col) = factor;  // store L strictly below the diagonal
      for (size_t c = col + 1; c < n; ++c) {
        a.At(r, c) -= factor * a.At(col, c);
      }
    }
  }
  out.lu = std::move(a);
  return out;
}

Result<std::vector<double>> LuDecomposition::Solve(
    const std::vector<double>& b) const {
  const size_t n = lu.rows();
  if (b.size() != n) {
    return Status::InvalidArgument("LuDecomposition::Solve: shape mismatch");
  }
  // Apply permutation, then L y = P b (forward), then U x = y (backward).
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) y[i] = b[perm[i]];
  for (size_t r = 1; r < n; ++r) {
    double acc = y[r];
    for (size_t c = 0; c < r; ++c) acc -= lu.At(r, c) * y[c];
    y[r] = acc;
  }
  for (size_t r = n; r-- > 0;) {
    double acc = y[r];
    for (size_t c = r + 1; c < n; ++c) acc -= lu.At(r, c) * y[c];
    const double d = lu.At(r, r);
    if (std::abs(d) < kSingularEpsilon) {
      return Status::NumericError("LuDecomposition::Solve: zero pivot");
    }
    y[r] = acc / d;
  }
  return y;
}

double LuDecomposition::Determinant() const {
  double det = permutation_sign;
  for (size_t i = 0; i < lu.rows(); ++i) det *= lu.At(i, i);
  return det;
}

Result<std::vector<double>> SolveLeastSquares(const Matrix& a,
                                              const std::vector<double>& b) {
  if (a.rows() < a.cols()) {
    return Status::InvalidArgument(
        "SolveLeastSquares: underdetermined system (rows < cols)");
  }
  if (a.rows() != b.size()) {
    return Status::InvalidArgument("SolveLeastSquares: shape mismatch");
  }
  const Matrix at = a.Transpose();
  const Matrix normal = at * a;
  const std::vector<double> rhs = at * b;
  return SolveLinearSystem(normal, rhs);
}

Result<Matrix> Invert(const Matrix& a) {
  PULSE_ASSIGN_OR_RETURN(LuDecomposition lu, LuDecompose(a));
  const size_t n = a.rows();
  Matrix inv(n, n);
  std::vector<double> e(n, 0.0);
  for (size_t c = 0; c < n; ++c) {
    e[c] = 1.0;
    PULSE_ASSIGN_OR_RETURN(std::vector<double> col, lu.Solve(e));
    for (size_t r = 0; r < n; ++r) inv.At(r, c) = col[r];
    e[c] = 0.0;
  }
  return inv;
}

}  // namespace pulse
