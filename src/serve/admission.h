#ifndef PULSE_SERVE_ADMISSION_H_
#define PULSE_SERVE_ADMISSION_H_

#include <array>
#include <cstdint>
#include <cstddef>

#include "obs/metrics.h"

namespace pulse {
namespace serve {

/// Interval-p99 view over a (possibly shared) latency histogram: each
/// Sample() takes the delta of the bucket counts since the previous
/// sample, so recovery shows up immediately instead of being averaged
/// away by the cumulative distribution. When no new observations arrived
/// the signal reads 0 (stale, not elevated) — an idle solver must never
/// pin a controller in its degraded state. Shared by the load-shed
/// admission controller and the precision controller below.
class IntervalLatencySampler {
 public:
  /// `histogram` may be null (no latency signal); it must outlive the
  /// sampler.
  explicit IntervalLatencySampler(const obs::Histogram* histogram);

  /// Re-reads the histogram; returns the fresh interval p99 (ns).
  double Sample();
  /// Last sampled interval p99 (ns); 0 before the first sample.
  double p99_ns() const { return p99_ns_; }

 private:
  const obs::Histogram* histogram_;
  std::array<uint64_t, obs::Histogram::kNumBuckets> last_buckets_{};
  uint64_t last_count_ = 0;
  double p99_ns_ = 0.0;
};

/// Load-shedding thresholds. Both signals use watermark hysteresis so
/// the controller does not flap at the boundary: shedding starts above
/// the high mark and stops only below the low mark.
struct AdmissionOptions {
  /// Master switch; disabled means every well-formed item is admitted
  /// subject only to the queue policy (the lossless configuration the
  /// serving differential runs under).
  bool enabled = true;
  /// Queue-depth signal: fraction of the session's total queue capacity.
  double queue_high_watermark = 0.90;
  double queue_low_watermark = 0.50;
  /// Solver-latency signal: interval p99 of the session runtime's
  /// span/runtime/push_segment histogram, in nanoseconds.
  uint64_t latency_high_ns = 50'000'000;  // 50 ms
  uint64_t latency_low_ns = 10'000'000;   // 10 ms
  /// Admissions between latency re-samples (sampling reads 2 KiB of
  /// bucket counters; once per admission would dominate the hot path).
  uint64_t sample_every = 64;
};

enum class AdmitDecision : uint8_t {
  kAdmit = 0,
  /// Shed because queue depth is above the high watermark.
  kShedQueue = 1,
  /// Shed because solver latency p99 is above the high threshold.
  kShedLatency = 2,
};

/// Admission controller for one session. Keyed on the two overload
/// signals the ISSUE names: aggregate ingest-queue depth (memory /
/// queueing-delay pressure) and solver latency (the downstream stage's
/// actual service time, read from the obs histogram the runtime already
/// maintains). Single-threaded: called only from the session reader.
class AdmissionController {
 public:
  /// `latency` may be null (no latency signal, queue depth only); it
  /// must outlive the controller.
  AdmissionController(AdmissionOptions options,
                      const obs::Histogram* latency);

  /// Decision for one arriving frame given current aggregate depth.
  AdmitDecision Admit(size_t total_depth, size_t total_capacity);

  bool overloaded() const { return queue_overloaded_ || latency_overloaded_; }
  /// Last sampled interval p99 (ns); 0 before the first sample.
  double interval_p99_ns() const { return sampler_.p99_ns(); }

 private:
  void ResampleLatency();

  AdmissionOptions options_;
  IntervalLatencySampler sampler_;
  uint64_t admits_since_sample_ = 0;
  bool queue_overloaded_ = false;
  bool latency_overloaded_ = false;
};

/// Precision-stage thresholds (docs/PRECISION.md). The stage sits
/// *below* the load-shed controller: its watermarks trigger earlier
/// (widen at 0.60 of queue capacity vs shed at 0.90), so under rising
/// pressure the system first trades accuracy for throughput — cheaper
/// segments, more solve-cache hits, provisional answers — and sheds
/// tuples only when the widest budget still cannot keep up.
struct PrecisionOptions {
  /// Master switch. Off = static precision: the session never defers,
  /// never emits provisional/confirm/retract frames, and behaves
  /// exactly as before this stage existed.
  bool enabled = false;
  /// Widened tiers available above the exact tier 0. Must match the
  /// runtime ladder length (serve::Session clamps to it).
  size_t num_tiers = 2;
  /// Queue-depth watermarks (fraction of total queue capacity). Widen
  /// one tier when the fraction exceeds widen_queue_watermark; tighten
  /// one tier when it falls below tighten_queue_watermark. The band
  /// between them is the hysteresis dead zone.
  double widen_queue_watermark = 0.60;
  double tighten_queue_watermark = 0.25;
  /// Solver-latency watermarks (interval p99, ns), same roles.
  uint64_t widen_latency_ns = 20'000'000;  // 20 ms
  uint64_t tighten_latency_ns = 5'000'000;  // 5 ms
  /// Minimum admissions between tier moves. The dwell keeps a step load
  /// from oscillating: after a widen, the controller holds the tier
  /// until the signals have had `cooldown` admissions to respond.
  uint64_t cooldown = 256;
  /// Admissions between latency re-samples.
  uint64_t sample_every = 64;
  /// >= 0 pins the tier (benches and the CLI's deterministic runs);
  /// watermarks and cooldown are ignored.
  int forced_tier = -1;
};

/// Hysteresis tier ladder for one adaptive session: maps the same two
/// pressure signals the load-shed controller reads to a precision tier
/// in [0, num_tiers]. Single-threaded: called only from the session
/// reader, which stamps the returned tier onto each admitted item so
/// the worker applies tier changes at exact admission-order boundaries
/// (the determinism contract of docs/PRECISION.md).
class PrecisionController {
 public:
  /// `latency` may be null; it must outlive the controller.
  PrecisionController(PrecisionOptions options,
                      const obs::Histogram* latency);

  /// Tier for the current admission given aggregate queue depth.
  size_t Update(size_t total_depth, size_t total_capacity);

  size_t tier() const { return tier_; }
  uint64_t widen_events() const { return widen_events_; }
  uint64_t tighten_events() const { return tighten_events_; }
  double interval_p99_ns() const { return sampler_.p99_ns(); }

 private:
  PrecisionOptions options_;
  IntervalLatencySampler sampler_;
  size_t tier_ = 0;
  uint64_t admissions_ = 0;
  uint64_t last_move_admission_ = 0;
  uint64_t admits_since_sample_ = 0;
  uint64_t widen_events_ = 0;
  uint64_t tighten_events_ = 0;
};

}  // namespace serve
}  // namespace pulse

#endif  // PULSE_SERVE_ADMISSION_H_
