// Ablation A2: root-finding strategy comparison. The paper cites Brent's
// method and Newton's method for the difference-equation rows
// (Section III-A); this bench measures each strategy over the polynomial
// degrees Pulse encounters: degree 1 (linear trajectories), degree 2
// (proximity predicates over linear motion), and higher degrees from
// model products.
#include <benchmark/benchmark.h>

#include "math/roots.h"
#include "util/rng.h"

namespace pulse {
namespace {

// A polynomial with `degree` real roots spread over [0, 10].
Polynomial MakePolynomial(size_t degree, uint64_t seed) {
  Rng rng(seed);
  Polynomial p = Polynomial::Constant(1.0);
  for (size_t i = 0; i < degree; ++i) {
    p = p * Polynomial({-rng.Uniform(0.0, 10.0), 1.0});
  }
  return p;
}

void BM_SolveComparison(benchmark::State& state, RootMethod method) {
  const size_t degree = static_cast<size_t>(state.range(0));
  std::vector<Polynomial> polys;
  for (uint64_t s = 0; s < 64; ++s) {
    polys.push_back(MakePolynomial(degree, s + 1));
  }
  const Interval domain = Interval::ClosedOpen(0.0, 10.0);
  size_t i = 0;
  for (auto _ : state) {
    IntervalSet sol =
        SolveComparison(polys[i % polys.size()], CmpOp::kLt, domain,
                        method);
    benchmark::DoNotOptimize(sol);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Auto(benchmark::State& state) {
  BM_SolveComparison(state, RootMethod::kAuto);
}
void BM_NewtonPolish(benchmark::State& state) {
  BM_SolveComparison(state, RootMethod::kNewtonPolish);
}
void BM_Brent(benchmark::State& state) {
  BM_SolveComparison(state, RootMethod::kBrent);
}
void BM_Bisection(benchmark::State& state) {
  BM_SolveComparison(state, RootMethod::kBisection);
}

BENCHMARK(BM_Auto)->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Arg(6);
BENCHMARK(BM_NewtonPolish)->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Arg(6);
BENCHMARK(BM_Brent)->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Arg(6);
BENCHMARK(BM_Bisection)->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Arg(6);

}  // namespace
}  // namespace pulse

BENCHMARK_MAIN();
