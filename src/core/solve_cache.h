#ifndef PULSE_CORE_SOLVE_CACHE_H_
#define PULSE_CORE_SOLVE_CACHE_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "math/interval_set.h"
#include "math/polynomial.h"
#include "math/roots.h"

namespace pulse {

/// Configuration for SolveCache.
struct SolveCacheOptions {
  /// Total cached row solutions across all shards. When a shard exceeds
  /// its share, its previous generation is dropped (generation sweep —
  /// cheaper than strict LRU and never touches cold entries on the hot
  /// path).
  size_t capacity = 1 << 16;

  /// Mutex shards. Lookups hash to a shard, so contention under
  /// ParallelFor is 1/shards of a single-lock design.
  size_t shards = 16;

  /// Coefficient quantization step for KEY EQUALITY. The default 0 keys
  /// on exact bit patterns, which guarantees cache-on output is
  /// byte-identical to cache-off output (a hit replays precisely the
  /// solution that would have been recomputed). A positive quantum snaps
  /// coefficients and domain endpoints to multiples of `quantum` before
  /// comparison: near-identical systems then share entries — more hits on
  /// noisy workloads — at the cost of answers drawn from a system up to
  /// quantum/2 away per coefficient. See docs/PERFORMANCE.md for the
  /// trade-off discussion. Determinism tests run with quantum == 0.
  double quantum = 0.0;

  /// Rows whose difference polynomial has degree below this are not
  /// cached (they count as `uncacheable`, preserving
  /// hits + misses + uncacheable == lookups). Rationale (ISSUE 7): a
  /// degree <= 2 closed-form solve is a handful of register ops — cheaper
  /// than the key copy + hash + shard lock + map probe + IntervalSet copy
  /// a hit costs — and the batched SIMD kernels make low-degree rows
  /// cheaper still. The struct default keeps everything cacheable (unit
  /// tests exercise low degrees); runtimes default to
  /// DefaultRuntimeSolveCacheOptions(), which sets 3 so the cache covers
  /// exactly the degrees the closed-form kernels do not (Sturm chains,
  /// transcendental-heavy cubics). See docs/PERFORMANCE.md
  /// "replay_cached anomaly".
  size_t min_degree = 0;
};

/// The SolveCacheOptions runtimes construct by default: exact keys with
/// min_degree = 3, so the cache serves only rows the batched closed-form
/// kernels cannot solve faster than a lookup.
SolveCacheOptions DefaultRuntimeSolveCacheOptions();

/// Point-in-time view of one cache's traffic counters (plain data —
/// safe to keep after the cache is gone). The shard pool reads these
/// per-shard snapshots when assembling its `shard/<i>/...` mirrors and
/// merged rollups (docs/SHARDING.md).
struct SolveCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t lookups = 0;
  uint64_t uncacheable = 0;
  /// Cached entries across shards and generations (approximate under
  /// concurrent inserts).
  size_t entries = 0;
};

/// Memoizes per-row comparison solves: difference polynomial + comparator
/// + solve domain + root method -> IntervalSet solution.
///
/// Motivation (ISSUE 2): constant-coefficient motion models produce
/// identical difference polynomials across many segment pairs and across
/// replays of the same trace, so equation-system solves are highly
/// redundant. The cache sits under EquationSystem::Solve / SolveSystems
/// and Predicate::Solve, making the second and later identical row solves
/// a hash lookup instead of root isolation.
///
/// Thread safety: sharded mutex map, safe under ParallelFor (PR 1).
/// Lookup/Insert take one shard lock each; hit/miss counters are relaxed
/// atomics. Entries are immutable once inserted.
///
/// Only rows whose difference polynomial fits the Polynomial inline
/// buffer (degree <= 7) are cached; higher degrees keep the key fixed
/// size and are rare enough that caching them is not worth the key
/// allocation.
class SolveCache {
 public:
  explicit SolveCache(SolveCacheOptions options = {});

  SolveCache(const SolveCache&) = delete;
  SolveCache& operator=(const SolveCache&) = delete;

  /// On hit copies the cached solution into *out and returns true.
  /// Returns false (and counts a miss) otherwise. Rows that are not
  /// cacheable (degree > 7, or degree < options.min_degree) return false
  /// and count as `uncacheable`. Every call counts as one lookup, so
  /// hits + misses + uncacheable == lookups at any quiescent point.
  bool Lookup(const Polynomial& diff, CmpOp op, const Interval& domain,
              RootMethod method, IntervalSet* out);

  /// Stores a freshly computed solution. No-op for uncacheable rows.
  void Insert(const Polynomial& diff, CmpOp op, const Interval& domain,
              RootMethod method, const IntervalSet& solution);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  /// Total Lookup calls (hits + misses + uncacheable).
  uint64_t lookups() const {
    return lookups_.load(std::memory_order_relaxed);
  }
  /// Lookup calls rejected because the row cannot be keyed (degree > 7)
  /// or falls under the min_degree cache policy.
  uint64_t uncacheable() const {
    return uncacheable_.load(std::memory_order_relaxed);
  }

  /// Cached entries across shards and generations (approximate under
  /// concurrent inserts).
  size_t size() const;

  /// Coherent-enough snapshot of all traffic counters at once.
  SolveCacheStats stats() const;

  void Clear();

  const SolveCacheOptions& options() const { return options_; }

 private:
  struct Key {
    // Bit patterns of the (possibly quantized) coefficients, zero-padded
    // beyond `size` so equality is a plain member comparison.
    std::array<uint64_t, Polynomial::kInlineCoefficients> coeffs;
    uint64_t domain_lo = 0;
    uint64_t domain_hi = 0;
    // FNV-1a over the other fields, filled by MakeKey so a Lookup hashes
    // once instead of three times (shard pick + two generation probes).
    // Equal keys derive equal hashes, so the defaulted == stays correct.
    uint64_t hash = 0;
    uint32_t size = 0;
    uint8_t op = 0;
    uint8_t method = 0;
    uint8_t lo_open = 0;
    uint8_t hi_open = 0;

    bool operator==(const Key& other) const = default;
  };

  struct KeyHash {
    size_t operator()(const Key& k) const {
      return static_cast<size_t>(k.hash);
    }
  };

  using Map = std::unordered_map<Key, IntervalSet, KeyHash>;

  // Two-generation shard: lookups consult `current` then `previous`;
  // inserts go to `current`. When `current` fills its share, it becomes
  // `previous` and the old `previous` is dropped — every entry survives
  // at least one full generation, recently reused entries are re-promoted
  // on hit.
  struct Shard {
    std::mutex mu;
    Map current;
    Map previous;
  };

  bool MakeKey(const Polynomial& diff, CmpOp op, const Interval& domain,
               RootMethod method, Key* key) const;
  Shard& ShardFor(const Key& key);

  SolveCacheOptions options_;
  size_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> lookups_{0};
  std::atomic<uint64_t> uncacheable_{0};
};

}  // namespace pulse

#endif  // PULSE_CORE_SOLVE_CACHE_H_
