#ifndef PULSE_MATH_ROOTS_INTERNAL_H_
#define PULSE_MATH_ROOTS_INTERNAL_H_

#include <cstddef>
#include <vector>

#include "math/interval_set.h"
#include "math/polynomial.h"
#include "math/roots.h"

// Shared internals of the comparison solver. roots.cc owns the single
// definition of every closed form and assembly step; the batched SoA
// path (math/batch_kernels.cc, core/equation_system.cc) calls the same
// functions so its per-lane results are bit-identical to the per-row
// scalar path by construction, not by reimplementation.

namespace pulse {
namespace roots_internal {

/// Sorts and deduplicates a root list to kRootTolerance.
void DedupeRoots(std::vector<double>* roots);

/// Keeps only roots inside the closed [lo, hi] (with tolerance snap at
/// the boundary so closed-form roundoff does not drop boundary roots).
void ClipRoots(double lo, double hi, std::vector<double>* roots);

/// Coefficient-level closed forms. Roots are written to r[] in the
/// exact push order of ClosedFormRootsInto; the return value is the
/// root count. These are the scalar reference lanes of the batched
/// kernels (math/batch_kernels.h).
int LinearRoot(double c0, double c1, double* r);                    // 1
int QuadraticRoots(double c0, double c1, double c2, double* r);     // 0..2
int CubicRoots(double c0, double c1, double c2, double c3,
               double* r);                                          // 1..3

/// Closed-form roots of degree <= 3, appended to *out (unclipped).
void ClosedFormRootsInto(const Polynomial& p, std::vector<double>* out);

/// Handles the rows SolveComparisonInto answers without root finding:
/// empty domain, the everywhere-zero polynomial, and constant non-zero
/// polynomials. Returns true when the row was fully solved into *out.
bool SolveComparisonTrivial(const Polynomial& p, CmpOp op,
                            const Interval& domain, IntervalSet* out);

/// kEq assembly: point intervals for every (clipped, deduped) root
/// inside the domain. `cells` is caller scratch.
void AssembleEquality(const double* roots, size_t num_roots,
                      const Interval& domain, std::vector<Interval>* cells,
                      IntervalSet* out);

/// Builds the inequality sign-test cut list (domain.lo, interior roots,
/// domain.hi) into *cuts. Returns the number of retained cells —
/// adjacent cut pairs with hi > lo — which is exactly the number of
/// midpoint values AssembleInequality will consume.
size_t BuildCuts(const double* roots, size_t num_roots,
                 const Interval& domain, std::vector<double>* cuts);

/// Inequality assembly from the cut list. `mid_values`, when non-null,
/// supplies one value of p per retained cell in cut order; each must be
/// p evaluated at exactly 0.5 * (cuts[i] + cuts[i+1]) with the pinned
/// Horner recurrence (Polynomial::Evaluate or a batched kernel matching
/// it bit for bit). A null `mid_values` evaluates p inline — the scalar
/// path. `cells` is caller scratch.
void AssembleInequality(const Polynomial& p, CmpOp op,
                        const Interval& domain, const double* roots,
                        size_t num_roots, const double* cuts,
                        size_t num_cuts, const double* mid_values,
                        std::vector<Interval>* cells, IntervalSet* out);

}  // namespace roots_internal
}  // namespace pulse

#endif  // PULSE_MATH_ROOTS_INTERNAL_H_
