// Serving-layer throughput: concurrent sessions under each
// backpressure policy.
//
// A StreamServer runs the Fig. 5-style moving-object filter query while
// 16 concurrent in-process sessions each replay a piecewise-linear
// trace through the full serving stack: frame codec -> admission
// control -> per-stream bounded queues -> micro-batched dispatch into a
// per-session HistoricalRuntime -> output segments framed back to the
// client. The same offered load is repeated once per backpressure
// policy (block / drop_oldest / shed, admission off so the queue policy
// alone decides what happens at capacity) plus one run with the
// admission controller shedding ahead of the queues. The rows show what
// each policy trades away: block keeps every tuple and pays latency,
// drop_oldest and shed keep latency and pay tuples.
//
// Per policy the JSON row records end-to-end throughput (sent tuples /
// wall seconds), the accepted/dropped/shed accounting from the serve/*
// counters, and the p99 of the per-frame admission path
// (span/serve/admit) — the serving-latency number docs/SERVING.md's
// shedding thresholds are calibrated against. Results go to
// BENCH_serving_throughput.json (schema v2; tests/bench_schema_test.cc
// pins the row fields).
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/query.h"
#include "engine/tuple.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/server.h"
#include "workload/moving_object.h"

namespace pulse {
namespace {

constexpr size_t kSessions = 16;
constexpr size_t kTuplesPerSession = 4000;
constexpr size_t kSendChunk = 64;  // tuples per kTupleBatch frame

std::vector<Tuple> MakeTrace() {
  std::vector<Tuple> trace;
  trace.reserve(kTuplesPerSession);
  for (size_t i = 0; i < kTuplesPerSession; ++i) {
    const double t = i * 0.05;
    // Triangle wave: the segmenter closes a piece at every knee.
    const double phase = std::fmod(t, 15.0);
    const double x = phase < 7.5 ? 2.0 * phase : 30.0 - 2.0 * phase;
    trace.push_back(Tuple(
        t, {Value(int64_t{1}), Value(x), Value(0.0), Value(0.0), Value(0.0)}));
  }
  return trace;
}

QuerySpec MakeFilterSpec() {
  QuerySpec spec;
  (void)spec.AddStream(MovingObjectGenerator::MakeStreamSpec("objects", 5.0));
  FilterSpec filter;
  filter.predicate = Predicate::Comparison(ComparisonTerm::Simple(
      AttrRef::Left("x"), CmpOp::kLt, Operand::Constant(10.0)));
  spec.AddFilter("f", QuerySpec::Input::Stream("objects"), filter);
  return spec;
}

struct PolicyResult {
  std::string policy;
  double seconds = 0.0;
  double tuples_per_sec = 0.0;
  uint64_t sent = 0;
  uint64_t accepted = 0;
  uint64_t dropped = 0;
  uint64_t shed = 0;
  uint64_t output_segments = 0;
  double admit_p99_ns = 0.0;
  obs::MetricsSnapshot metrics;
  bool ok = false;
};

PolicyResult RunPolicy(serve::BackpressurePolicy policy,
                       bool admission_enabled,
                       const std::vector<Tuple>& trace) {
  PolicyResult result;
  result.policy = serve::BackpressurePolicyToString(policy);
  if (admission_enabled) result.policy += "+admission";
  result.sent = kSessions * trace.size();

  serve::ServerOptions options;
  options.spec = MakeFilterSpec();
  options.runtime.segmentation.degree = 1;
  options.runtime.segmentation.max_error = 0.05;
  options.session.policy = policy;
  options.session.queue_capacity = 128;
  options.session.admission.enabled = admission_enabled;
  Result<std::unique_ptr<serve::StreamServer>> server =
      serve::StreamServer::Make(std::move(options));
  if (!server.ok()) {
    std::fprintf(stderr, "server setup failed: %s\n",
                 server.status().ToString().c_str());
    return result;
  }

  std::vector<std::unique_ptr<serve::Transport>> transports;
  for (size_t i = 0; i < kSessions; ++i) {
    Result<std::unique_ptr<serve::Transport>> conn =
        (*server)->ConnectInProcess();
    if (!conn.ok()) {
      std::fprintf(stderr, "connect failed: %s\n",
                   conn.status().ToString().c_str());
      return result;
    }
    transports.push_back(std::move(*conn));
  }

  std::vector<uint64_t> outputs(kSessions, 0);
  std::vector<bool> session_ok(kSessions, false);
  result.seconds = bench::MeasureSeconds([&] {
    std::vector<std::thread> clients;
    clients.reserve(kSessions);
    for (size_t i = 0; i < kSessions; ++i) {
      clients.emplace_back([&, i] {
        serve::ServeClient client(std::move(transports[i]));
        if (!client.Hello().ok()) return;
        if (!client.OpenStream(1, "objects").ok()) return;
        for (size_t off = 0; off < trace.size(); off += kSendChunk) {
          const size_t n = std::min(kSendChunk, trace.size() - off);
          std::vector<Tuple> chunk(trace.begin() + off,
                                   trace.begin() + off + n);
          if (!client.SendBatch(1, chunk).ok()) return;
        }
        Result<serve::ServeClient::DrainResult> drained = client.Drain();
        if (!drained.ok()) return;
        outputs[i] = drained->output_segments.size();
        (void)client.Bye();
        session_ok[i] = true;
      });
    }
    for (std::thread& t : clients) t.join();
    (*server)->Drain();
  });

  result.metrics = (*server)->metrics()->Snapshot();
  result.accepted = result.metrics.counters["serve/queue/accepted"];
  result.dropped = result.metrics.counters["serve/queue/dropped"];
  result.shed = result.metrics.counters["serve/queue/shed"];
  auto it = result.metrics.histograms.find("span/serve/admit");
  if (it != result.metrics.histograms.end()) {
    result.admit_p99_ns = it->second.p99;
  }
  for (uint64_t n : outputs) result.output_segments += n;
  result.tuples_per_sec =
      static_cast<double>(result.sent) / result.seconds;
  result.ok = true;
  for (size_t i = 0; i < kSessions; ++i) {
    if (!session_ok[i]) {
      std::fprintf(stderr, "session %zu did not complete cleanly\n", i);
      result.ok = false;
    }
  }
  return result;
}

}  // namespace
}  // namespace pulse

int main(int argc, char** argv) {
  using namespace pulse;
  std::printf(
      "Serving throughput: %zu concurrent sessions x %zu tuples, "
      "moving-object filter\n",
      kSessions, kTuplesPerSession);

  const std::vector<Tuple> trace = MakeTrace();
  bench::SeriesTable table(
      "Serving throughput by backpressure policy", "policy_index",
      {"tuples_per_sec", "accepted", "dropped", "shed", "admit_p99_ns"});

  std::vector<PolicyResult> results;
  // Three pure-policy runs (admission off: the queue policy alone
  // decides what happens at capacity — block stays lossless), then one
  // run with the admission controller shedding ahead of the queues.
  const struct {
    serve::BackpressurePolicy policy;
    bool admission;
  } scenarios[] = {{serve::BackpressurePolicy::kBlock, false},
                   {serve::BackpressurePolicy::kDropOldest, false},
                   {serve::BackpressurePolicy::kShed, false},
                   {serve::BackpressurePolicy::kBlock, true}};
  for (size_t i = 0; i < 4; ++i) {
    PolicyResult r = RunPolicy(scenarios[i].policy, scenarios[i].admission,
                               trace);
    if (!r.ok) return 1;
    std::printf("  %-12s %.0f tuples/s, accepted=%llu dropped=%llu "
                "shed=%llu, admit p99 %.0f ns\n",
                r.policy.c_str(), r.tuples_per_sec,
                static_cast<unsigned long long>(r.accepted),
                static_cast<unsigned long long>(r.dropped),
                static_cast<unsigned long long>(r.shed), r.admit_p99_ns);
    table.AddRow(static_cast<double>(i),
                 {r.tuples_per_sec, static_cast<double>(r.accepted),
                  static_cast<double>(r.dropped),
                  static_cast<double>(r.shed), r.admit_p99_ns});
    results.push_back(std::move(r));
  }
  table.Print();

  bench::BenchReport report("serving_throughput");
  report.ParamString("workload", "moving_object_filter");
  report.ParamUint("sessions", kSessions);
  report.ParamUint("tuples_per_session", kTuplesPerSession);
  report.ParamUint("send_chunk", kSendChunk);
  report.ParamUint("queue_capacity", 128);
  report.ParamUint("hardware_concurrency",
                   std::thread::hardware_concurrency());
  for (const PolicyResult& r : results) {
    report.AddRow()
        .String("policy", r.policy)
        .Double("seconds", r.seconds)
        .Double("tuples_per_sec", r.tuples_per_sec)
        .Uint("sent", r.sent)
        .Uint("accepted", r.accepted)
        .Uint("dropped", r.dropped)
        .Uint("shed", r.shed)
        .Uint("output_segments", r.output_segments)
        .Double("admit_p99_ns", r.admit_p99_ns);
  }
  // The block-policy run's registry: the lossless configuration whose
  // serve/queue/blocked_ns counter shows the price of keeping every
  // tuple.
  report.AttachMetrics(results.front().metrics);
  if (!report.WriteFile("BENCH_serving_throughput.json")) return 1;
  std::printf(
      "\nWrote BENCH_serving_throughput.json. Expected shape: block "
      "accepts everything\n(accepted == sent) at the lowest throughput; "
      "drop_oldest and shed trade tuples\nfor latency when the offered "
      "rate beats the per-session solver; block+admission\nsheds ahead "
      "of the queues when the host is overloaded.\n");
  if (!bench::HandleMetricsOutFlag(argc, argv, results.front().metrics)) {
    return 1;
  }
  return 0;
}
