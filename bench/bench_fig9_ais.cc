// Reproduces paper Fig. 9ii: AIS "following" query throughput with a
// 0.05% error threshold. Series: tuple-based query, Pulse, and segment
// replay (pre-fitted models pushed directly, the paper's memory-bound
// upper series).
//
// Paper shape: the tuple query saturates at a much lower rate than the
// NYSE experiment (the query starts with a join rather than aggregates),
// and Pulse achieves ~4x its throughput.
#include <cstdio>

#include "bench_util.h"
#include "core/runtime.h"
#include "engine/executor.h"
#include "engine/stream.h"
#include "workload/ais.h"
#include "workload/queries.h"

namespace pulse {
namespace {

QuerySpec FollowingSpec() {
  QuerySpec spec;
  (void)spec.AddStream(AisGenerator::MakeStreamSpec("ais", 30.0));
  FollowingParams params;  // paper: join 10 s, avg 600 s slide 10 s
  params.avg_window = 120.0;  // scaled to the trace length
  params.avg_slide = 10.0;
  (void)AddFollowingQuery(&spec, params);
  return spec;
}

}  // namespace
}  // namespace pulse

int main() {
  using namespace pulse;
  AisOptions gen_opts;
  gen_opts.num_vessels = 40;
  gen_opts.tuple_rate = 500.0;
  gen_opts.leg_duration = 120.0;
  gen_opts.following_fraction = 0.2;
  gen_opts.noise = 0.5;
  const std::vector<Tuple> trace =
      AisGenerator(gen_opts).Generate(120000);  // 240 s of reports
  const QuerySpec spec = FollowingSpec();
  std::printf(
      "Fig 9ii reproduction: following query over %zu synthetic AIS "
      "reports\n",
      trace.size());

  Result<DiscretePlan> dplan = BuildDiscretePlan(spec);
  Result<Executor> dexec = Executor::Make(std::move(dplan->plan));
  dexec->set_discard_output(true);
  // System-level measurement: discrete tuples pass through the engine's
  // admission queue (Borealis enqueues every tuple before processing;
  // Pulse's validator and the historical modeler intercept tuples before
  // the engine — paper Fig. 4).
  Stream admission("ais.in", AisGenerator::TupleSchema());
  const double tuple_s = bench::MeasureSeconds([&] {
    Tuple queued;
    for (const Tuple& t : trace) {
      (void)admission.Push(t);
      (void)admission.Pop(&queued);
      (void)dexec->PushTuple("ais", queued);
    }
    (void)dexec->Finish();
  });

  PredictiveRuntime::Options popts;
  popts.bounds = {BoundSpec::Relative("avg_dist2", 0.0005)};  // 0.05%
  popts.collect_outputs = false;
  Result<PredictiveRuntime> rt = PredictiveRuntime::Make(spec, popts);
  const double pulse_s = bench::MeasureSeconds([&] {
    for (const Tuple& t : trace) (void)rt->ProcessTuple("ais", t);
    (void)rt->Finish();
  });

  // Segment replay: fit once, then measure pure segment processing.
  HistoricalRuntime::Options hopts;
  hopts.segmentation.degree = 1;
  hopts.segmentation.max_error = 2.0;
  hopts.segmentation.max_points_per_segment = 500;
  hopts.collect_outputs = false;
  StreamSpec stream = AisGenerator::MakeStreamSpec("ais", 30.0);
  MultiAttributeSegmenter modeler(stream, hopts.segmentation);
  std::vector<Segment> segments;
  for (const Tuple& t : trace) {
    Result<std::optional<Segment>> r = modeler.Add(t);
    if (r.ok() && r->has_value()) segments.push_back(std::move(**r));
  }
  Result<HistoricalRuntime> hist = HistoricalRuntime::Make(spec, hopts);
  const double replay_s = bench::MeasureSeconds([&] {
    for (const Segment& s : segments) {
      (void)hist->ProcessSegment("ais", s);
    }
    (void)hist->Finish();
  });

  const double n = static_cast<double>(trace.size());
  std::printf("\nMeasured capacities (tuples/s equivalent):\n");
  std::printf("  tuple following  : %12.0f\n", n / tuple_s);
  std::printf("  pulse following  : %12.0f  (validated %llu, violations"
              " %llu)\n",
              n / pulse_s,
              static_cast<unsigned long long>(rt->stats().tuples_validated),
              static_cast<unsigned long long>(rt->stats().violations));
  std::printf("  segment replay   : %12.0f  (%zu segments for %zu "
              "tuples)\n",
              n / replay_s, segments.size(), trace.size());

  const double c_tuple = n / tuple_s;
  bench::SeriesTable table(
      "Fig 9ii: achieved following-query throughput vs offered rate "
      "(0.05% threshold)",
      "offered_tps", {"tuple_tps", "pulse_tps", "segment_replay_tps"});
  for (double f = 0.25; f <= 6.01; f += 0.5) {
    const double offered = f * c_tuple;
    table.AddRow(
        offered,
        {bench::SimulateQueue(trace.size(), tuple_s, offered).achieved_tps,
         bench::SimulateQueue(trace.size(), pulse_s, offered).achieved_tps,
         bench::SimulateQueue(trace.size(), replay_s, offered)
             .achieved_tps});
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper): tuple query saturates lowest (join-first "
      "plan); Pulse reaches ~4x its\nthroughput; segment replay highest "
      "(bounded by memory, not computation, in the paper).\n");
  return 0;
}
