#include "engine/metrics.h"

#include <sstream>

namespace pulse {

std::string OperatorMetrics::ToString() const {
  std::ostringstream os;
  os << "in=" << tuples_in << " out=" << tuples_out
     << " invocations=" << invocations << " comparisons=" << comparisons
     << " cpu_s=" << processing_seconds();
  return os.str();
}

}  // namespace pulse
