// Fuzz target: polynomial root finding and scalar comparison solving.
//
// Invariants exercised (violations abort):
//  - FindRealRoots returns roots inside [lo, hi], sorted ascending.
//  - SolveComparison returns a normalized IntervalSet whose intervals all
//    lie inside the query domain.
//  - Sign consistency: at the midpoint of every returned interval of
//    measurable length, the polynomial satisfies the comparison up to a
//    scale-aware tolerance (roots are found numerically, so exact sign at
//    boundaries is not required — interiors must agree).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "math/interval_set.h"
#include "math/polynomial.h"
#include "math/roots.h"

#include "fuzz_util.h"

namespace {

void Check(bool cond, const char* what) {
  if (!cond) {
    std::fprintf(stderr, "fuzz_roots invariant violated: %s\n", what);
    std::abort();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  pulse::fuzz::FuzzInput in(data, size);

  const size_t degree = in.TakeBelow(8);
  std::vector<double> coeffs;
  coeffs.reserve(degree + 1);
  double coeff_scale = 0.0;
  for (size_t i = 0; i <= degree; ++i) {
    coeffs.push_back(in.TakeDouble(1e6));
    coeff_scale = std::max(coeff_scale, std::fabs(coeffs.back()));
  }
  pulse::Polynomial p(std::move(coeffs));

  double lo = in.TakeDouble(1e3);
  double hi = in.TakeDouble(1e3);
  if (hi < lo) std::swap(lo, hi);

  const std::vector<double> roots = pulse::FindRealRoots(p, lo, hi);
  for (size_t i = 0; i < roots.size(); ++i) {
    Check(std::isfinite(roots[i]), "non-finite root");
    Check(roots[i] >= lo - 1e-9 && roots[i] <= hi + 1e-9,
          "root outside requested range");
    if (i > 0) Check(roots[i - 1] <= roots[i], "roots not sorted");
  }

  static const pulse::CmpOp kOps[] = {pulse::CmpOp::kLt, pulse::CmpOp::kLe,
                                      pulse::CmpOp::kEq, pulse::CmpOp::kNe,
                                      pulse::CmpOp::kGe, pulse::CmpOp::kGt};
  const pulse::CmpOp op = kOps[in.TakeBelow(6)];
  const pulse::Interval domain = pulse::Interval::Closed(lo, hi);
  const pulse::IntervalSet sol = pulse::SolveComparison(p, op, domain);

  const auto& ivs = sol.intervals();
  for (size_t i = 0; i < ivs.size(); ++i) {
    Check(!ivs[i].IsEmpty(), "normalized set holds an empty interval");
    Check(ivs[i].lo >= lo - 1e-9 && ivs[i].hi <= hi + 1e-9,
          "solution escapes the domain");
    if (i > 0) Check(ivs[i - 1].hi <= ivs[i].lo + 1e-12,
                     "solution intervals out of order");

    if (ivs[i].Length() < 1e-6) continue;  // boundary-dominated: skip
    const double mid = 0.5 * (ivs[i].lo + ivs[i].hi);
    const double v = p.Evaluate(mid);
    // Scale-aware slop: value magnitudes grow like coeff_scale * |t|^deg.
    const double span = std::max(std::fabs(lo), std::fabs(hi));
    const double tol =
        1e-6 * std::max(1.0, coeff_scale * std::pow(std::max(1.0, span),
                                                    static_cast<double>(
                                                        p.degree())));
    switch (op) {
      case pulse::CmpOp::kLt:
      case pulse::CmpOp::kLe:
        Check(v <= tol, "midpoint violates < / <=");
        break;
      case pulse::CmpOp::kGt:
      case pulse::CmpOp::kGe:
        Check(v >= -tol, "midpoint violates > / >=");
        break;
      case pulse::CmpOp::kEq:
        Check(std::fabs(v) <= tol, "midpoint violates ==");
        break;
      case pulse::CmpOp::kNe:
        break;  // complement of isolated points: any value admissible
    }
  }
  return 0;
}
