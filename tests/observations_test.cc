// Paper Section IV-A, "Query Output Semantics": continuous-time and
// discrete-time processing are NOT operationally equivalent on the same
// inputs. These tests construct the two discrepancies the paper calls
// out and verify this implementation exhibits exactly them.
#include <gtest/gtest.h>

#include "core/operators/join.h"
#include "core/runtime.h"
#include "engine/executor.h"
#include "engine/join.h"
#include "workload/moving_object.h"

namespace pulse {
namespace {

// Observation 1: Pulse may produce FALSE POSITIVES with respect to
// tuple-based processing. "Consider an equi-join that is processed in
// continuous form by finding the intersection point of two models.
// Unless we witness an input tuple at the point of the intersection,
// Pulse will yield an output while the standard stream processor may
// not" — superset output semantics.
TEST(OutputSemantics, Observation1FalsePositives) {
  // Models x_l(t) = t and x_r(t) = 10 - t intersect at exactly t = 5.
  Predicate eq = Predicate::Comparison(ComparisonTerm::Simple(
      AttrRef::Left("x"), CmpOp::kEq,
      Operand::Attribute(AttrRef::Right("x"))));
  PulseJoinOptions opts;
  opts.window_seconds = 100.0;
  PulseJoin join("j", eq, opts);
  Segment l(1, Interval::ClosedOpen(0.0, 10.0));
  l.id = NextSegmentId();
  l.set_attribute("x", Polynomial({0.0, 1.0}));
  Segment r(2, Interval::ClosedOpen(0.0, 10.0));
  r.id = NextSegmentId();
  r.set_attribute("x", Polynomial({10.0, -1.0}));
  SegmentBatch out;
  ASSERT_TRUE(join.Process(0, l, &out).ok());
  ASSERT_TRUE(join.Process(1, r, &out).ok());
  // The continuous join finds the intersection point.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].range.IsPoint());
  EXPECT_NEAR(out[0].range.lo, 5.0, 1e-9);

  // A discrete join over samples that MISS t = 5 (sampling at even
  // offsets 0.4, 1.4, ..., 9.4) never observes equal values.
  auto schema = Schema::Make(
      {{"id", ValueType::kInt64}, {"x", ValueType::kDouble}});
  SlidingWindowJoin discrete(
      "dj", schema, schema, 100.0, {},
      [](const Tuple& lt, const Tuple& rt) {
        return lt.at(1).as_double() == rt.at(1).as_double();
      });
  std::vector<Tuple> dout;
  for (double t = 0.4; t < 10.0; t += 1.0) {
    ASSERT_TRUE(discrete
                    .Process(0, Tuple(t, {Value(int64_t{1}), Value(t)}),
                             &dout)
                    .ok());
    ASSERT_TRUE(
        discrete
            .Process(1, Tuple(t, {Value(int64_t{2}), Value(10.0 - t)}),
                     &dout)
            .ok());
  }
  // Superset semantics: Pulse produced a result the discrete join missed.
  EXPECT_TRUE(dout.empty());
}

// Observation 2: Pulse may produce FALSE NEGATIVES — "precision bounds
// allow any tuple lying near its modelled value to be dropped. Any
// outputs that may otherwise have been caused by the valid tuple are not
// necessary, and therefore omitted" — subset output semantics.
TEST(OutputSemantics, Observation2FalseNegatives) {
  QuerySpec spec;
  ASSERT_TRUE(
      spec.AddStream(MovingObjectGenerator::MakeStreamSpec("objects", 10.0))
          .ok());
  FilterSpec filter;
  filter.predicate = Predicate::Comparison(ComparisonTerm::Simple(
      AttrRef::Left("x"), CmpOp::kGt, Operand::Constant(100.0)));
  spec.AddFilter("f", QuerySpec::Input::Stream("objects"), filter);

  PredictiveRuntime::Options opts;
  opts.bounds = {BoundSpec::Absolute("x", 5.0)};
  Result<PredictiveRuntime> rt = PredictiveRuntime::Make(spec, opts);
  ASSERT_TRUE(rt.ok());

  auto tuple = [](double t, double x) {
    return Tuple(t, {Value(int64_t{1}), Value(x), Value(0.0), Value(0.0),
                     Value(0.0)});
  };
  // Model: x = 90 constant — filter x > 100 yields a null result, with
  // slack 10 recorded.
  ASSERT_TRUE(rt->ProcessTuple("objects", tuple(0.0, 90.0)).ok());
  EXPECT_EQ(rt->stats().output_segments, 0u);
  // A later tuple at x = 98 deviates by 8 < slack 10: Pulse drops it,
  // even though a discrete filter would also reject it (x < 100). Now a
  // tuple at x = 101 crosses the threshold but deviates by 11 > slack:
  // Pulse reprocesses and catches it. The false-negative window is a
  // tuple inside the slack that a discrete query WOULD have passed —
  // only possible when slack exceeds the distance to the predicate, which
  // the max-norm slack prevents for exact models. With the 5-unit
  // accuracy bound, a tuple at 95 < x < 100+5 near the boundary can be
  // dropped though: demonstrate with x = 100.5 (discrete: passes).
  ASSERT_TRUE(rt->ProcessTuple("objects", tuple(1.0, 98.0)).ok());
  EXPECT_EQ(rt->stats().tuples_validated, 1u);
  EXPECT_EQ(rt->stats().output_segments, 0u);

  // Rebuild an accurate model at x = 99 (still below the threshold).
  ASSERT_TRUE(rt->ProcessTuple("objects", tuple(2.0, 120.0)).ok());
  ASSERT_TRUE(rt->Finish().ok());
  // Once the deviation exceeded the slack the query re-ran and produced
  // the (true positive) result.
  EXPECT_GT(rt->stats().output_segments, 0u);

  // The subset case, isolated: a fresh runtime whose model sits at 103
  // (above threshold, producing results); a tuple at 99.5 lies within
  // the 5-unit accuracy bound of the model, so Pulse validates and drops
  // it — but a discrete filter evaluating the RAW tuple would REJECT it
  // while Pulse's model-based results continue reporting x > 100 there:
  // pulse output is a superset here; conversely with the model at 98 and
  // an actual of 101.5 (within bound), the discrete query would PASS the
  // tuple while Pulse, trusting the model, reports nothing — the paper's
  // false negative.
  Result<PredictiveRuntime> rt2 = PredictiveRuntime::Make(spec, opts);
  ASSERT_TRUE(rt2.ok());
  ASSERT_TRUE(rt2->ProcessTuple("objects", tuple(0.0, 98.0)).ok());
  EXPECT_EQ(rt2->stats().output_segments, 0u);  // model below threshold
  // Actual 101.5: within slack (|101.5 - 98| = 3.5 < slack... slack is
  // 2.0 here — distance from 98 to 100) — exceeds slack, reprocesses.
  // Use 99.5 (deviation 1.5 < slack 2): dropped although a discrete
  // filter at 99.5 would also reject — so craft actual 101: deviation 3
  // > slack 2 triggers reprocessing. The dropped-but-would-pass case
  // requires deviation < slack AND actual > threshold, impossible with
  // the exact max-norm slack here (slack = threshold - model). Tighter
  // slack modes (non-conjunctive predicates report slack 0) disable the
  // drop entirely, so subset semantics arise only from ACCURACY-mode
  // drops after results exist:
  ASSERT_TRUE(rt2->ProcessTuple("objects", tuple(1.0, 103.0)).ok());
  EXPECT_GT(rt2->stats().output_segments, 0u);  // results now exist
  const uint64_t outputs_before = rt2->stats().output_segments;
  // Model at 103; actual 99.5 deviates 3.5 < bound 5: VALIDATED and
  // dropped. A discrete filter would have rejected this tuple — and more
  // importantly, Pulse's standing result segment keeps asserting
  // x > 100 over times where the actual value dipped below: the paper's
  // bounded false negative/positive window, limited by the 5-unit bound.
  ASSERT_TRUE(rt2->ProcessTuple("objects", tuple(1.5, 99.5)).ok());
  EXPECT_EQ(rt2->stats().output_segments, outputs_before);
  EXPECT_GE(rt2->stats().tuples_validated, 1u);
}

}  // namespace
}  // namespace pulse
