#include "core/solve_cache.h"

#include <bit>
#include <cmath>

#include "util/logging.h"

namespace pulse {

namespace {

// Bit pattern of v, with -0.0 folded onto +0.0 so the two (equal) values
// share cache entries.
uint64_t DoubleBits(double v) {
  if (v == 0.0) v = 0.0;
  return std::bit_cast<uint64_t>(v);
}

// Snaps v to the quantization grid (quantum > 0).
double Quantize(double v, double quantum) {
  return std::nearbyint(v / quantum) * quantum;
}

}  // namespace

SolveCacheOptions DefaultRuntimeSolveCacheOptions() {
  SolveCacheOptions options;
  // Degree <= 2 closed forms are cheaper than a cache hit (ISSUE 7's
  // replay_cached anomaly) and the batched kernels solve them in bulk;
  // reserve cache capacity for the rows that are actually expensive.
  options.min_degree = 3;
  return options;
}

SolveCache::SolveCache(SolveCacheOptions options)
    : options_(options) {
  if (options_.shards == 0) options_.shards = 1;
  if (options_.capacity < options_.shards) {
    options_.capacity = options_.shards;
  }
  per_shard_capacity_ = options_.capacity / options_.shards;
  shards_.reserve(options_.shards);
  for (size_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

bool SolveCache::MakeKey(const Polynomial& diff, CmpOp op,
                         const Interval& domain, RootMethod method,
                         Key* key) const {
  const size_t n = diff.IsZero() ? 0 : diff.degree() + 1;
  if (n > Polynomial::kInlineCoefficients) return false;
  const size_t degree = n == 0 ? 0 : n - 1;
  if (degree < options_.min_degree) return false;
  key->coeffs.fill(0);
  const bool quantized = options_.quantum > 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double c = diff.coeff(i);
    key->coeffs[i] =
        DoubleBits(quantized ? Quantize(c, options_.quantum) : c);
  }
  key->domain_lo = DoubleBits(
      quantized ? Quantize(domain.lo, options_.quantum) : domain.lo);
  key->domain_hi = DoubleBits(
      quantized ? Quantize(domain.hi, options_.quantum) : domain.hi);
  key->size = static_cast<uint32_t>(n);
  key->op = static_cast<uint8_t>(op);
  key->method = static_cast<uint8_t>(method);
  key->lo_open = domain.lo_open ? 1 : 0;
  key->hi_open = domain.hi_open ? 1 : 0;
  // FNV-1a over the packed words; computed once here so the shard pick
  // and both generation probes reuse it (the hash was the single
  // largest cost of a hit on low-degree rows).
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t word) {
    h ^= word;
    h *= 1099511628211ull;
  };
  for (uint64_t w : key->coeffs) mix(w);
  mix(key->domain_lo);
  mix(key->domain_hi);
  mix(static_cast<uint64_t>(key->size) |
      (static_cast<uint64_t>(key->op) << 32) |
      (static_cast<uint64_t>(key->method) << 40) |
      (static_cast<uint64_t>(key->lo_open) << 48) |
      (static_cast<uint64_t>(key->hi_open) << 56));
  key->hash = h;
  return true;
}

SolveCache::Shard& SolveCache::ShardFor(const Key& key) {
  return *shards_[key.hash % shards_.size()];
}

bool SolveCache::Lookup(const Polynomial& diff, CmpOp op,
                        const Interval& domain, RootMethod method,
                        IntervalSet* out) {
  Key key;
  lookups_.fetch_add(1, std::memory_order_relaxed);
  if (!MakeKey(diff, op, domain, method, &key)) {
    uncacheable_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.current.find(key);
    if (it != shard.current.end()) {
      *out = it->second;
      hits_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    it = shard.previous.find(key);
    if (it != shard.previous.end()) {
      // Promote so another generation of reuse keeps the entry alive.
      *out = it->second;
      shard.current.emplace(key, it->second);
      shard.previous.erase(it);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void SolveCache::Insert(const Polynomial& diff, CmpOp op,
                        const Interval& domain, RootMethod method,
                        const IntervalSet& solution) {
  Key key;
  if (!MakeKey(diff, op, domain, method, &key)) return;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.current.size() >= per_shard_capacity_) {
    shard.previous = std::move(shard.current);
    shard.current.clear();
  }
  shard.current.insert_or_assign(key, solution);
}

size_t SolveCache::size() const {
  size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->current.size() + shard->previous.size();
  }
  return total;
}

SolveCacheStats SolveCache::stats() const {
  SolveCacheStats s;
  s.hits = hits();
  s.misses = misses();
  s.lookups = lookups();
  s.uncacheable = uncacheable();
  s.entries = size();
  return s;
}

void SolveCache::Clear() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->current.clear();
    shard->previous.clear();
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  lookups_.store(0, std::memory_order_relaxed);
  uncacheable_.store(0, std::memory_order_relaxed);
}

}  // namespace pulse
