# Empty dependencies file for pulse_core.
# This may be replaced when dependencies are built.
