#include "engine/stream.h"

#include "util/logging.h"

namespace pulse {

Stream::Stream(std::string name, std::shared_ptr<const Schema> schema,
               size_t capacity)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      capacity_(capacity) {
  PULSE_CHECK(schema_ != nullptr);
}

Status Stream::Push(Tuple tuple) {
  if (capacity_ > 0 && queue_.size() >= capacity_) {
    return Status::Capacity("stream '" + name_ + "' full (" +
                            std::to_string(capacity_) + ")");
  }
  queue_.push_back(std::move(tuple));
  if (queue_.size() > high_watermark_) high_watermark_ = queue_.size();
  return Status::OK();
}

bool Stream::Pop(Tuple* tuple) {
  if (queue_.empty()) return false;
  *tuple = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

}  // namespace pulse
