// Historical what-if analysis: the paper's second operating mode
// (Section II-A). A recorded stream is modeled ONCE into segments; the
// compact model then feeds many "parameter sweeping" query variants —
// here, MACD with a range of short-window sizes — so the modeling cost is
// amortized across the whole sweep and each variant runs over thousands
// of segments instead of hundreds of thousands of tuples.
//
// Build & run:  ./build/examples/historical_whatif
#include <cstdio>
#include <vector>

#include "core/runtime.h"
#include "util/stopwatch.h"
#include "workload/nyse.h"
#include "workload/queries.h"

using namespace pulse;

int main() {
  // Record one trading session.
  NyseOptions gen_options;
  gen_options.num_symbols = 20;
  gen_options.tuple_rate = 2000.0;
  gen_options.trades_per_trend = 400;
  gen_options.noise = 0.01;
  const std::vector<Tuple> history =
      NyseGenerator(gen_options).Generate(200000);
  std::printf("historical stream: %zu trades\n", history.size());

  // Phase 1: model the history once.
  SegmentationOptions seg_options;
  seg_options.degree = 1;
  seg_options.max_error = 0.05;
  seg_options.max_points_per_segment = 1000;
  StreamSpec stream = NyseGenerator::MakeStreamSpec("nyse", 5.0);
  MultiAttributeSegmenter modeler(stream, seg_options);
  std::vector<Segment> segments;
  Stopwatch model_watch;
  for (const Tuple& t : history) {
    Result<std::optional<Segment>> r = modeler.Add(t);
    if (r.ok() && r->has_value()) segments.push_back(std::move(**r));
  }
  Result<std::vector<Segment>> rest = modeler.Flush();
  if (rest.ok()) {
    for (Segment& s : *rest) segments.push_back(std::move(s));
  }
  std::printf("modeled once in %.3f s -> %zu segments (%.0f tuples per "
              "segment)\n",
              model_watch.ElapsedSeconds(), segments.size(),
              static_cast<double>(history.size()) / segments.size());

  // Phase 2: replay the compact model through many query variants.
  std::printf("\n%12s %14s %14s\n", "short_window", "alert_segments",
              "sweep_seconds");
  for (double short_window : {5.0, 10.0, 20.0, 30.0, 45.0}) {
    QuerySpec spec;
    Status st = spec.AddStream(stream);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    MacdParams params;
    params.short_window = short_window;
    params.long_window = 60.0;
    params.slide = 2.0;
    Result<QuerySpec::NodeId> sink = AddMacdQuery(&spec, params);
    if (!sink.ok()) {
      std::fprintf(stderr, "%s\n", sink.status().ToString().c_str());
      return 1;
    }
    HistoricalRuntime::Options options;
    options.segmentation = seg_options;
    options.collect_outputs = false;
    Result<HistoricalRuntime> runtime =
        HistoricalRuntime::Make(spec, options);
    if (!runtime.ok()) {
      std::fprintf(stderr, "%s\n", runtime.status().ToString().c_str());
      return 1;
    }
    Stopwatch watch;
    for (const Segment& s : segments) {
      st = runtime->ProcessSegment("nyse", s);
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
    }
    (void)runtime->Finish();
    std::printf("%12.0f %14llu %14.3f\n", short_window,
                (unsigned long long)runtime->stats().output_segments,
                watch.ElapsedSeconds());
  }
  std::printf(
      "\nEach variant consumed %zu segments instead of %zu tuples — the "
      "modeling cost is paid once\nand amortized across the sweep "
      "(paper Section II-A, historical processing).\n",
      segments.size(), history.size());
  return 0;
}
