#ifndef PULSE_ENGINE_FILTER_H_
#define PULSE_ENGINE_FILTER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/operator.h"
#include "math/roots.h"

namespace pulse {

/// One side of a structured comparison: a field reference or a constant.
struct Comparand {
  enum class Kind { kField, kConstant };
  Kind kind = Kind::kConstant;
  size_t field = 0;
  Value constant;

  static Comparand FieldRef(size_t index) {
    Comparand c;
    c.kind = Kind::kField;
    c.field = index;
    return c;
  }
  static Comparand Const(Value v) {
    Comparand c;
    c.kind = Kind::kConstant;
    c.constant = std::move(v);
    return c;
  }

  const Value& Resolve(const Tuple& t) const {
    return kind == Kind::kField ? t.at(field) : constant;
  }
};

/// A structured predicate term `lhs R rhs` over tuple fields. Structured
/// (rather than opaque lambda) terms are what the Pulse query transform
/// rewrites into difference equations.
struct FieldComparison {
  size_t lhs_field = 0;
  CmpOp op = CmpOp::kEq;
  Comparand rhs;
};

/// Evaluates one comparison against a tuple.
bool EvaluateComparison(const Tuple& tuple, const FieldComparison& cmp);

/// Discrete stream filter: passes tuples satisfying the conjunction of
/// all comparisons. Schema passes through unchanged.
class ComparisonFilter : public Operator {
 public:
  ComparisonFilter(std::string name, std::shared_ptr<const Schema> schema,
                   std::vector<FieldComparison> predicate);

  std::shared_ptr<const Schema> output_schema() const override {
    return schema_;
  }

  Status Process(size_t port, const Tuple& input,
                 std::vector<Tuple>* out) override;

 private:
  std::shared_ptr<const Schema> schema_;
  std::vector<FieldComparison> predicate_;
};

/// Filter with an arbitrary boolean function, for predicates the
/// structured form cannot express (used by baseline-only queries).
class LambdaFilter : public Operator {
 public:
  LambdaFilter(std::string name, std::shared_ptr<const Schema> schema,
               std::function<bool(const Tuple&)> predicate);

  std::shared_ptr<const Schema> output_schema() const override {
    return schema_;
  }

  Status Process(size_t port, const Tuple& input,
                 std::vector<Tuple>* out) override;

 private:
  std::shared_ptr<const Schema> schema_;
  std::function<bool(const Tuple&)> predicate_;
};

}  // namespace pulse

#endif  // PULSE_ENGINE_FILTER_H_
