#ifndef PULSE_CORE_TRANSFORM_H_
#define PULSE_CORE_TRANSFORM_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/pulse_plan.h"
#include "core/query.h"
#include "engine/plan.h"
#include "engine/tuple.h"
#include "model/segment.h"
#include "util/result.h"

namespace pulse {

/// A discrete (tuple-based) realization of a QuerySpec: the baseline
/// Borealis-style plan the paper measures Pulse against.
struct DiscretePlan {
  QueryPlan plan;
  /// Output schema of each sink, in QueryPlan::SinkNodes() order.
  std::vector<std::shared_ptr<const Schema>> sink_schemas;
};

/// Builds the discrete plan for `spec`: filters and joins become lambda-
/// predicate tuple operators, aggregates become windowed (optionally
/// grouped) accumulators, and a composite pair-key column is materialized
/// after self-joins so downstream GROUP BY (id1, id2) works.
Result<DiscretePlan> BuildDiscretePlan(const QuerySpec& spec);

/// The Pulse realization of a QuerySpec: the paper's rule-based query
/// transformation (Section V: "general functionality for rule-based query
/// transformations... in addition to specialized transformations to our
/// equation systems"). Maps each logical operator onto its equation-
/// system implementation.
struct TransformedPlan {
  PulsePlan plan;
  /// QuerySpec node -> PulsePlan node.
  std::map<QuerySpec::NodeId, PulsePlan::NodeId> node_map;
};

Result<TransformedPlan> BuildPulsePlan(const QuerySpec& spec);

/// Builds predictive model segments from tuples per a stream's MODEL
/// clauses (paper Section II-B): coefficient attributes are read off the
/// tuple, producing one polynomial per modeled attribute in *absolute*
/// time, valid over [t, t + segment_horizon).
class SegmentModelBuilder {
 public:
  /// Resolves field indices against the stream schema.
  static Result<SegmentModelBuilder> Make(const StreamSpec& spec);

  /// Builds the segment the MODEL clause implies for this tuple.
  Result<Segment> BuildSegment(const Tuple& tuple) const;

  /// The entity key of a tuple.
  Key KeyOf(const Tuple& tuple) const;

  /// Observed value of a modeled attribute on a tuple (for validation).
  /// Requires the modeled attribute to also exist as a tuple field.
  Result<double> ObservedValue(const Tuple& tuple,
                               const std::string& attribute) const;

  const StreamSpec& spec() const { return spec_; }

 private:
  SegmentModelBuilder() = default;

  StreamSpec spec_;
  size_t key_index_ = 0;
  // Per model clause: resolved coefficient field indices.
  std::vector<std::vector<size_t>> coefficient_indices_;
  // Modeled attribute name -> tuple field index (when present).
  std::map<std::string, size_t> observed_indices_;
};

}  // namespace pulse

#endif  // PULSE_CORE_TRANSFORM_H_
