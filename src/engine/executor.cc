#include "engine/executor.h"

#include <deque>

namespace pulse {

Result<Executor> Executor::Make(QueryPlan plan) {
  Executor exec(std::move(plan));
  PULSE_ASSIGN_OR_RETURN(exec.topo_order_, exec.plan_.TopologicalOrder());
  return exec;
}

void Executor::set_metrics_registry(obs::MetricsRegistry* registry) {
  registry_ = registry;
  views_ = obs::ViewGroup();  // drop any previous binding
  node_hists_.assign(plan_.num_nodes(), nullptr);
  if (registry == nullptr) return;
  registry->BindViews(&views_);
  for (QueryPlan::NodeId id = 0; id < plan_.num_nodes(); ++id) {
    Operator* op = plan_.node(id);
    RegisterOperatorViews(views_, op->name(), op->metrics());
    node_hists_[id] =
        registry->GetHistogram("op/" + op->name() + "/process_ns");
  }
}

Status Executor::RunNode(QueryPlan::NodeId id, size_t port,
                         const Tuple& tuple, std::vector<Tuple>* out) {
  Operator* op = plan_.node(id);
  if constexpr (obs::kMetricsEnabled) {
    if (registry_ != nullptr) {
      obs::Span span(node_hists_[id], &op->metrics().processing_ns);
      return op->Process(port, tuple, out);
    }
  }
  return op->Process(port, tuple, out);
}

void Executor::DeliverToSink(const Tuple& tuple) {
  ++total_output_;
  if (callback_) callback_(tuple);
  if (!discard_output_) output_.push_back(tuple);
}

Status Executor::Drain(QueryPlan::NodeId from, std::vector<Tuple> tuples) {
  // Explicit work queue of (node, port, tuple) deliveries.
  struct Work {
    QueryPlan::NodeId node;
    size_t port;
    Tuple tuple;
  };
  std::deque<Work> pending;
  auto route = [&](QueryPlan::NodeId producer, std::vector<Tuple>& outs) {
    const auto& edges = plan_.downstream(producer);
    if (edges.empty()) {
      for (const Tuple& t : outs) DeliverToSink(t);
      return;
    }
    for (const Tuple& t : outs) {
      for (const auto& e : edges) pending.push_back(Work{e.to, e.port, t});
    }
  };
  route(from, tuples);
  std::vector<Tuple> outs;
  while (!pending.empty()) {
    Work w = std::move(pending.front());
    pending.pop_front();
    outs.clear();
    PULSE_RETURN_IF_ERROR(RunNode(w.node, w.port, w.tuple, &outs));
    route(w.node, outs);
  }
  return Status::OK();
}

Status Executor::PushTuple(const std::string& stream, const Tuple& tuple) {
  const auto& bindings = plan_.source_bindings(stream);
  if (bindings.empty()) {
    return Status::NotFound("no operator bound to stream '" + stream + "'");
  }
  for (const auto& e : bindings) {
    std::vector<Tuple> outs;
    PULSE_RETURN_IF_ERROR(RunNode(e.to, e.port, tuple, &outs));
    PULSE_RETURN_IF_ERROR(Drain(e.to, std::move(outs)));
  }
  return Status::OK();
}

Status Executor::AdvanceTime(double t) {
  for (QueryPlan::NodeId id : topo_order_) {
    std::vector<Tuple> outs;
    PULSE_RETURN_IF_ERROR(plan_.node(id)->AdvanceTime(t, &outs));
    PULSE_RETURN_IF_ERROR(Drain(id, std::move(outs)));
  }
  return Status::OK();
}

Status Executor::Finish() {
  for (QueryPlan::NodeId id : topo_order_) {
    std::vector<Tuple> outs;
    PULSE_RETURN_IF_ERROR(plan_.node(id)->Flush(&outs));
    PULSE_RETURN_IF_ERROR(Drain(id, std::move(outs)));
  }
  return Status::OK();
}

std::vector<Tuple> Executor::TakeOutput() {
  std::vector<Tuple> out = std::move(output_);
  output_.clear();
  return out;
}

}  // namespace pulse
