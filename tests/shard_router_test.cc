// Pins the shard routing contract of docs/SHARDING.md: the key hash is
// a stable on-disk-grade constant (golden values), the router spreads
// keys evenly and deterministically, partitionability analysis accepts
// exactly the plan shapes whose state is per-key, and the sharded
// runtime reproduces the serial runtime byte-identically.

#include "shard/shard_router.h"

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "shard/sharded_runtime.h"
#include "testing/differential.h"
#include "testing/plan_gen.h"
#include "workload/telemetry.h"

namespace pulse {
namespace shard {
namespace {

// Golden values for the splitmix64 finalizer. These pin the hash
// constants themselves: any change to ShardKeyHash silently reshuffles
// every key-to-shard assignment, so it must fail loudly here instead.
TEST(ShardKeyHash, GoldenValues) {
  EXPECT_EQ(ShardKeyHash(0), 0xe220a8397b1dcdafull);
  EXPECT_EQ(ShardKeyHash(1), 0x910a2dec89025cc1ull);
  EXPECT_EQ(ShardKeyHash(7), 0x63cbe1e459320dd7ull);
  EXPECT_EQ(ShardKeyHash(42), 0xbdd732262feb6e95ull);
  EXPECT_EQ(ShardKeyHash(-1), 0xe4d971771b652c20ull);
  EXPECT_EQ(ShardKeyHash(123456789), 0x223c74d93deb7679ull);
}

TEST(ShardRouter, ClampsToAtLeastOneShard) {
  EXPECT_EQ(ShardRouter(0).num_shards(), 1u);
  EXPECT_EQ(ShardRouter(1).num_shards(), 1u);
  EXPECT_EQ(ShardRouter(5).num_shards(), 5u);
}

TEST(ShardRouter, SingleShardTakesEverything) {
  ShardRouter router(1);
  for (Key key = -100; key <= 100; ++key) {
    EXPECT_EQ(router.ShardOf(key), 0u);
  }
}

TEST(ShardRouter, Deterministic) {
  ShardRouter a(4);
  ShardRouter b(4);
  for (Key key = 0; key < 1000; ++key) {
    EXPECT_EQ(a.ShardOf(key), b.ShardOf(key));
  }
}

// Sequential keys (the common entity-id shape) must spread close to
// uniformly: with 10k keys over 4 shards, each shard expects 2500; a
// [2200, 2800] band is ~12 sigma for a uniform hash, so a failure means
// the hash or the range reduction is broken, not bad luck.
TEST(ShardRouter, SpreadsSequentialKeysEvenly) {
  ShardRouter router(4);
  std::vector<size_t> counts(4, 0);
  for (Key key = 0; key < 10000; ++key) {
    const size_t shard = router.ShardOf(key);
    ASSERT_LT(shard, 4u);
    ++counts[shard];
  }
  for (size_t shard = 0; shard < 4; ++shard) {
    EXPECT_GT(counts[shard], 2200u) << "shard " << shard;
    EXPECT_LT(counts[shard], 2800u) << "shard " << shard;
  }
}

// A hot key is pinned: every occurrence lands on one shard (per-key
// state never splits), whatever the shard count.
TEST(ShardRouter, HotKeyStaysOnOneShard) {
  for (size_t shards : {2u, 3u, 4u, 7u, 16u}) {
    ShardRouter router(shards);
    const size_t home = router.ShardOf(42);
    for (int i = 0; i < 100; ++i) {
      EXPECT_EQ(router.ShardOf(42), home) << shards << " shards";
    }
  }
}

// ---------------------------------------------------------------------
// Partitionability: per-key state shapes pass, cross-key shapes do not.

TEST(AnalyzePartitionability, EmptyPlanIsPartitionable) {
  QuerySpec spec;
  EXPECT_TRUE(AnalyzePartitionability(spec).partitionable);
}

TEST(AnalyzePartitionability, FilterAndPerKeyAggregatePass) {
  QuerySpec spec;
  spec.AddFilter("f", QuerySpec::Input::Stream("s"), FilterSpec{});
  AggregateSpec agg;
  agg.per_key = true;
  spec.AddAggregate("a", QuerySpec::Input::Node(0), agg);
  const PartitionAnalysis analysis = AnalyzePartitionability(spec);
  EXPECT_TRUE(analysis.partitionable) << analysis.reason;
}

TEST(AnalyzePartitionability, KeyMatchedJoinPasses) {
  QuerySpec spec;
  JoinSpec join;
  join.match_keys = true;
  spec.AddJoin("j", QuerySpec::Input::Stream("l"),
               QuerySpec::Input::Stream("r"), join);
  const PartitionAnalysis analysis = AnalyzePartitionability(spec);
  EXPECT_TRUE(analysis.partitionable) << analysis.reason;
}

TEST(AnalyzePartitionability, CrossKeyJoinRejected) {
  QuerySpec spec;
  JoinSpec join;
  join.match_keys = false;
  spec.AddJoin("j", QuerySpec::Input::Stream("l"),
               QuerySpec::Input::Stream("r"), join);
  const PartitionAnalysis analysis = AnalyzePartitionability(spec);
  EXPECT_FALSE(analysis.partitionable);
  EXPECT_FALSE(analysis.reason.empty());
}

TEST(AnalyzePartitionability, DistinctKeySelfJoinRejected) {
  QuerySpec spec;
  JoinSpec join;
  join.match_keys = true;
  join.require_distinct_keys = true;
  spec.AddJoin("j", QuerySpec::Input::Stream("s"),
               QuerySpec::Input::Stream("s"), join);
  EXPECT_FALSE(AnalyzePartitionability(spec).partitionable);
}

TEST(AnalyzePartitionability, CrossKeyAggregateRejected) {
  QuerySpec spec;
  AggregateSpec agg;
  agg.per_key = false;
  spec.AddAggregate("a", QuerySpec::Input::Stream("s"), agg);
  EXPECT_FALSE(AnalyzePartitionability(spec).partitionable);
}

TEST(AnalyzePartitionability, EpochDistinctDetectionChainPasses) {
  // The Sonata detection shape — epoch -> filter -> distinct — is
  // per-key throughout: epoch is stateless and distinct keeps one
  // last-emitted-epoch per key, so a key-hash partition preserves the
  // output exactly.
  QuerySpec spec;
  ASSERT_TRUE(
      spec.AddStream(TelemetryGenerator::MakeStreamSpec("telemetry", 5.0))
          .ok());
  ASSERT_TRUE(AddPortScanQuery(&spec, TelemetryQueryParams{}).ok());
  const PartitionAnalysis analysis = AnalyzePartitionability(spec);
  EXPECT_TRUE(analysis.partitionable) << analysis.reason;
}

// ---------------------------------------------------------------------
// End to end: the sharded runtime equals the serial one byte for byte.
// The differential suite pins this across 200 seeds and a full
// threads x cache x shards grid; this is the fast smoke plus the
// non-partitionable fallback and the shard metrics naming contract.

// Detection output is shard-count invariant: the epoch/distinct chain
// run over telemetry-mode model segments produces byte-identical events
// at 1, 2, and 3 shards (per-key distinct state never observes a key it
// doesn't own, and the canonical merge restores one global order).
TEST(ShardedRuntime, EpochDistinctDetectionIsShardCountInvariant) {
  testing::PlanGenOptions gen;
  gen.archetypes = {testing::PlanArchetype::kEpochDistinct};
  auto kase = testing::GenerateCase(3010, gen);
  ASSERT_TRUE(kase.ok()) << kase.status().message();

  auto run = [&](size_t shards) -> std::vector<std::string> {
    ShardedRuntimeOptions options;
    options.num_shards = shards;
    options.runtime.collect_outputs = true;
    auto rt = ShardedRuntime::Make(kase->spec, std::move(options));
    EXPECT_TRUE(rt.ok()) << rt.status().message();
    EXPECT_TRUE(rt->partitionable());
    EXPECT_EQ(rt->num_shards(), shards);
    for (const auto& ws : kase->workloads) {
      for (const Segment& s : ws.ToSegments()) {
        EXPECT_TRUE(rt->ProcessSegment(ws.name, s).ok());
      }
    }
    EXPECT_TRUE(rt->Finish().ok());
    std::vector<std::string> events;
    for (const Segment& s : rt->TakeOutputSegments()) {
      events.push_back(s.ToString());
    }
    return events;
  };

  const std::vector<std::string> serial = run(1);
  EXPECT_FALSE(serial.empty())
      << "seed 3010 should produce detection events (vacuous otherwise)";
  EXPECT_EQ(run(2), serial) << "2-shard detection output diverged";
  EXPECT_EQ(run(3), serial) << "3-shard detection output diverged";
}

TEST(ShardedRuntime, NonPartitionablePlanCollapsesToOneShard) {
  // Seeds with a cross-key sink (the generator's join archetype uses
  // require_distinct_keys) still run — on one effective shard.
  auto kase = testing::GenerateCase(1001);
  ASSERT_TRUE(kase.ok()) << kase.status().message();
  ShardedRuntimeOptions options;
  options.num_shards = 4;
  options.runtime.collect_outputs = true;
  auto rt = ShardedRuntime::Make(kase->spec, std::move(options));
  ASSERT_TRUE(rt.ok()) << rt.status().message();
  if (!rt->partitionable()) {
    EXPECT_EQ(rt->num_shards(), 1u);
  } else {
    EXPECT_EQ(rt->num_shards(), 4u);
  }
}

TEST(ShardedRuntime, ShardMetricsNamesPublished) {
  auto kase = testing::GenerateCase(1002);
  ASSERT_TRUE(kase.ok()) << kase.status().message();
  ShardedRuntimeOptions options;
  options.num_shards = 2;
  options.runtime.collect_outputs = true;
  auto rt = ShardedRuntime::Make(kase->spec, std::move(options));
  ASSERT_TRUE(rt.ok()) << rt.status().message();
  for (size_t i = 0; i < kase->workloads.size(); ++i) {
    for (const Segment& s : kase->workloads[i].ToSegments()) {
      ASSERT_TRUE(
          rt->ProcessSegment(kase->workloads[i].name, s).ok());
    }
  }
  ASSERT_TRUE(rt->Finish().ok());
  rt->SyncMetrics();
  const obs::MetricsSnapshot snap = rt->metrics()->Snapshot();
  if (!obs::kMetricsEnabled) return;
  // Per-shard mirrors for every effective shard, plus the plain-name
  // rollup the serving admission controller reads.
  for (size_t shard = 0; shard < rt->num_shards(); ++shard) {
    const std::string prefix = "shard/" + std::to_string(shard) + "/";
    bool found = false;
    for (const auto& [name, value] : snap.counters) {
      if (name.rfind(prefix, 0) == 0) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "no counters under " << prefix;
  }
  EXPECT_TRUE(snap.histograms.count("span/runtime/push_segment") > 0 ||
              snap.counters.count("runtime/segments_in") > 0);
}

}  // namespace
}  // namespace shard
}  // namespace pulse
