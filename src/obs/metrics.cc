#include "obs/metrics.h"

#include <algorithm>
#include <cstring>

namespace pulse {
namespace obs {

namespace {

// floor(log2(v)) for v >= 1.
inline int Log2Floor(uint64_t v) {
#if defined(__GNUC__) || defined(__clang__)
  return 63 - __builtin_clzll(v);
#else
  int r = 0;
  while (v >>= 1) ++r;
  return r;
#endif
}

}  // namespace

// ---------------------------------------------------------------------
// Gauge

uint64_t Gauge::ToBits(double d) {
  uint64_t b;
  std::memcpy(&b, &d, sizeof(b));
  return b;
}

double Gauge::FromBits(uint64_t b) {
  double d;
  std::memcpy(&d, &b, sizeof(d));
  return d;
}

// ---------------------------------------------------------------------
// Histogram

size_t Histogram::BucketOf(uint64_t value) {
  if (value < 4) return static_cast<size_t>(value);
  const int octave = Log2Floor(value);           // in [2, 63]
  const uint64_t sub = (value >> (octave - 2)) & 3;
  return static_cast<size_t>((octave - 1) * 4 + sub);
}

std::pair<uint64_t, uint64_t> Histogram::BucketBounds(size_t b) {
  if (b < 4) return {b, b + 1};
  const int octave = static_cast<int>(b / 4 + 1);
  const uint64_t sub = b % 4;
  const uint64_t lo = (4 + sub) << (octave - 2);
  if (b + 1 == kNumBuckets) {
    // (4+3+1) << 61 would wrap; the top bucket is open-ended.
    return {lo, UINT64_MAX};
  }
  return {lo, lo + (uint64_t{1} << (octave - 2))};
}

void Histogram::Record(uint64_t value) {
  if constexpr (!kMetricsEnabled) {
    (void)value;
    return;
  }
  buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

void Histogram::SetTo(const std::array<uint64_t, kNumBuckets>& buckets,
                      uint64_t count, uint64_t sum, uint64_t max) {
  if constexpr (!kMetricsEnabled) {
    (void)buckets;
    (void)count;
    (void)sum;
    (void)max;
    return;
  }
  for (size_t i = 0; i < kNumBuckets; ++i) {
    buckets_[i].store(buckets[i], std::memory_order_relaxed);
  }
  // count last: a concurrent percentile read that sees the new count
  // with some old buckets is no worse than any other racy snapshot.
  sum_.store(sum, std::memory_order_relaxed);
  max_.store(max, std::memory_order_relaxed);
  count_.store(count, std::memory_order_relaxed);
}

std::array<uint64_t, Histogram::kNumBuckets> Histogram::BucketCounts() const {
  std::array<uint64_t, kNumBuckets> out;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double PercentileFromBuckets(
    const std::array<uint64_t, Histogram::kNumBuckets>& buckets,
    uint64_t count, double p) {
  if (count == 0) return 0.0;
  p = std::min(100.0, std::max(0.0, p));
  // Rank of the p-quantile observation, 1-based; p=0 maps to the first.
  const double target = std::max(1.0, p / 100.0 * static_cast<double>(count));
  uint64_t cum = 0;
  for (size_t b = 0; b < Histogram::kNumBuckets; ++b) {
    const uint64_t in_bucket = buckets[b];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cum + in_bucket) >= target) {
      const auto [lo, hi] = Histogram::BucketBounds(b);
      // Interpolate linearly between the bucket bounds by the fraction of
      // the bucket's observations below the target rank.
      const double frac =
          (target - static_cast<double>(cum)) / static_cast<double>(in_bucket);
      return static_cast<double>(lo) +
             frac * (static_cast<double>(hi) - static_cast<double>(lo));
    }
    cum += in_bucket;
  }
  // Rounding pushed the target past the last populated bucket.
  for (size_t b = Histogram::kNumBuckets; b-- > 0;) {
    if (buckets[b] != 0) return static_cast<double>(Histogram::BucketBounds(b).second);
  }
  return 0.0;
}

double Histogram::Percentile(double p) const {
  const double est = PercentileFromBuckets(BucketCounts(), count(), p);
  // The true order statistic never exceeds the maximum recorded value, so
  // clamp the bucket upper-bound interpolation to it.
  const uint64_t mx = max();
  return std::min(est, static_cast<double>(mx));
}

// ---------------------------------------------------------------------
// ViewGroup

ViewGroup::~ViewGroup() { Release(); }

ViewGroup::ViewGroup(ViewGroup&& other) noexcept
    : registry_(other.registry_), id_(other.id_) {
  other.registry_ = nullptr;
  other.id_ = 0;
}

ViewGroup& ViewGroup::operator=(ViewGroup&& other) noexcept {
  if (this != &other) {
    Release();
    registry_ = other.registry_;
    id_ = other.id_;
    other.registry_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

void ViewGroup::AddCounterView(const std::string& name,
                               const RelaxedCounter* source) {
  if (registry_ != nullptr) registry_->AddView(id_, name, source, false);
}

void ViewGroup::AddGaugeView(const std::string& name,
                             const RelaxedCounter* source) {
  if (registry_ != nullptr) registry_->AddView(id_, name, source, true);
}

void ViewGroup::Release() {
  if (registry_ != nullptr) {
    registry_->DropViews(id_);
    registry_ = nullptr;
    id_ = 0;
  }
}

// ---------------------------------------------------------------------
// MetricsRegistry

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return &counters_[name];
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return &gauges_[name];
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return &histograms_[name];
}

void MetricsRegistry::BindViews(ViewGroup* group) {
  group->Release();
  std::lock_guard<std::mutex> lock(mu_);
  group->registry_ = this;
  group->id_ = next_group_++;
}

void MetricsRegistry::AddView(uint64_t group, const std::string& name,
                              const RelaxedCounter* source, bool is_gauge) {
  if (source == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  std::string key = name;
  for (int n = 2; views_.count(key) != 0; ++n) {
    key = name + "#" + std::to_string(n);
  }
  views_[key] = View{source, is_gauge, group};
}

void MetricsRegistry::DropViews(uint64_t group) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = views_.begin(); it != views_.end();) {
    it = it->second.group == group ? views_.erase(it) : std::next(it);
  }
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  if constexpr (!kMetricsEnabled) return snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) snap.counters[name] = c.value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g.value();
  for (const auto& [name, h] : histograms_) {
    HistogramStats s;
    s.count = h.count();
    if (s.count > 0) {
      const auto buckets = h.BucketCounts();
      s.sum = h.sum();
      s.max = h.max();
      const double mx = static_cast<double>(s.max);
      s.p50 = std::min(PercentileFromBuckets(buckets, s.count, 50.0), mx);
      s.p95 = std::min(PercentileFromBuckets(buckets, s.count, 95.0), mx);
      s.p99 = std::min(PercentileFromBuckets(buckets, s.count, 99.0), mx);
    }
    snap.histograms[name] = s;
  }
  for (const auto& [name, view] : views_) {
    const uint64_t v = view.source->value();
    if (view.is_gauge) {
      snap.gauges[name] = static_cast<double>(v);
    } else {
      snap.counters[name] = v;
    }
  }
  return snap;
}

namespace {

/// Raw histogram state lifted out of a registry while its mutex is
/// held, applied to the destination after release (two registries'
/// mutexes are never held at once, so MirrorInto/Rollup cannot
/// deadlock against each other or against Get*).
struct RawHistogram {
  std::array<uint64_t, Histogram::kNumBuckets> buckets{};
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
};

}  // namespace

void MetricsRegistry::MirrorInto(MetricsRegistry* dst,
                                 const std::string& prefix) const {
  if constexpr (!kMetricsEnabled) return;
  if (dst == this || dst == nullptr) return;
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, RawHistogram>> histograms;
  {
    std::lock_guard<std::mutex> lock(mu_);
    counters.reserve(counters_.size() + views_.size());
    for (const auto& [name, c] : counters_) {
      counters.emplace_back(name, c.value());
    }
    for (const auto& [name, g] : gauges_) {
      gauges.emplace_back(name, g.value());
    }
    for (const auto& [name, h] : histograms_) {
      RawHistogram raw;
      raw.buckets = h.BucketCounts();
      raw.count = h.count();
      raw.sum = h.sum();
      raw.max = h.max();
      histograms.emplace_back(name, raw);
    }
    for (const auto& [name, view] : views_) {
      const uint64_t v = view.source->value();
      if (view.is_gauge) {
        gauges.emplace_back(name, static_cast<double>(v));
      } else {
        counters.emplace_back(name, v);
      }
    }
  }
  for (const auto& [name, v] : counters) {
    dst->GetCounter(prefix + name)->Store(v);
  }
  for (const auto& [name, v] : gauges) {
    dst->GetGauge(prefix + name)->Set(v);
  }
  for (const auto& [name, raw] : histograms) {
    dst->GetHistogram(prefix + name)
        ->SetTo(raw.buckets, raw.count, raw.sum, raw.max);
  }
}

void MetricsRegistry::Rollup(
    const std::vector<const MetricsRegistry*>& sources,
    MetricsRegistry* dst) {
  if constexpr (!kMetricsEnabled) return;
  if (dst == nullptr) return;
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, RawHistogram> histograms;
  for (const MetricsRegistry* src : sources) {
    if (src == nullptr || src == dst) continue;
    std::lock_guard<std::mutex> lock(src->mu_);
    for (const auto& [name, c] : src->counters_) {
      counters[name] += c.value();
    }
    for (const auto& [name, g] : src->gauges_) {
      gauges[name] += g.value();
    }
    for (const auto& [name, h] : src->histograms_) {
      RawHistogram& acc = histograms[name];
      const auto buckets = h.BucketCounts();
      for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
        acc.buckets[i] += buckets[i];
      }
      acc.count += h.count();
      acc.sum += h.sum();
      acc.max = std::max(acc.max, h.max());
    }
    for (const auto& [name, view] : src->views_) {
      const uint64_t v = view.source->value();
      if (view.is_gauge) {
        gauges[name] += static_cast<double>(v);
      } else {
        counters[name] += v;
      }
    }
  }
  for (const auto& [name, v] : counters) {
    dst->GetCounter(name)->Store(v);
  }
  for (const auto& [name, v] : gauges) {
    dst->GetGauge(name)->Set(v);
  }
  for (const auto& [name, raw] : histograms) {
    dst->GetHistogram(name)->SetTo(raw.buckets, raw.count, raw.sum,
                                   raw.max);
  }
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size() + views_.size();
}

MetricsRegistry* DefaultRegistry() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

}  // namespace obs
}  // namespace pulse
