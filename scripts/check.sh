#!/usr/bin/env bash
# Tier-1 verification plus sanitizer passes and a solver-hot-path
# performance gate.
#
#   scripts/check.sh               # build + ctest + TSan + ASan + fuzz + bench
#   SKIP_SCALAR=1 scripts/check.sh # skip the forced-scalar solver pass
#   SKIP_TSAN=1 scripts/check.sh   # skip the ThreadSanitizer pass
#   SKIP_ASAN=1 scripts/check.sh   # skip the ASan/UBSan pass
#   SKIP_FUZZ=1 scripts/check.sh   # skip the fuzz-smoke stage
#   SKIP_BENCH=1 scripts/check.sh  # skip the bench regression gate
#   SKIP_METRICS_GATE=1 ...        # skip the metrics-overhead micro-gate
#   SKIP_PRECISION=1 ...           # skip the adaptive-precision gate
#   SKIP_EXAMPLES=1 ...            # skip the examples build-and-smoke stage
#   SKIP_DOCS=1 ...                # skip the docs link check
#
# Run from anywhere; build trees land in <repo>/build, <repo>/build-tsan,
# <repo>/build-asan, <repo>/build-fuzz and <repo>/build-nometrics.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 2)"

echo "== tier-1: configure + build + ctest =="
cmake -B "$repo/build" -S "$repo"
cmake --build "$repo/build" -j "$jobs"
ctest --test-dir "$repo/build" --output-on-failure -j "$jobs"

if [[ "${SKIP_SCALAR:-0}" == "1" ]]; then
  echo "== SKIP_SCALAR=1: skipping forced-scalar pass =="
else
  echo "== forced scalar: solver tests with PULSE_FORCE_SCALAR=1 =="
  # The batched kernels promise bit-identity with the scalar closed
  # forms (docs/PERFORMANCE.md, "Batched solver kernels"). The tier-1
  # run above exercises whichever SIMD tier the host dispatches to;
  # this pass re-runs the solver-adjacent subset with dispatch pinned
  # to the scalar fallback so both sides of the contract stay covered
  # regardless of host ISA.
  # epoch_distinct_test, telemetry_test and equivalence_test ride along:
  # the epoch/distinct operators and the detection queries sit directly on
  # the root isolator, so the scalar fallback must reproduce their
  # boundary semantics bit for bit too.
  for t in batch_kernels_test roots_test equation_system_test \
           solve_cache_test predicate_test pulse_filter_test \
           pulse_join_test runtime_test differential_test \
           epoch_distinct_test telemetry_test equivalence_test; do
    echo "  PULSE_FORCE_SCALAR=1 $t"
    PULSE_FORCE_SCALAR=1 "$repo/build/tests/$t" --gtest_brief=1
  done
fi

if [[ "${SKIP_TSAN:-0}" == "1" ]]; then
  echo "== SKIP_TSAN=1: skipping ThreadSanitizer pass =="
else
  echo "== TSan: threaded tests (-DPULSE_TSAN=ON) =="
  cmake -B "$repo/build-tsan" -S "$repo" -DPULSE_TSAN=ON
  cmake --build "$repo/build-tsan" -j "$jobs" \
    --target metrics_registry_test thread_pool_test runtime_test \
             solve_cache_test differential_test serve_test \
             shard_router_test epoch_distinct_test telemetry_test \
             store_recovery_test precision_test

  # halt_on_error makes a race fail the script, not just print a warning.
  # differential_test runs the metamorphic parallel AND sharded variants
  # (num_threads = 4, num_shards in {2, 3}) of every generated case under
  # TSan — the shard pool's exchange queues, completion merge, and
  # teardown all execute with real worker threads here;
  # metrics_registry_test hammers one registry from 8 writer threads
  # while snapshotting (the registry's lock-free hot path must be clean).
  TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
    "$repo/build-tsan/tests/metrics_registry_test"
  TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
    "$repo/build-tsan/tests/thread_pool_test"
  TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
    "$repo/build-tsan/tests/runtime_test"
  TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
    "$repo/build-tsan/tests/solve_cache_test"
  TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
    "$repo/build-tsan/tests/differential_test"
  # serve_test exercises the full serving stack — concurrent sessions
  # multiplexed onto the shared shard pool, blocking queues, teardown
  # under load — the code most likely to race.
  TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
    "$repo/build-tsan/tests/serve_test"
  # shard_router_test drives the sharded runtime end to end (router,
  # exchange, per-shard metrics mirroring) with live worker threads.
  TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
    "$repo/build-tsan/tests/shard_router_test"
  # The telemetry family: epoch/distinct operators plus the detection
  # queries end to end on both realizations. Mostly single-threaded, but
  # differential_test above re-runs the same plans through the threaded
  # and sharded executors, so a clean pass here plus a clean
  # differential pass covers the telemetry battery under TSan.
  TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
    "$repo/build-tsan/tests/epoch_distinct_test"
  TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
    "$repo/build-tsan/tests/telemetry_test"
  # store_recovery_test's kill-and-restore scenarios run the sharded
  # runtime (live worker threads + Barrier) against the shared durable
  # store, and differential_test above runs the kill-restore variant of
  # every generated case — both must be race-free.
  TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
    "$repo/build-tsan/tests/store_recovery_test"
  # precision_test runs an adaptive session against a static session over
  # live transports — reader thread stamping tiers, worker applying them,
  # the provisional/confirm/retract side-band flushed concurrently with
  # admission — the new cross-thread surface of the precision stage.
  TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
    "$repo/build-tsan/tests/precision_test"
fi

if [[ "${SKIP_ASAN:-0}" == "1" ]]; then
  echo "== SKIP_ASAN=1: skipping ASan/UBSan pass =="
else
  echo "== ASan+UBSan: tier-1 tests (-DPULSE_ASAN=ON) =="
  cmake -B "$repo/build-asan" -S "$repo" -DPULSE_ASAN=ON
  cmake --build "$repo/build-asan" -j "$jobs"
  ASAN_OPTIONS="halt_on_error=1 detect_leaks=0 ${ASAN_OPTIONS:-}" \
  UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1 ${UBSAN_OPTIONS:-}" \
    ctest --test-dir "$repo/build-asan" --output-on-failure -j "$jobs"
fi

if [[ "${SKIP_FUZZ:-0}" == "1" ]]; then
  echo "== SKIP_FUZZ=1: skipping fuzz-smoke stage =="
else
  echo "== fuzz smoke: corpus replay + bounded random runs (-DPULSE_FUZZ=ON) =="
  cmake -B "$repo/build-fuzz" -S "$repo" -DPULSE_FUZZ=ON -DPULSE_ASAN=ON
  cmake --build "$repo/build-fuzz" -j "$jobs" \
    --target fuzz_parser fuzz_roots fuzz_interval_set fuzz_store_log

  have_libfuzzer="$(grep -c '^PULSE_HAVE_LIBFUZZER:INTERNAL=1' \
    "$repo/build-fuzz/CMakeCache.txt" || true)"
  for target in parser roots interval_set store_log; do
    bin="$repo/build-fuzz/fuzz/fuzz_$target"
    corpus="$repo/tests/corpus/$target"
    export ASAN_OPTIONS="halt_on_error=1 detect_leaks=0 ${ASAN_OPTIONS:-}"
    export UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1 ${UBSAN_OPTIONS:-}"
    if [[ "$have_libfuzzer" == "1" ]]; then
      # Real coverage-guided fuzzing, time-boxed per target. Crashers are
      # written to the current directory; see docs/TESTING.md for triage.
      "$bin" "$corpus" -max_total_time=30 -print_final_stats=1
    else
      # Replay driver (g++ toolchain, no libFuzzer runtime): every corpus
      # file plus a seeded random smoke — same invariants, no coverage
      # guidance. The iteration count approximates ~30s of fuzzing under
      # ASan; override the seed to diversify successive CI runs.
      "$bin" "$corpus"/*
      "$bin" --rand 500000 "${FUZZ_SEED:-1}"
    fi
  done
fi

if [[ "${SKIP_BENCH:-0}" == "1" ]]; then
  echo "== SKIP_BENCH=1: skipping solver hot-path regression gate =="
else
  echo "== bench gate: solver hot path vs checked-in baseline =="
  baseline="$repo/BENCH_solver_hotpath.json"
  if [[ ! -f "$baseline" ]]; then
    echo "no checked-in BENCH_solver_hotpath.json; skipping gate"
  else
    cmake --build "$repo/build" -j "$jobs" --target bench_solver_hotpath
    # A scenario passes when either its raw tuples/sec or its
    # calibration-normalized throughput (tuples per op of the fixed FP
    # kernel timed in the same window — see bench_solver_hotpath.cc) is
    # within 10% of the checked-in baseline: raw holds when the host is
    # as fast as at recording time, normalized holds when it is not. A
    # real code regression fails both, on every attempt; transient load
    # skew does not, so the gate retries up to 3 runs.
    gate_ok=0
    for attempt in 1 2 3; do
      workdir="$(mktemp -d)"
      (cd "$workdir" && "$repo/build/bench/bench_solver_hotpath" \
        > /dev/null)
      if python3 - "$baseline" "$workdir/BENCH_solver_hotpath.json" <<'EOF'
import json, sys

def load(path):
    with open(path) as f:
        doc = json.load(f)
    return {r["scenario"]: r for r in doc["results"]}

def score(row):
    calib = row.get("calibration_ops_per_sec", 0.0)
    return row["tuples_per_sec"] / calib if calib > 0 else None

THRESHOLD = 0.90
base, fresh = load(sys.argv[1]), load(sys.argv[2])
failed = False
for scenario, ref in sorted(base.items()):
    got = fresh.get(scenario)
    if got is None:
        print(f"  {scenario}: missing from fresh run"); failed = True
        continue
    raw = got["tuples_per_sec"] / ref["tuples_per_sec"]
    ref_score, got_score = score(ref), score(got)
    norm = got_score / ref_score if ref_score and got_score else raw
    ratio = max(raw, norm)
    flag = "FAIL" if ratio < THRESHOLD else "ok"
    print(f"  {scenario}: {got['tuples_per_sec']:.0f} vs baseline "
          f"{ref['tuples_per_sec']:.0f} tuples/s "
          f"(raw {raw:.2f}x, normalized {norm:.2f}x) {flag}")
    if ratio < THRESHOLD:
        failed = True
sys.exit(1 if failed else 0)
EOF
      then
        gate_ok=1
        rm -rf "$workdir"
        break
      fi
      rm -rf "$workdir"
      echo "  bench gate attempt $attempt failed; retrying..."
    done
    if [[ "$gate_ok" != "1" ]]; then
      echo "solver hot path regressed >10% vs checked-in baseline" >&2
      exit 1
    fi
  fi

  echo "== bench gate: parallel/sharded scaling vs checked-in baseline =="
  scaling_baseline="$repo/BENCH_parallel_scaling.json"
  cores="$(nproc 2>/dev/null || echo 0)"
  if [[ ! -f "$scaling_baseline" ]]; then
    echo "no checked-in BENCH_parallel_scaling.json; skipping gate"
  elif [[ "$cores" -lt 2 ]]; then
    # Speedup on an oversubscribed host measures the scheduler, not the
    # engine: every multi-worker configuration time-slices one core, so
    # a comparison against a baseline would gate on noise. The SKIPPED
    # line is deliberate and visible — silence would look like coverage.
    echo "  SKIPPED: host is core_bound (hardware_concurrency=$cores);" \
         "scaling comparisons need >= 2 cores"
  else
    cmake --build "$repo/build" -j "$jobs" --target bench_parallel_scaling
    workdir="$(mktemp -d)"
    (cd "$workdir" && "$repo/build/bench/bench_parallel_scaling" > /dev/null)
    # Rows marked core_bound (in either document) are excluded: the flag
    # records that the measurement was taken on too few cores to mean
    # anything. Remaining multi-worker rows must keep >= 70% of the
    # baseline speedup.
    scaling_ok=0
    python3 - "$scaling_baseline" "$workdir/BENCH_parallel_scaling.json" \
      <<'EOF' || scaling_ok=1
import json, sys

def rows(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for r in doc["results"]:
        out[(r["mode"], r["threads"], r["num_shards"])] = r
    return out

THRESHOLD = 0.70
base, fresh = rows(sys.argv[1]), rows(sys.argv[2])
failed = checked = skipped = 0
for key, ref in sorted(base.items()):
    mode, threads, shards = key
    workers = shards if mode == "shards" else threads
    if workers <= 1:
        continue
    got = fresh.get(key)
    if got is None or ref.get("core_bound") or got.get("core_bound"):
        skipped += 1
        print(f"  SKIPPED {mode} workers={workers}: core_bound or absent")
        continue
    checked += 1
    ratio = got["speedup"] / ref["speedup"] if ref["speedup"] else 1.0
    flag = "FAIL" if ratio < THRESHOLD else "ok"
    print(f"  {mode} workers={workers}: speedup {got['speedup']:.2f} vs "
          f"baseline {ref['speedup']:.2f} ({ratio:.2f}x) {flag}")
    if ratio < THRESHOLD:
        failed += 1
print(f"  scaling gate: {checked} compared, {skipped} skipped")
sys.exit(1 if failed else 0)
EOF
    rm -rf "$workdir"
    if [[ "$scaling_ok" != "0" ]]; then
      echo "parallel/sharded scaling regressed vs checked-in baseline" >&2
      exit 1
    fi
  fi

  echo "== bench gate: telemetry detection vs checked-in baseline =="
  telemetry_baseline="$repo/BENCH_telemetry.json"
  if [[ ! -f "$telemetry_baseline" ]]; then
    echo "no checked-in BENCH_telemetry.json; skipping gate"
  else
    cmake --build "$repo/build" -j "$jobs" --target bench_telemetry
    workdir="$(mktemp -d)"
    (cd "$workdir" && "$repo/build/bench/bench_telemetry" > /dev/null)
    # Detection latency is measured in trace time (alert timestamp minus
    # ground-truth onset), not wall-clock, so it is deterministic for a
    # given binary and host load cannot fake a pass: a row that misses
    # attacks or whose p99 drifts more than 250 ms past the baseline is
    # a real detection regression (e.g. the slack-mode blindness this
    # bench originally caught), never scheduler noise. Raw tuples/sec is
    # deliberately not gated here — the solver gate above owns that.
    telemetry_ok=0
    python3 - "$telemetry_baseline" "$workdir/BENCH_telemetry.json" \
      <<'EOF' || telemetry_ok=1
import json, sys

def rows(path):
    with open(path) as f:
        doc = json.load(f)
    return {(r["query"], r["realization"]): r for r in doc["results"]}

SLACK_MS = 250.0
base, fresh = rows(sys.argv[1]), rows(sys.argv[2])
failed = False
for key, ref in sorted(base.items()):
    query, realization = key
    got = fresh.get(key)
    if got is None:
        print(f"  {query}/{realization}: missing from fresh run")
        failed = True
        continue
    miss = got["detected"] < got["attacks"]
    drift = got["p99_ms"] > ref["p99_ms"] + SLACK_MS
    flag = "FAIL" if miss or drift else "ok"
    print(f"  {query}/{realization}: detected {got['detected']}/"
          f"{got['attacks']}, p99 {got['p99_ms']:.0f} ms vs baseline "
          f"{ref['p99_ms']:.0f} ms {flag}")
    failed = failed or miss or drift
sys.exit(1 if failed else 0)
EOF
    rm -rf "$workdir"
    if [[ "$telemetry_ok" != "0" ]]; then
      echo "telemetry detection regressed vs checked-in baseline" >&2
      exit 1
    fi
  fi

  echo "== bench gate: storage recovery + tree speedup vs checked-in baseline =="
  storage_baseline="$repo/BENCH_storage.json"
  if [[ ! -f "$storage_baseline" ]]; then
    echo "no checked-in BENCH_storage.json; skipping gate"
  else
    cmake --build "$repo/build" -j "$jobs" --target bench_storage
    # Two absolutes and one relative: the fresh run's tree_query row must
    # keep the >= 5x tree-over-replay floor (both sides timed in the same
    # process, so host speed cancels — load cannot fake a pass or a
    # fail), its answers must have matched the replay baseline (the bench
    # aborts on drift), and each recover row's calibration-normalized
    # records/sec must hold >= 70% of the checked-in baseline. Transient
    # load skew is absorbed by up to 3 attempts.
    storage_ok=0
    for attempt in 1 2 3; do
      workdir="$(mktemp -d)"
      (cd "$workdir" && "$repo/build/bench/bench_storage" > /dev/null)
      if python3 - "$storage_baseline" "$workdir/BENCH_storage.json" <<'EOF'
import json, sys

def rows(path):
    with open(path) as f:
        doc = json.load(f)
    return {(r["scenario"], r["log_records"]): r for r in doc["results"]}

def norm(row):
    calib = row.get("calibration_ops_per_sec", 0.0)
    return row["records_per_sec"] / calib if calib > 0 else None

THRESHOLD = 0.70
MIN_SPEEDUP = 5.0
base, fresh = rows(sys.argv[1]), rows(sys.argv[2])
failed = False
speedup = None
for key, got in sorted(fresh.items()):
    if key[0] == "tree_query":
        speedup = got["speedup"]
if speedup is None:
    print("  tree_query row missing from fresh run"); failed = True
else:
    flag = "FAIL" if speedup < MIN_SPEEDUP else "ok"
    print(f"  tree vs replay speedup: {speedup:.1f}x "
          f"(required >= {MIN_SPEEDUP:.0f}x) {flag}")
    failed = failed or speedup < MIN_SPEEDUP
for key, ref in sorted(base.items()):
    if key[0] != "recover":
        continue
    got = fresh.get(key)
    if got is None:
        print(f"  recover n={key[1]}: missing from fresh run"); failed = True
        continue
    raw = got["records_per_sec"] / ref["records_per_sec"]
    ref_n, got_n = norm(ref), norm(got)
    ratio = max(raw, got_n / ref_n if ref_n and got_n else raw)
    flag = "FAIL" if ratio < THRESHOLD else "ok"
    print(f"  recover n={key[1]}: {got['records_per_sec']:.0f} vs baseline "
          f"{ref['records_per_sec']:.0f} records/s ({ratio:.2f}x) {flag}")
    failed = failed or ratio < THRESHOLD
sys.exit(1 if failed else 0)
EOF
      then
        storage_ok=1
        rm -rf "$workdir"
        break
      fi
      rm -rf "$workdir"
      echo "  storage gate attempt $attempt failed; retrying..."
    done
    if [[ "$storage_ok" != "1" ]]; then
      echo "storage recovery or tree speedup regressed vs baseline" >&2
      exit 1
    fi
  fi
fi

if [[ "${SKIP_PRECISION:-0}" == "1" ]]; then
  echo "== SKIP_PRECISION=1: skipping adaptive-precision gate =="
else
  echo "== precision gate: settled byte-identity + frontier schema =="
  # Two halves of the docs/PRECISION.md contract. (1) Determinism: the
  # adaptive runtime's settled output must be byte-identical to a static
  # run and every retraction must reference a prior provisional — the
  # dedicated precision_test suites assert both at the runtime and the
  # wire level (the 200-seed differential battery in tier-1 covers the
  # same invariants across generated plans). (2) The checked-in
  # frontier: BENCH_precision.json must parse, conserve
  # provisional == confirmed + retracted per widened tier, and show the
  # >= 1.3x widest-tier live-throughput lever — asserted by
  # bench_schema_test's PrecisionMatchesGateSchema, re-run here by name
  # so a stale document fails this stage even when ctest is skipped.
  cmake --build "$repo/build" -j "$jobs" --target precision_test \
    bench_schema_test bench_precision
  "$repo/build/tests/precision_test" --gtest_brief=1 \
    --gtest_filter='AdaptiveRuntime.*:AdaptiveSession.*:PrecisionFrames.*'
  "$repo/build/tests/bench_schema_test" --gtest_brief=1 \
    --gtest_filter='CheckedInBenchJsonTest.PrecisionMatchesGateSchema'
  # Fresh-run conservation smoke: the live binary must still conserve
  # lineage on this host (throughput ratios are NOT gated on a fresh run
  # — host load would make that flaky; the checked-in document carries
  # the frontier claim).
  workdir="$(mktemp -d)"
  (cd "$workdir" && "$repo/build/bench/bench_precision" > /dev/null)
  python3 - "$workdir/BENCH_precision.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
failed = False
for row in doc["results"]:
    if row["tier"] == 0:
        continue
    open_count = row["provisional"] - row["confirmed"] - row["retracted"]
    flag = "FAIL" if open_count != 0 else "ok"
    print(f"  tier {row['tier']}: provisional {row['provisional']} = "
          f"confirmed {row['confirmed']} + retracted {row['retracted']} "
          f"(open {open_count}) {flag}")
    failed = failed or open_count != 0
sys.exit(1 if failed else 0)
EOF
  rm -rf "$workdir"
fi

if [[ "${SKIP_METRICS_GATE:-0}" == "1" ]]; then
  echo "== SKIP_METRICS_GATE=1: skipping metrics-overhead micro-gate =="
else
  echo "== metrics gate: registry overhead vs -DPULSE_NO_METRICS =="
  # The observability layer promises a near-free hot path: every counter
  # bump is one relaxed atomic add and spans are two clock reads. This
  # gate runs the solver hot-path bench once with the registry enabled
  # (the normal build) and once compiled out, and fails when the
  # enabled build's calibration-normalized fig7_join_1t throughput is
  # more than 3% below the compiled-out build's. Both figures are
  # normalized by the fixed FP calibration kernel timed in the same
  # window, so host-speed drift between the two runs cancels out;
  # transient load skew is absorbed by up to 3 attempts.
  cmake --build "$repo/build" -j "$jobs" --target bench_solver_hotpath
  cmake -B "$repo/build-nometrics" -S "$repo" -DPULSE_NO_METRICS=ON
  # precision_test rides along: the adaptive-precision stage mirrors its
  # state into the registry, and the compiled-out build must still
  # compile and pass (the mirrors become no-ops, the contract does not).
  cmake --build "$repo/build-nometrics" -j "$jobs" \
    --target bench_solver_hotpath precision_test
  "$repo/build-nometrics/tests/precision_test" --gtest_brief=1
  metrics_gate_ok=0
  for attempt in 1 2 3; do
    workdir="$(mktemp -d)"
    (cd "$workdir" && "$repo/build/bench/bench_solver_hotpath" \
      > /dev/null && mv BENCH_solver_hotpath.json with_metrics.json)
    (cd "$workdir" && "$repo/build-nometrics/bench/bench_solver_hotpath" \
      > /dev/null && mv BENCH_solver_hotpath.json no_metrics.json)
    if python3 - "$workdir/with_metrics.json" "$workdir/no_metrics.json" <<'EOF'
import json, sys

def fig7_score(path):
    with open(path) as f:
        doc = json.load(f)
    row = {r["scenario"]: r for r in doc["results"]}["fig7_join_1t"]
    calib = row.get("calibration_ops_per_sec", 0.0)
    return row["tuples_per_sec"] / calib if calib > 0 else None

MAX_OVERHEAD = 0.03
with_m, without_m = fig7_score(sys.argv[1]), fig7_score(sys.argv[2])
if with_m is None or without_m is None:
    print("  calibration figure missing; cannot normalize"); sys.exit(1)
ratio = with_m / without_m
flag = "FAIL" if ratio < 1.0 - MAX_OVERHEAD else "ok"
print(f"  fig7_join_1t normalized throughput: metrics {ratio:.3f}x of "
      f"no-metrics build (allowed >= {1.0 - MAX_OVERHEAD:.2f}) {flag}")
sys.exit(1 if ratio < 1.0 - MAX_OVERHEAD else 0)
EOF
    then
      metrics_gate_ok=1
      rm -rf "$workdir"
      break
    fi
    rm -rf "$workdir"
    echo "  metrics gate attempt $attempt failed; retrying..."
  done
  if [[ "$metrics_gate_ok" != "1" ]]; then
    echo "metrics registry overhead exceeds 3% on the solver hot path" >&2
    exit 1
  fi
fi

if [[ "${SKIP_EXAMPLES:-0}" == "1" ]]; then
  echo "== SKIP_EXAMPLES=1: skipping examples build-and-smoke stage =="
else
  echo "== examples: build + smoke-run every binary =="
  cmake --build "$repo/build" -j "$jobs" \
    --target quickstart macd_monitor vessel_following historical_whatif \
             predictive_collision pulse_cli
  for example in quickstart macd_monitor vessel_following \
                 historical_whatif predictive_collision; do
    echo "  running $example"
    "$repo/build/examples/$example" > /dev/null
  done
  # pulse_cli needs a query; drive each runtime mode once, including the
  # serving stack over both transports.
  echo "  running pulse_cli (predictive, historical, serve)"
  "$repo/build/examples/pulse_cli" --workload objects --tuples 2000 \
    --query "select * from objects where x < 2000" > /dev/null
  "$repo/build/examples/pulse_cli" --workload objects --tuples 2000 \
    --mode historical \
    --query "select * from objects where x < 2000" > /dev/null
  "$repo/build/examples/pulse_cli" --workload objects --tuples 2000 \
    --mode serve --policy block \
    --query "select * from objects where x < 2000" > /dev/null
  "$repo/build/examples/pulse_cli" --workload objects --tuples 2000 \
    --mode serve --policy shed --port 0 \
    --query "select * from objects where x < 2000" > /dev/null
  # Adaptive precision over the serving stack: forced widened tier so
  # the provisional/confirm/retract side-band is exercised and the
  # printed conservation totals are deterministic (docs/PRECISION.md).
  "$repo/build/examples/pulse_cli" --workload objects --tuples 2000 \
    --mode serve --policy block --precision adaptive --tier 1 \
    --query "select * from objects where x < 2000" | grep -q \
    "precision(adaptive):"
  # Telemetry workload through a detection-shaped epoch/distinct query.
  "$repo/build/examples/pulse_cli" --workload telemetry --tuples 2000 \
    --query "select distinct * from telemetry epoch 1 where telemetry.port_spread > 100" \
    > /dev/null
  # Durable serving + recovery round trip: log under a temp store dir,
  # drain (seals the checkpoint), then --recover must verify the
  # replayed state (non-zero exit on divergence).
  echo "  running pulse_cli (durable serve + recover)"
  store_dir="$(mktemp -d)"
  "$repo/build/examples/pulse_cli" --workload objects --tuples 2000 \
    --mode serve --policy block --store-dir "$store_dir" \
    --query "select * from objects where x < 2000" > /dev/null
  "$repo/build/examples/pulse_cli" --workload objects --recover \
    --store-dir "$store_dir" \
    --query "select * from objects where x < 2000" > /dev/null
  rm -rf "$store_dir"
fi

if [[ "${SKIP_DOCS:-0}" == "1" ]]; then
  echo "== SKIP_DOCS=1: skipping docs link check =="
else
  echo "== docs: relative links and file references resolve =="
  python3 - "$repo" <<'EOF'
import os, re, sys

repo = sys.argv[1]
md_files = []
for base in (repo, os.path.join(repo, "docs")):
    for name in sorted(os.listdir(base)):
        if name.endswith(".md"):
            md_files.append(os.path.join(base, name))

link_re = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
failed = False
for path in md_files:
    with open(path, encoding="utf-8") as f:
        text = f.read()
    for target in link_re.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        target = target.split("#", 1)[0]
        if not target:
            continue
        resolved = os.path.normpath(
            os.path.join(os.path.dirname(path), target))
        if not os.path.exists(resolved):
            rel = os.path.relpath(path, repo)
            print(f"  {rel}: broken link -> {target}")
            failed = True
print(f"  checked {len(md_files)} markdown files")
sys.exit(1 if failed else 0)
EOF
fi

echo "== all checks passed =="
