# Empty compiler generated dependencies file for pulse_util.
# This may be replaced when dependencies are built.
