
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/aggregate.cc" "src/CMakeFiles/pulse_engine.dir/engine/aggregate.cc.o" "gcc" "src/CMakeFiles/pulse_engine.dir/engine/aggregate.cc.o.d"
  "/root/repo/src/engine/executor.cc" "src/CMakeFiles/pulse_engine.dir/engine/executor.cc.o" "gcc" "src/CMakeFiles/pulse_engine.dir/engine/executor.cc.o.d"
  "/root/repo/src/engine/filter.cc" "src/CMakeFiles/pulse_engine.dir/engine/filter.cc.o" "gcc" "src/CMakeFiles/pulse_engine.dir/engine/filter.cc.o.d"
  "/root/repo/src/engine/group_by.cc" "src/CMakeFiles/pulse_engine.dir/engine/group_by.cc.o" "gcc" "src/CMakeFiles/pulse_engine.dir/engine/group_by.cc.o.d"
  "/root/repo/src/engine/join.cc" "src/CMakeFiles/pulse_engine.dir/engine/join.cc.o" "gcc" "src/CMakeFiles/pulse_engine.dir/engine/join.cc.o.d"
  "/root/repo/src/engine/map.cc" "src/CMakeFiles/pulse_engine.dir/engine/map.cc.o" "gcc" "src/CMakeFiles/pulse_engine.dir/engine/map.cc.o.d"
  "/root/repo/src/engine/metrics.cc" "src/CMakeFiles/pulse_engine.dir/engine/metrics.cc.o" "gcc" "src/CMakeFiles/pulse_engine.dir/engine/metrics.cc.o.d"
  "/root/repo/src/engine/operator.cc" "src/CMakeFiles/pulse_engine.dir/engine/operator.cc.o" "gcc" "src/CMakeFiles/pulse_engine.dir/engine/operator.cc.o.d"
  "/root/repo/src/engine/plan.cc" "src/CMakeFiles/pulse_engine.dir/engine/plan.cc.o" "gcc" "src/CMakeFiles/pulse_engine.dir/engine/plan.cc.o.d"
  "/root/repo/src/engine/schema.cc" "src/CMakeFiles/pulse_engine.dir/engine/schema.cc.o" "gcc" "src/CMakeFiles/pulse_engine.dir/engine/schema.cc.o.d"
  "/root/repo/src/engine/stream.cc" "src/CMakeFiles/pulse_engine.dir/engine/stream.cc.o" "gcc" "src/CMakeFiles/pulse_engine.dir/engine/stream.cc.o.d"
  "/root/repo/src/engine/tuple.cc" "src/CMakeFiles/pulse_engine.dir/engine/tuple.cc.o" "gcc" "src/CMakeFiles/pulse_engine.dir/engine/tuple.cc.o.d"
  "/root/repo/src/engine/value.cc" "src/CMakeFiles/pulse_engine.dir/engine/value.cc.o" "gcc" "src/CMakeFiles/pulse_engine.dir/engine/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pulse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
