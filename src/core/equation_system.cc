#include "core/equation_system.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>

#include "core/solve_cache.h"
#include "math/batch_kernels.h"
#include "math/roots_internal.h"
#include "obs/span.h"
#include "util/cpu_features.h"
#include "util/thread_pool.h"

namespace pulse {

std::string DifferenceEquation::ToString() const {
  return diff.ToString() + " " + CmpOpToString(op) + " 0";
}

DifferenceEquation MakeDifferenceEquation(Polynomial lhs, CmpOp op,
                                          const Polynomial& rhs) {
  lhs.SubInPlace(rhs);
  return DifferenceEquation{std::move(lhs), op};
}

size_t EquationSystem::Degree() const {
  size_t d = 0;
  for (const DifferenceEquation& row : rows_) {
    d = std::max(d, row.diff.degree());
  }
  return d;
}

Matrix EquationSystem::CoefficientMatrix() const {
  const size_t cols = Degree() + 1;
  Matrix d(rows_.size(), cols);
  for (size_t r = 0; r < rows_.size(); ++r) {
    for (size_t c = 0; c < cols; ++c) {
      d.At(r, c) = rows_[r].diff.coeff(c);
    }
  }
  return d;
}

IntervalSet EquationSystem::Solve(const Interval& domain,
                                  RootMethod method) const {
  SolveScratch scratch;
  IntervalSet solution;
  SolveInto(domain, method, &scratch, nullptr, &solution);
  return solution;
}

void EquationSystem::SolveInto(const Interval& domain, RootMethod method,
                               SolveScratch* scratch, SolveCache* cache,
                               IntervalSet* out) const {
  if (domain.IsEmpty()) {
    out->Clear();
    return;
  }
  if (rows_.empty()) {
    out->AssignInterval(domain);
    return;
  }
  // The first row solves directly into *out (SolveComparisonInto clips to
  // the domain, so out == domain ∩ row0 with no explicit intersection);
  // later rows solve into the scratch set and intersect in.
  bool first = true;
  for (const DifferenceEquation& row : rows_) {
    IntervalSet* target = first ? out : &scratch->row_solution;
    const bool hit = cache != nullptr &&
                     cache->Lookup(row.diff, row.op, domain, method, target);
    if (!hit) {
      SolveComparisonInto(row.diff, row.op, domain, method, &scratch->roots,
                          target);
      if (cache != nullptr) {
        cache->Insert(row.diff, row.op, domain, method, *target);
      }
    }
    if (!first) {
      out->IntersectWith(scratch->row_solution,
                         &scratch->roots.interval_scratch);
    }
    first = false;
    if (out->IsEmpty()) break;
  }
}

bool EquationSystem::QualifiesForLinearEquality() const {
  if (rows_.empty()) return false;
  for (const DifferenceEquation& row : rows_) {
    if (row.op != CmpOp::kEq || row.diff.degree() > 1) return false;
  }
  return true;
}

Result<double> EquationSystem::SolveLinearEquality(
    const Interval& domain) const {
  if (!QualifiesForLinearEquality()) {
    return Status::FailedPrecondition(
        "system is not all-equality degree <= 1");
  }
  // Stack the rows as c1 * t = -c0 and solve by (trivial 1-unknown)
  // elimination; rows with c1 == 0 are pure consistency constraints.
  bool have_t = false;
  double t = 0.0;
  for (const DifferenceEquation& row : rows_) {
    const double c0 = row.diff.coeff(0);
    const double c1 = row.diff.coeff(1);
    if (std::abs(c1) <= Polynomial::kCoefficientEpsilon) {
      if (std::abs(c0) > kRootTolerance) {
        return Status::NotFound("inconsistent constant equality row");
      }
      continue;  // 0 = 0: no constraint
    }
    const double cand = -c0 / c1;
    if (!have_t) {
      t = cand;
      have_t = true;
    } else if (std::abs(cand - t) > kRootTolerance *
                                        std::max(1.0, std::abs(t))) {
      return Status::NotFound("equality rows have no common solution");
    }
  }
  if (!have_t) {
    // Every row was 0 = 0: any time in the domain works; pick its start.
    if (domain.IsEmpty()) return Status::NotFound("empty domain");
    return domain.lo;
  }
  if (!domain.Contains(t)) {
    return Status::NotFound("solution outside domain");
  }
  return t;
}

double EquationSystem::Slack(const Interval& domain) const {
  if (rows_.empty()) return 0.0;
  if (domain.IsEmpty()) return std::numeric_limits<double>::infinity();

  // Candidate minimizers of max_i |p_i(t)|: domain endpoints, roots and
  // derivative roots of each row, and pairwise crossings |p_i| = |p_j|
  // (roots of p_i - p_j and p_i + p_j).
  std::vector<double> candidates = {domain.lo, domain.hi};
  auto add_roots = [&](const Polynomial& p) {
    for (double r : FindRealRoots(p, domain.lo, domain.hi)) {
      candidates.push_back(r);
    }
  };
  for (const DifferenceEquation& row : rows_) {
    add_roots(row.diff);
    add_roots(row.diff.Derivative());
  }
  for (size_t i = 0; i < rows_.size(); ++i) {
    for (size_t j = i + 1; j < rows_.size(); ++j) {
      add_roots(rows_[i].diff - rows_[j].diff);
      add_roots(rows_[i].diff + rows_[j].diff);
    }
  }

  double best = std::numeric_limits<double>::infinity();
  for (double t : candidates) {
    if (t < domain.lo || t > domain.hi) continue;
    double max_row = 0.0;
    for (const DifferenceEquation& row : rows_) {
      max_row = std::max(max_row, std::abs(row.diff.Evaluate(t)));
    }
    best = std::min(best, max_row);
  }
  return best;
}

namespace {

// ---------------------------------------------------------------------------
// Batched SoA solve path. Rows of pending tasks are gathered by degree
// into structure-of-arrays coefficient columns, flushed through the
// dispatched BatchKernels tier (AVX2 → SSE2/NEON → scalar), then
// assembled with the same roots_internal steps the per-row scalar path
// uses — so results are bit-identical across dispatch tiers. Rows the
// kernels cannot take (kNe, degree > 3, Sturm-only methods, trivial
// rows) fall back to SolveComparisonInto per row.
// ---------------------------------------------------------------------------

constexpr size_t kMaxBatchDegree = 3;
// Upper bound on tasks per parallel chunk; the serial path batches the
// whole call at once.
constexpr size_t kMaxChunkTasks = 256;
constexpr uint32_t kTaskDone = ~uint32_t{0};

// Obs sites for the batched solver, cached per thread and revalidated
// when the registry epoch changes (the SpanSite rationale). The
// per-kernel histogram additionally keys on the kernel-name pointer so
// a test override switching tiers mid-epoch cannot record into the
// previous tier's histogram.
struct BatchObsSite {
  uint64_t epoch = ~uint64_t{0};
  const char* kernel_name = nullptr;
  obs::Histogram* kernel_hist = nullptr;
  obs::Counter* filled = nullptr;
  obs::Counter* flushed = nullptr;
  obs::Counter* scalar_fallback = nullptr;

  void Refresh(const char* name) {
    const uint64_t current_epoch = obs::CurrentRegistryEpoch();
    if (current_epoch == epoch && kernel_name == name) return;
    epoch = current_epoch;
    kernel_name = name;
    obs::MetricsRegistry* registry = obs::CurrentRegistry();
    if (registry == nullptr) {
      kernel_hist = nullptr;
      filled = flushed = scalar_fallback = nullptr;
      return;
    }
    kernel_hist = registry->GetHistogram(std::string("span/solver/") + name);
    filled = registry->GetCounter("solver/batch/filled");
    flushed = registry->GetCounter("solver/batch/flushed");
    scalar_fallback = registry->GetCounter("solver/batch/scalar_fallback");
  }
};

// One row awaiting a batched solve; `target` is where its interval set
// goes (the task's output set for first rows, an aux set otherwise).
struct RowRef {
  const DifferenceEquation* row;
  const Interval* domain;
  IntervalSet* target;
};

// Per-degree SoA coefficient columns awaiting a closed-form kernel
// flush, plus the kernel's output columns.
struct RootBatch {
  std::array<std::vector<double>, kMaxBatchDegree + 1> c;
  std::vector<uint32_t> slots;  // RowRef index per lane
  std::vector<double> r0, r1, r2;
  std::vector<uint8_t> count;

  void Clear() {
    for (auto& column : c) column.clear();
    slots.clear();
  }
};

// Per-degree SoA midpoint-evaluation jobs (coefficients are duplicated
// per midpoint so the Horner kernel stays a pure column walk).
struct EvalBatch {
  std::array<std::vector<double>, kMaxBatchDegree + 1> c;
  std::vector<double> t;
  std::vector<double> out;

  void Clear() {
    for (auto& column : c) column.clear();
    t.clear();
    out.clear();
  }
};

// An inequality row whose roots came back from a root kernel and now
// waits on its batched midpoint evaluations before assembly.
struct PendingRow {
  uint32_t slot;
  uint32_t degree;
  uint32_t roots_begin, roots_end;  // into BatchScratch::roots_flat
  uint32_t cuts_begin, cuts_end;    // into BatchScratch::cuts_flat
  uint32_t mids_begin;              // into evals[degree - 1].out
};

struct BatchScratch {
  SolveScratch scalar;
  std::vector<IntervalSet> row_sets;  // aux targets for non-first rows
  std::vector<RowRef> row_refs;
  // Per chunk task: {first RowRef slot, row count}, or {kTaskDone, 0}
  // when the task was answered inline (empty domain / no rows).
  std::vector<std::array<uint32_t, 2>> task_rows;
  std::array<RootBatch, kMaxBatchDegree> roots;
  std::array<EvalBatch, kMaxBatchDegree> evals;
  std::vector<PendingRow> pending;
  std::vector<double> roots_flat;
  std::vector<double> cuts_flat;
};

Status SolveChunk(const EquationSystemTask* tasks, size_t begin, size_t end,
                  RootMethod method, SolveCache* cache,
                  std::vector<IntervalSet>* solutions, BatchScratch* s) {
  const BatchKernels& kernels = ActiveBatchKernels();
  static thread_local BatchObsSite obs_site;
  if constexpr (obs::kMetricsEnabled) obs_site.Refresh(kernels.name);

  // The closed-form gather only replicates the scalar path for methods
  // that dispatch degree <= 3 to ClosedFormRootsInto.
  const bool method_batchable =
      method == RootMethod::kAuto || method == RootMethod::kClosedForm;

  size_t total_rows = 0;
  for (size_t ti = begin; ti < end; ++ti) {
    total_rows += tasks[ti].system.rows().size();
  }
  // Aux sets are addressed by stable pointers below; size once up front.
  if (s->row_sets.size() < total_rows) s->row_sets.resize(total_rows);
  s->row_refs.clear();
  s->task_rows.clear();
  for (RootBatch& b : s->roots) b.Clear();
  for (EvalBatch& e : s->evals) e.Clear();
  s->pending.clear();
  s->roots_flat.clear();
  s->cuts_flat.clear();

  // Pass 1: classify every row. Cache hits and non-batchable rows are
  // finished here (the latter via the per-row scalar path, exactly as
  // EquationSystem::SolveInto would); batchable rows gather their
  // coefficients into the per-degree columns.
  uint64_t scalar_rows = 0;
  size_t aux = 0;
  for (size_t ti = begin; ti < end; ++ti) {
    const EquationSystemTask& task = tasks[ti];
    IntervalSet& out = (*solutions)[ti];
    if (task.domain.IsEmpty()) {
      out.Clear();
      s->task_rows.push_back({kTaskDone, 0});
      continue;
    }
    const std::vector<DifferenceEquation>& rows = task.system.rows();
    if (rows.empty()) {
      out.AssignInterval(task.domain);
      s->task_rows.push_back({kTaskDone, 0});
      continue;
    }
    s->task_rows.push_back({static_cast<uint32_t>(s->row_refs.size()),
                            static_cast<uint32_t>(rows.size())});
    bool first = true;
    for (const DifferenceEquation& row : rows) {
      // First rows solve straight into the task output (the scalar
      // path's representation contract); later rows into aux sets that
      // pass 5 intersects in row order.
      IntervalSet* target = first ? &out : &s->row_sets[aux++];
      first = false;
      const uint32_t slot = static_cast<uint32_t>(s->row_refs.size());
      s->row_refs.push_back({&row, &task.domain, target});
      if (cache != nullptr &&
          cache->Lookup(row.diff, row.op, task.domain, method, target)) {
        continue;
      }
      const size_t d = row.diff.IsZero() ? 0 : row.diff.degree();
      const bool batchable = method_batchable && row.op != CmpOp::kNe &&
                             d >= 1 && d <= kMaxBatchDegree;
      if (!batchable) {
        SolveComparisonInto(row.diff, row.op, task.domain, method,
                            &s->scalar.roots, target);
        if (cache != nullptr) {
          cache->Insert(row.diff, row.op, task.domain, method, *target);
        }
        ++scalar_rows;
        continue;
      }
      RootBatch& b = s->roots[d - 1];
      for (size_t j = 0; j <= d; ++j) b.c[j].push_back(row.diff.coeff(j));
      b.slots.push_back(slot);
    }
  }

  // Pass 2: flush the per-degree root kernels.
  uint64_t lanes_filled = 0;
  uint64_t flushes = 0;
  {
    obs::Span kernel_span(obs_site.kernel_hist);
    for (size_t d = 1; d <= kMaxBatchDegree; ++d) {
      RootBatch& b = s->roots[d - 1];
      const size_t lanes = b.slots.size();
      if (lanes == 0) continue;
      b.r0.resize(lanes);
      b.r1.resize(lanes);
      b.r2.resize(lanes);
      b.count.resize(lanes);
      switch (d) {
        case 1:
          kernels.linear_roots(b.c[0].data(), b.c[1].data(), b.r0.data(),
                               lanes);
          break;
        case 2:
          kernels.quadratic_roots(b.c[0].data(), b.c[1].data(),
                                  b.c[2].data(), b.r0.data(), b.r1.data(),
                                  b.count.data(), lanes);
          break;
        default:
          kernels.cubic_roots(b.c[0].data(), b.c[1].data(), b.c[2].data(),
                              b.c[3].data(), b.r0.data(), b.r1.data(),
                              b.r2.data(), b.count.data(), lanes);
          break;
      }
      lanes_filled += lanes;
      ++flushes;
    }
  }

  // Pass 3: per lane, clip + dedupe roots; finish equality rows and
  // queue inequality rows' midpoint evaluations by degree.
  for (size_t d = 1; d <= kMaxBatchDegree; ++d) {
    RootBatch& b = s->roots[d - 1];
    for (size_t k = 0; k < b.slots.size(); ++k) {
      const RowRef& ref = s->row_refs[b.slots[k]];
      std::vector<double>& lane_roots = s->scalar.roots.roots;
      lane_roots.clear();
      const uint8_t cnt = d == 1 ? uint8_t{1} : b.count[k];
      if (cnt >= 1) lane_roots.push_back(b.r0[k]);
      if (cnt >= 2) lane_roots.push_back(b.r1[k]);
      if (cnt >= 3) lane_roots.push_back(b.r2[k]);
      roots_internal::ClipRoots(ref.domain->lo, ref.domain->hi,
                                &lane_roots);
      roots_internal::DedupeRoots(&lane_roots);
      if (ref.row->op == CmpOp::kEq) {
        roots_internal::AssembleEquality(lane_roots.data(),
                                         lane_roots.size(), *ref.domain,
                                         &s->scalar.roots.cells, ref.target);
        if (cache != nullptr) {
          cache->Insert(ref.row->diff, ref.row->op, *ref.domain, method,
                        *ref.target);
        }
        continue;
      }
      std::vector<double>& cuts = s->scalar.roots.cuts;
      roots_internal::BuildCuts(lane_roots.data(), lane_roots.size(),
                                *ref.domain, &cuts);
      PendingRow pending;
      pending.slot = b.slots[k];
      pending.degree = static_cast<uint32_t>(d);
      pending.roots_begin = static_cast<uint32_t>(s->roots_flat.size());
      s->roots_flat.insert(s->roots_flat.end(), lane_roots.begin(),
                           lane_roots.end());
      pending.roots_end = static_cast<uint32_t>(s->roots_flat.size());
      pending.cuts_begin = static_cast<uint32_t>(s->cuts_flat.size());
      s->cuts_flat.insert(s->cuts_flat.end(), cuts.begin(), cuts.end());
      pending.cuts_end = static_cast<uint32_t>(s->cuts_flat.size());
      EvalBatch& evals = s->evals[d - 1];
      pending.mids_begin = static_cast<uint32_t>(evals.t.size());
      for (size_t i = 0; i + 1 < cuts.size(); ++i) {
        const double a = cuts[i];
        const double bb = cuts[i + 1];
        if (bb <= a) continue;
        evals.t.push_back(0.5 * (a + bb));
        for (size_t j = 0; j <= d; ++j) {
          evals.c[j].push_back(ref.row->diff.coeff(j));
        }
      }
      s->pending.push_back(pending);
    }
  }

  // Pass 4: batched Horner over every queued midpoint.
  {
    obs::Span kernel_span(obs_site.kernel_hist);
    for (size_t d = 1; d <= kMaxBatchDegree; ++d) {
      EvalBatch& evals = s->evals[d - 1];
      if (evals.t.empty()) continue;
      evals.out.resize(evals.t.size());
      std::array<const double*, kMaxBatchDegree + 1> cols = {};
      for (size_t j = 0; j <= d; ++j) cols[j] = evals.c[j].data();
      kernels.horner(cols.data(), d, evals.t.data(), evals.out.data(),
                     evals.t.size());
      lanes_filled += evals.t.size();
      ++flushes;
    }
  }

  // Pass 5: assemble the pending inequalities from their precomputed
  // midpoint values.
  for (const PendingRow& pending : s->pending) {
    const RowRef& ref = s->row_refs[pending.slot];
    const EvalBatch& evals = s->evals[pending.degree - 1];
    const double* mids =
        evals.out.empty() ? nullptr : evals.out.data() + pending.mids_begin;
    roots_internal::AssembleInequality(
        ref.row->diff, ref.row->op, *ref.domain,
        s->roots_flat.data() + pending.roots_begin,
        pending.roots_end - pending.roots_begin,
        s->cuts_flat.data() + pending.cuts_begin,
        pending.cuts_end - pending.cuts_begin, mids, &s->scalar.roots.cells,
        ref.target);
    if (cache != nullptr) {
      cache->Insert(ref.row->diff, ref.row->op, *ref.domain, method,
                    *ref.target);
    }
  }

  // Pass 6: intersect each task's row sets in row order (first row is
  // already in the output set), mirroring EquationSystem::SolveInto.
  size_t idx = 0;
  for (size_t ti = begin; ti < end; ++ti, ++idx) {
    const std::array<uint32_t, 2>& tr = s->task_rows[idx];
    if (tr[0] == kTaskDone) continue;
    IntervalSet& out = (*solutions)[ti];
    for (uint32_t k = 1; k < tr[1] && !out.IsEmpty(); ++k) {
      out.IntersectWith(*s->row_refs[tr[0] + k].target,
                        &s->scalar.roots.interval_scratch);
    }
  }

  if constexpr (obs::kMetricsEnabled) {
    if (obs_site.filled != nullptr) obs_site.filled->Add(lanes_filled);
    if (obs_site.flushed != nullptr) obs_site.flushed->Add(flushes);
    if (obs_site.scalar_fallback != nullptr) {
      obs_site.scalar_fallback->Add(scalar_rows);
    }
  }
  return Status::OK();
}

}  // namespace

Status SolveSystemsInto(const EquationSystemTask* tasks, size_t n,
                        RootMethod method, ThreadPool* pool,
                        SolveCache* cache,
                        std::vector<IntervalSet>* solutions) {
  PULSE_SPAN("solve/batch");
  solutions->resize(n);
  if (n == 0) return Status::OK();
  if (pool == nullptr || pool->num_threads() <= 1 || n == 1) {
    // Serial: one chunk over the whole call maximizes SIMD lane fill.
    // Per-thread scratch keeps buffers warm across calls and is never
    // shared between workers (TSan-clean under ParallelFor).
    static thread_local BatchScratch scratch;
    return SolveChunk(tasks, 0, n, method, cache, solutions, &scratch);
  }
  // Parallel: chunk so every worker still fills SIMD lanes without
  // starving the pool of work items.
  const size_t threads = pool->num_threads();
  size_t chunk = (n + threads * 4 - 1) / (threads * 4);
  chunk = std::min(std::max<size_t>(chunk, 1), kMaxChunkTasks);
  const size_t num_chunks = (n + chunk - 1) / chunk;
  return pool->ParallelFor(num_chunks, [&](size_t ci) -> Status {
    static thread_local BatchScratch scratch;
    const size_t chunk_begin = ci * chunk;
    const size_t chunk_end = std::min(n, chunk_begin + chunk);
    return SolveChunk(tasks, chunk_begin, chunk_end, method, cache,
                      solutions, &scratch);
  });
}

Result<std::vector<IntervalSet>> SolveSystems(
    const std::vector<EquationSystemTask>& tasks, RootMethod method,
    ThreadPool* pool, SolveCache* cache) {
  std::vector<IntervalSet> solutions;
  PULSE_RETURN_IF_ERROR(SolveSystemsInto(tasks.data(), tasks.size(), method,
                                         pool, cache, &solutions));
  return solutions;
}

std::string EquationSystem::ToString() const {
  std::ostringstream os;
  os << "EquationSystem{";
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (i > 0) os << "; ";
    os << rows_[i].ToString();
  }
  os << "}";
  return os.str();
}

}  // namespace pulse
