file(REMOVE_RECURSE
  "CMakeFiles/engine_operator_test.dir/engine_operator_test.cc.o"
  "CMakeFiles/engine_operator_test.dir/engine_operator_test.cc.o.d"
  "engine_operator_test"
  "engine_operator_test.pdb"
  "engine_operator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_operator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
