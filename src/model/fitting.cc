#include "model/fitting.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "math/linear_system.h"
#include "math/matrix.h"

namespace pulse {

Result<Polynomial> FitPolynomial(const std::vector<Sample>& samples,
                                 size_t degree) {
  const size_t n = samples.size();
  const size_t cols = degree + 1;
  if (n < cols) {
    return Status::InvalidArgument(
        "FitPolynomial: need at least degree+1 samples");
  }
  // Vandermonde design matrix: row i is [1, t_i, t_i^2, ...].
  Matrix a(n, cols);
  std::vector<double> b(n);
  for (size_t i = 0; i < n; ++i) {
    double p = 1.0;
    for (size_t j = 0; j < cols; ++j) {
      a.At(i, j) = p;
      p *= samples[i].t;
    }
    b[i] = samples[i].value;
  }
  PULSE_ASSIGN_OR_RETURN(std::vector<double> coeffs,
                         SolveLeastSquares(a, b));
  return Polynomial(std::move(coeffs));
}

double MaxAbsResidual(const Polynomial& p,
                      const std::vector<Sample>& samples) {
  double max_abs = 0.0;
  for (const Sample& s : samples) {
    max_abs = std::max(max_abs, std::abs(p.Evaluate(s.t) - s.value));
  }
  return max_abs;
}

double RmsResidual(const Polynomial& p, const std::vector<Sample>& samples) {
  if (samples.empty()) return 0.0;
  double acc = 0.0;
  for (const Sample& s : samples) {
    const double r = p.Evaluate(s.t) - s.value;
    acc += r * r;
  }
  return std::sqrt(acc / static_cast<double>(samples.size()));
}

IncrementalFitter::IncrementalFitter(size_t degree)
    : degree_(degree),
      s_(2 * degree + 1, 0.0),
      b_(degree + 1, 0.0) {}

void IncrementalFitter::Add(const Sample& sample) {
  double p = 1.0;
  const size_t ns = s_.size();
  const size_t nb = b_.size();
  for (size_t k = 0; k < ns; ++k) {
    s_[k] += p;
    if (k < nb) b_[k] += sample.value * p;
    p *= sample.t;
  }
  ++count_;
}

void IncrementalFitter::AddBatch(const Sample* samples, size_t n) {
  for (size_t i = 0; i < n; ++i) Add(samples[i]);
}

void IncrementalFitter::Reset() {
  std::fill(s_.begin(), s_.end(), 0.0);
  std::fill(b_.begin(), b_.end(), 0.0);
  count_ = 0;
}

Result<Polynomial> IncrementalFitter::Fit() const {
  const size_t cols = degree_ + 1;
  if (count_ < cols) {
    return Status::InvalidArgument(
        "IncrementalFitter: need at least degree+1 samples");
  }
  // Normal equations directly from the moments: (A^T A)[i][j] = s_{i+j},
  // (A^T b)[i] = b_i — the same system SolveLeastSquares forms from the
  // design matrix, assembled here without materializing the samples.
  Matrix ata(cols, cols);
  std::vector<double> atb(cols);
  for (size_t i = 0; i < cols; ++i) {
    for (size_t j = 0; j < cols; ++j) ata.At(i, j) = s_[i + j];
    atb[i] = b_[i];
  }
  PULSE_ASSIGN_OR_RETURN(std::vector<double> coeffs,
                         SolveLinearSystem(std::move(ata), std::move(atb)));
  return Polynomial(std::move(coeffs));
}

Result<Polynomial> FitConstant(const std::vector<Sample>& samples) {
  return FitPolynomial(samples, 0);
}

Result<Polynomial> FitLine(const std::vector<Sample>& samples) {
  return FitPolynomial(samples, 1);
}

}  // namespace pulse
