#include "workload/nyse.h"

#include <cmath>

#include "util/logging.h"

namespace pulse {

NyseGenerator::NyseGenerator(NyseOptions options)
    : options_(options),
      rng_(options.seed),
      zipf_(options.num_symbols, options.zipf_skew) {
  PULSE_CHECK(options_.num_symbols > 0);
  PULSE_CHECK(options_.tuple_rate > 0.0);
  PULSE_CHECK(options_.trades_per_trend > 0);
  now_ = options_.start_time;
  symbols_.resize(options_.num_symbols);
  for (SymbolState& sym : symbols_) {
    sym.price = options_.base_price * rng_.Uniform(0.5, 2.0);
    sym.last_update = now_;
    Retrend(&sym);
  }
}

std::shared_ptr<const Schema> NyseGenerator::TupleSchema() {
  return Schema::Make({{"symbol", ValueType::kInt64},
                       {"price", ValueType::kDouble},
                       {"dprice", ValueType::kDouble},
                       {"qty", ValueType::kInt64}});
}

StreamSpec NyseGenerator::MakeStreamSpec(std::string name,
                                         double segment_horizon) {
  StreamSpec spec;
  spec.name = std::move(name);
  spec.schema = TupleSchema();
  spec.key_field = "symbol";
  spec.models = {{"price", {"price", "dprice"}}};
  spec.segment_horizon = segment_horizon;
  return spec;
}

void NyseGenerator::Retrend(SymbolState* sym) {
  // New drift: random direction and magnitude around options_.drift.
  const double magnitude = options_.drift * rng_.Uniform(0.2, 1.8);
  sym->drift = rng_.Bernoulli(0.5) ? magnitude : -magnitude;
  sym->trades_since_trend = 0;
}

Tuple NyseGenerator::NextTuple() {
  const size_t idx = zipf_.Sample(rng_);
  SymbolState& sym = symbols_[idx];
  const double dt = now_ - sym.last_update;
  sym.price += sym.drift * dt;
  sym.last_update = now_;
  // Keep prices positive: bounce the trend off the floor.
  if (sym.price < 1.0) {
    sym.price = 2.0 - sym.price;
    sym.drift = std::abs(sym.drift);
  }
  if (sym.trades_since_trend >= options_.trades_per_trend) {
    Retrend(&sym);
  }
  ++sym.trades_since_trend;

  Tuple t;
  t.timestamp = now_;
  const double noise =
      options_.noise > 0.0 ? rng_.Gaussian(0.0, options_.noise) : 0.0;
  t.values = {Value(static_cast<int64_t>(idx)), Value(sym.price + noise),
              Value(sym.drift), Value(rng_.UniformInt(100, 1000))};
  now_ += 1.0 / options_.tuple_rate;
  return t;
}

std::vector<Tuple> NyseGenerator::Generate(size_t n) {
  std::vector<Tuple> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(NextTuple());
  return out;
}

}  // namespace pulse
