#include "core/validation/slack.h"

#include <cmath>
#include <limits>

#include "util/logging.h"

namespace pulse {

AlternatingValidator::AlternatingValidator(const BoundRegistry* bounds)
    : bounds_(bounds) {
  PULSE_CHECK(bounds_ != nullptr);
}

void AlternatingValidator::ObserveResult(Key key, bool produced_output,
                                         double slack) {
  KeyState& state = states_[key];
  if (produced_output) {
    state.mode = ValidationMode::kAccuracy;
    state.slack = 0.0;
  } else {
    state.mode = ValidationMode::kSlack;
    state.slack = slack;
  }
}

bool AlternatingValidator::Validate(Key key, std::string_view attribute,
                                    double predicted, double actual) {
  auto it = states_.find(key);
  const KeyState state = (it != states_.end()) ? it->second : KeyState{};
  const double deviation = std::abs(actual - predicted);
  if (state.mode == ValidationMode::kAccuracy) {
    ++accuracy_checks_;
    if (bounds_->Within(key, attribute, predicted, actual)) return true;
    ++violations_;
    return false;
  }
  ++slack_checks_;
  // A deviation below the slack cannot flip any predicate row (max-norm
  // argument, Section IV), so the tuple is ignorable.
  if (deviation < state.slack) return true;
  ++violations_;
  return false;
}

ValidationMode AlternatingValidator::mode(Key key) const {
  auto it = states_.find(key);
  return it == states_.end() ? ValidationMode::kAccuracy : it->second.mode;
}

double AlternatingValidator::slack(Key key) const {
  auto it = states_.find(key);
  if (it == states_.end()) return std::numeric_limits<double>::infinity();
  return it->second.slack;
}

void AlternatingValidator::ResetCounters() {
  accuracy_checks_ = 0;
  slack_checks_ = 0;
  violations_ = 0;
}

}  // namespace pulse
