#include <atomic>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <thread>

#include <gtest/gtest.h>

#include "core/runtime.h"
#include "model/fitting.h"
#include "serve/admission.h"
#include "serve/batcher.h"
#include "serve/client.h"
#include "serve/frame.h"
#include "serve/ingest_queue.h"
#include "serve/server.h"
#include "serve/tcp_transport.h"
#include "serve/transport.h"
#include "store/recovery.h"
#include "store/store.h"
#include "workload/moving_object.h"
#include "workload/replay.h"

namespace pulse {
namespace serve {
namespace {

// ---------------------------------------------------------------------
// Shared fixtures: the runtime_test filter query over the moving-object
// stream (fields id, x, y, vx, vy).

QuerySpec FilterQuerySpec(double threshold) {
  QuerySpec spec;
  EXPECT_TRUE(
      spec.AddStream(MovingObjectGenerator::MakeStreamSpec("objects", 5.0))
          .ok());
  FilterSpec filter;
  filter.predicate = Predicate::Comparison(ComparisonTerm::Simple(
      AttrRef::Left("x"), CmpOp::kLt, Operand::Constant(threshold)));
  spec.AddFilter("f", QuerySpec::Input::Stream("objects"), filter);
  return spec;
}

Tuple ObjectTuple(double ts, int64_t id, double x, double vx) {
  return Tuple(ts,
               {Value(id), Value(x), Value(0.0), Value(vx), Value(0.0)});
}

// Piecewise-linear x trace that makes the segmenter emit several pieces.
std::vector<Tuple> PiecewiseTrace(int n) {
  std::vector<Tuple> trace;
  trace.reserve(n);
  for (int i = 0; i < n; ++i) {
    const double t = i * 0.05;
    const double x = t < 7.5 ? 2.0 * t : 30.0 - 2.0 * t;
    trace.push_back(ObjectTuple(t, 1, x, 0.0));
  }
  return trace;
}

ServerOptions ObjectsServerOptions(BackpressurePolicy policy) {
  ServerOptions options;
  options.spec = FilterQuerySpec(100.0);
  options.runtime.segmentation.degree = 1;
  options.runtime.segmentation.max_error = 0.05;
  options.session.policy = policy;
  options.session.admission.enabled = false;
  return options;
}

void ExpectSameSegments(const std::vector<Segment>& a,
                        const std::vector<Segment>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].range.lo, b[i].range.lo);
    EXPECT_EQ(a[i].range.hi, b[i].range.hi);
    EXPECT_EQ(a[i].range.lo_open, b[i].range.lo_open);
    EXPECT_EQ(a[i].range.hi_open, b[i].range.hi_open);
    ASSERT_EQ(a[i].attributes.size(), b[i].attributes.size());
    for (const auto& [name, poly] : a[i].attributes) {
      auto it = b[i].attributes.find(name);
      ASSERT_NE(it, b[i].attributes.end()) << name;
      ASSERT_EQ(poly.IsZero(), it->second.IsZero()) << name;
      ASSERT_EQ(poly.degree(), it->second.degree()) << name;
      for (size_t k = 0; k <= poly.degree(); ++k) {
        EXPECT_EQ(poly.coeff(k), it->second.coeff(k))
            << name << " coeff " << k;
      }
    }
    EXPECT_EQ(a[i].unmodeled, b[i].unmodeled);
  }
}

// ---------------------------------------------------------------------
// Frame codec.

TEST(FrameCodec, TupleRoundTripIsBitExact) {
  Tuple t(0.1 + 0.2,  // not representable exactly: catches re-parsing
          {Value(int64_t{-42}), Value(1e-308), Value(std::string("hi")),
           Value(-0.0)});
  Frame in = Frame::OneTuple(7, t);
  FrameReader reader;
  ASSERT_TRUE(reader.Feed(EncodeFrameToString(in)).ok());
  Result<std::optional<Frame>> out = reader.Next();
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(out->has_value());
  EXPECT_EQ((*out)->type, FrameType::kTuple);
  EXPECT_EQ((*out)->stream_id, 7u);
  ASSERT_EQ((*out)->tuples.size(), 1u);
  const Tuple& got = (*out)->tuples[0];
  // Bit patterns, not approximate equality: the serving differential
  // depends on the codec being exact.
  EXPECT_EQ(got.timestamp, t.timestamp);
  ASSERT_EQ(got.values.size(), t.values.size());
  EXPECT_EQ(got.values[0].as_int64(), -42);
  EXPECT_EQ(got.values[1].as_double(), 1e-308);
  EXPECT_EQ(got.values[2].as_string(), "hi");
  EXPECT_TRUE(std::signbit(got.values[3].as_double()));
}

TEST(FrameCodec, SegmentRoundTripPreservesEverything) {
  Segment s(-3, Interval::ClosedOpen(1.5, 2.5));
  s.range.lo_open = true;
  s.range.hi_open = false;
  s.id = 12345;
  s.set_attribute("x", Polynomial({0.1, -2.0, 3.5}));
  s.set_attribute("zero", Polynomial());  // must stay IsZero()
  s.unmodeled["c"] = 4.25;
  FrameReader reader;
  ASSERT_TRUE(reader.Feed(EncodeFrameToString(Frame::OneSegment(1, s))).ok());
  Result<std::optional<Frame>> out = reader.Next();
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(out->has_value());
  ASSERT_EQ((*out)->segments.size(), 1u);
  const Segment& got = (*out)->segments[0];
  EXPECT_EQ(got.key, -3);
  EXPECT_EQ(got.id, 12345u);
  EXPECT_EQ(got.range.lo, 1.5);
  EXPECT_EQ(got.range.hi, 2.5);
  EXPECT_TRUE(got.range.lo_open);
  EXPECT_FALSE(got.range.hi_open);
  ASSERT_EQ(got.attributes.size(), 2u);
  EXPECT_TRUE(got.attributes.at("zero").IsZero());
  EXPECT_EQ(got.attributes.at("x").coeff(2), 3.5);
  EXPECT_EQ(got.unmodeled.at("c"), 4.25);
}

TEST(FrameCodec, AllControlFramesRoundTrip) {
  const Frame frames[] = {Frame::Hello(),
                          Frame::OpenStream(9, "objects"),
                          Frame::Flow(2, FlowEvent::kDroppedOldest, 17),
                          Frame::Drain(),
                          Frame::Drained(),
                          Frame::Error("boom"),
                          Frame::Bye()};
  FrameReader reader;
  for (const Frame& f : frames) {
    ASSERT_TRUE(reader.Feed(EncodeFrameToString(f)).ok());
  }
  for (const Frame& f : frames) {
    Result<std::optional<Frame>> out = reader.Next();
    ASSERT_TRUE(out.ok());
    ASSERT_TRUE(out->has_value());
    EXPECT_EQ((*out)->type, f.type);
  }
  // Exactly consumed.
  Result<std::optional<Frame>> out = reader.Next();
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(out->has_value());
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(FrameCodec, ByteAtATimeFeedingReassembles) {
  const std::string bytes =
      EncodeFrameToString(Frame::OpenStream(3, "objects"));
  FrameReader reader;
  for (size_t i = 0; i < bytes.size(); ++i) {
    ASSERT_TRUE(reader.Feed(bytes.data() + i, 1).ok());
    Result<std::optional<Frame>> out = reader.Next();
    ASSERT_TRUE(out.ok());
    if (i + 1 < bytes.size()) {
      EXPECT_FALSE(out->has_value());
    } else {
      ASSERT_TRUE(out->has_value());
      EXPECT_EQ((*out)->text, "objects");
    }
  }
}

TEST(FrameCodec, TruncatedPayloadPoisonsReader) {
  std::string bytes = EncodeFrameToString(Frame::Error("some message"));
  // Shrink the payload but keep the length prefix: the declared payload
  // now ends mid-string.
  bytes[0] = static_cast<char>(bytes.size() - 4 - 3);
  bytes.resize(bytes.size() - 3);
  FrameReader reader;
  ASSERT_TRUE(reader.Feed(bytes).ok());
  EXPECT_FALSE(reader.Next().ok());
  // Sticky: both Next and Feed fail afterwards.
  EXPECT_FALSE(reader.Next().ok());
  EXPECT_FALSE(reader.Feed("x", 1).ok());
}

TEST(FrameCodec, OversizedFrameRejectedBeforeBuffering) {
  DecodeLimits limits;
  limits.max_frame_bytes = 64;
  FrameReader reader(limits);
  std::string bytes;
  // Length prefix claims 1 GiB.
  const uint32_t huge = 1u << 30;
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<char>(huge >> (8 * i)));
  }
  ASSERT_TRUE(reader.Feed(bytes).ok());
  EXPECT_FALSE(reader.Next().ok());
}

TEST(FrameCodec, TrailingBytesInPayloadRejected) {
  std::string bytes = EncodeFrameToString(Frame::Drain());
  // Extend the payload by one byte (and the prefix accordingly).
  bytes.push_back('\0');
  bytes[0] = static_cast<char>(2);
  FrameReader reader;
  ASSERT_TRUE(reader.Feed(bytes).ok());
  EXPECT_FALSE(reader.Next().ok());
}

TEST(FrameCodec, UnknownFrameTypeRejected) {
  std::string bytes;
  bytes.push_back(1);  // length 1
  bytes.push_back(0);
  bytes.push_back(0);
  bytes.push_back(0);
  bytes.push_back(static_cast<char>(0xEE));  // bogus type
  FrameReader reader;
  ASSERT_TRUE(reader.Feed(bytes).ok());
  EXPECT_FALSE(reader.Next().ok());
}

// ---------------------------------------------------------------------
// Ingest queue policies.

IngestItem Item(uint64_t seq) {
  IngestItem item;
  item.seq = seq;
  return item;
}

TEST(IngestQueue, ShedRejectsWhenFull) {
  IngestQueue q(2, nullptr);
  IngestItem a = Item(0), b = Item(1), c = Item(2);
  EXPECT_EQ(q.TryPush(&a, BackpressurePolicy::kShed, nullptr),
            PushResult::kAccepted);
  EXPECT_EQ(q.TryPush(&b, BackpressurePolicy::kShed, nullptr),
            PushResult::kAccepted);
  EXPECT_EQ(q.TryPush(&c, BackpressurePolicy::kShed, nullptr),
            PushResult::kShed);
  EXPECT_EQ(q.size(), 2u);
  uint64_t seq = 99;
  EXPECT_TRUE(q.PeekSeq(&seq));
  EXPECT_EQ(seq, 0u);  // oldest survives under shed
}

TEST(IngestQueue, DropOldestEvictsHead) {
  IngestQueue q(2, nullptr);
  IngestItem a = Item(0), b = Item(1), c = Item(2);
  ASSERT_EQ(q.TryPush(&a, BackpressurePolicy::kDropOldest, nullptr),
            PushResult::kAccepted);
  ASSERT_EQ(q.TryPush(&b, BackpressurePolicy::kDropOldest, nullptr),
            PushResult::kAccepted);
  uint64_t dropped = 0;
  EXPECT_EQ(q.TryPush(&c, BackpressurePolicy::kDropOldest, &dropped),
            PushResult::kDroppedOldest);
  EXPECT_EQ(dropped, 1u);
  uint64_t seq = 0;
  EXPECT_TRUE(q.PeekSeq(&seq));
  EXPECT_EQ(seq, 1u);  // newest survives under drop-oldest
  EXPECT_EQ(q.size(), 2u);
}

TEST(IngestQueue, BlockPolicyWaitsForConsumer) {
  WorkSignal signal;
  IngestQueue q(1, &signal);
  IngestItem a = Item(0), b = Item(1);
  ASSERT_EQ(q.TryPush(&a, BackpressurePolicy::kBlock, nullptr),
            PushResult::kAccepted);
  EXPECT_EQ(q.TryPush(&b, BackpressurePolicy::kBlock, nullptr),
            PushResult::kWouldBlock);
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    uint64_t blocked_ns = 0;
    EXPECT_TRUE(q.PushBlocking(Item(1), &blocked_ns));
    pushed.store(true);
  });
  IngestItem out;
  ASSERT_TRUE(q.Pop(&out));
  EXPECT_EQ(out.seq, 0u);
  producer.join();
  EXPECT_TRUE(pushed.load());
  ASSERT_TRUE(q.Pop(&out));
  EXPECT_EQ(out.seq, 1u);
}

TEST(IngestQueue, CloseUnblocksProducerAndKeepsItemsPoppable) {
  IngestQueue q(1, nullptr);
  IngestItem a = Item(0);
  ASSERT_EQ(q.TryPush(&a, BackpressurePolicy::kBlock, nullptr),
            PushResult::kAccepted);
  std::thread producer([&] {
    EXPECT_FALSE(q.PushBlocking(Item(1), nullptr));  // closed while full
  });
  // Give the producer a moment to block, then close.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  producer.join();
  IngestItem out;
  EXPECT_TRUE(q.Pop(&out));  // drain still sees the admitted item
  EXPECT_EQ(out.seq, 0u);
  IngestItem c = Item(2);
  EXPECT_EQ(q.TryPush(&c, BackpressurePolicy::kBlock, nullptr),
            PushResult::kClosed);
}

// ---------------------------------------------------------------------
// Micro-batcher and admission controller.

TEST(MicroBatcher, TargetTracksArrivalRate) {
  BatcherOptions options;
  options.target_batch_ns = 1'000'000;  // 1 ms horizon
  options.max_batch = 1000;
  MicroBatcher batcher(options);
  EXPECT_EQ(batcher.TargetBatchSize(), 1u);  // no estimate yet
  // 10 us inter-arrival -> 100k tuples/s -> ~100 per 1 ms batch.
  uint64_t now = 0;
  for (int i = 0; i < 200; ++i) {
    batcher.RecordArrival(now);
    now += 10'000;
  }
  EXPECT_NEAR(static_cast<double>(batcher.TargetBatchSize()), 100.0, 2.0);
  EXPECT_NEAR(batcher.ArrivalRatePerSec(), 1e5, 1e3);
  // Slowing to 1 tuple/ms shrinks the target back toward min.
  for (int i = 0; i < 200; ++i) {
    batcher.RecordArrival(now);
    now += 1'000'000;
  }
  EXPECT_LE(batcher.TargetBatchSize(), 2u);
}

TEST(MicroBatcher, ClampsToConfiguredBounds) {
  BatcherOptions options;
  options.min_batch = 4;
  options.max_batch = 8;
  options.target_batch_ns = 1'000'000'000;  // huge horizon
  MicroBatcher batcher(options);
  uint64_t now = 0;
  for (int i = 0; i < 10; ++i) {
    batcher.RecordArrival(now);
    now += 10;
  }
  EXPECT_EQ(batcher.TargetBatchSize(), 8u);  // clamped to max
}

TEST(AdmissionController, QueueWatermarkHysteresis) {
  AdmissionOptions options;
  options.queue_high_watermark = 0.8;
  options.queue_low_watermark = 0.4;
  AdmissionController controller(options, nullptr);
  EXPECT_EQ(controller.Admit(10, 100), AdmitDecision::kAdmit);
  EXPECT_EQ(controller.Admit(90, 100), AdmitDecision::kShedQueue);
  // Still above the low watermark: keeps shedding (hysteresis).
  EXPECT_EQ(controller.Admit(60, 100), AdmitDecision::kShedQueue);
  // Below the low watermark: recovers.
  EXPECT_EQ(controller.Admit(30, 100), AdmitDecision::kAdmit);
  EXPECT_FALSE(controller.overloaded());
}

TEST(AdmissionController, LatencySignalShedsAndRecovers) {
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.GetHistogram("span/runtime/push_segment");
  AdmissionOptions options;
  options.latency_high_ns = 1000;
  options.latency_low_ns = 100;
  options.sample_every = 1;  // resample on every admission
  AdmissionController controller(options, h);
  EXPECT_EQ(controller.Admit(0, 100), AdmitDecision::kAdmit);
  // Slow solver: p99 over the next interval far above the threshold.
  for (int i = 0; i < 100; ++i) h->Record(50'000);
  EXPECT_EQ(controller.Admit(0, 100), AdmitDecision::kShedLatency);
  EXPECT_TRUE(controller.overloaded());
  // Fast again: interval p99 drops under the low threshold.
  for (int i = 0; i < 100; ++i) h->Record(10);
  EXPECT_EQ(controller.Admit(0, 100), AdmitDecision::kAdmit);
  // Idle solver (no new samples): stays recovered.
  EXPECT_EQ(controller.Admit(0, 100), AdmitDecision::kAdmit);
}

TEST(AdmissionController, DisabledAdmitsEverything) {
  AdmissionOptions options;
  options.enabled = false;
  AdmissionController controller(options, nullptr);
  EXPECT_EQ(controller.Admit(100, 100), AdmitDecision::kAdmit);
}

// ---------------------------------------------------------------------
// Incremental fitter: the micro-batching invariance.

TEST(IncrementalFitter, BatchSplitInvariance) {
  std::vector<Sample> samples;
  for (int i = 0; i < 50; ++i) {
    const double t = 0.1 * i;
    samples.push_back({t, 3.0 - 2.0 * t + 0.25 * t * t + 0.01 * i});
  }
  IncrementalFitter whole(2);
  whole.AddBatch(samples);
  IncrementalFitter split(2);
  // Same order, arbitrary batch boundaries.
  split.AddBatch(samples.data(), 7);
  split.AddBatch(samples.data() + 7, 1);
  split.AddBatch(samples.data() + 8, 42);
  Result<Polynomial> a = whole.Fit();
  Result<Polynomial> b = split.Fit();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->degree(), b->degree());
  for (size_t k = 0; k <= a->degree(); ++k) {
    // Bit-identical, not just close: the moments are the same ordered
    // sums regardless of batch boundaries.
    EXPECT_EQ(a->coeff(k), b->coeff(k)) << k;
  }
}

TEST(IncrementalFitter, RecoversExactPolynomial) {
  IncrementalFitter fitter(1);
  for (int i = 0; i < 10; ++i) {
    const double t = 0.5 * i;
    fitter.Add({t, 2.0 + 3.0 * t});
  }
  Result<Polynomial> p = fitter.Fit();
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p->coeff(0), 2.0, 1e-9);
  EXPECT_NEAR(p->coeff(1), 3.0, 1e-9);
  EXPECT_FALSE(IncrementalFitter(2).Fit().ok());  // too few samples
}

// ---------------------------------------------------------------------
// End-to-end sessions over the in-process transport.

TEST(Session, DrainDeliversSameOutputsAsDirectRuntime) {
  const std::vector<Tuple> trace = PiecewiseTrace(300);

  // Direct path.
  ServerOptions options = ObjectsServerOptions(BackpressurePolicy::kBlock);
  Result<HistoricalRuntime> direct =
      HistoricalRuntime::Make(options.spec, options.runtime);
  ASSERT_TRUE(direct.ok());
  for (const Tuple& t : trace) {
    ASSERT_TRUE(direct->ProcessTuple("objects", t).ok());
  }
  ASSERT_TRUE(direct->Finish().ok());
  const std::vector<Segment> expected = direct->TakeOutputSegments();
  ASSERT_FALSE(expected.empty());

  // Served path.
  Result<std::unique_ptr<StreamServer>> server =
      StreamServer::Make(ObjectsServerOptions(BackpressurePolicy::kBlock));
  ASSERT_TRUE(server.ok());
  Result<std::unique_ptr<Transport>> conn = (*server)->ConnectInProcess();
  ASSERT_TRUE(conn.ok());
  ServeClient client(std::move(*conn));
  ASSERT_TRUE(client.Hello().ok());
  ASSERT_TRUE(client.OpenStream(1, "objects").ok());
  for (const Tuple& t : trace) {
    ASSERT_TRUE(client.SendTuple(1, t).ok());
  }
  Result<ServeClient::DrainResult> drained = client.Drain();
  ASSERT_TRUE(drained.ok());
  EXPECT_EQ(drained->shed, 0u);
  EXPECT_EQ(drained->dropped, 0u);
  ExpectSameSegments(expected, drained->output_segments);
  // No Bye after Drain: the server closes the transport right after
  // kDrained, so a late goodbye write races the peer's close.
  (*server)->Drain();

  // Lossless accounting: everything sent was accepted and dispatched.
  obs::MetricsSnapshot snapshot = (*server)->metrics()->Snapshot();
  EXPECT_EQ(snapshot.counters["serve/queue/accepted"], trace.size());
  EXPECT_EQ(snapshot.counters["serve/queue/shed"], 0u);
  EXPECT_EQ(snapshot.counters["serve/batch/tuples"], trace.size());
  EXPECT_EQ(snapshot.counters["serve/session/opened"], 1u);
  EXPECT_EQ(snapshot.counters["serve/session/closed"], 1u);
}

TEST(Session, SegmentPushPathMatchesDirectReplay) {
  ServerOptions options = ObjectsServerOptions(BackpressurePolicy::kBlock);
  options.spec = FilterQuerySpec(5.0);
  Segment seg(1, Interval::ClosedOpen(0.0, 10.0));
  seg.set_attribute("x", Polynomial({0.0, 1.0}));
  seg.set_attribute("y", Polynomial());

  Result<std::unique_ptr<StreamServer>> server =
      StreamServer::Make(std::move(options));
  ASSERT_TRUE(server.ok());
  Result<std::unique_ptr<Transport>> conn = (*server)->ConnectInProcess();
  ASSERT_TRUE(conn.ok());
  ServeClient client(std::move(*conn));
  ASSERT_TRUE(client.Hello().ok());
  ASSERT_TRUE(client.OpenStream(1, "objects").ok());
  ASSERT_TRUE(client.SendSegment(1, seg).ok());
  Result<ServeClient::DrainResult> drained = client.Drain();
  ASSERT_TRUE(drained.ok());
  ASSERT_EQ(drained->output_segments.size(), 1u);
  // x < 5 truncates the [0, 10) validity to [0, 5).
  EXPECT_NEAR(drained->output_segments[0].range.hi, 5.0, 1e-9);
  (*server)->Drain();
}

TEST(Session, PolicyAccountingConservesTuples) {
  for (const BackpressurePolicy policy :
       {BackpressurePolicy::kDropOldest, BackpressurePolicy::kShed}) {
    ServerOptions options = ObjectsServerOptions(policy);
    options.session.queue_capacity = 4;  // force pressure
    Result<std::unique_ptr<StreamServer>> server =
        StreamServer::Make(std::move(options));
    ASSERT_TRUE(server.ok());
    Result<std::unique_ptr<Transport>> conn = (*server)->ConnectInProcess();
    ASSERT_TRUE(conn.ok());
    ServeClient client(std::move(*conn));
    ASSERT_TRUE(client.Hello().ok());
    ASSERT_TRUE(client.OpenStream(1, "objects").ok());
    const std::vector<Tuple> trace = PiecewiseTrace(400);
    ASSERT_TRUE(client.SendBatch(1, trace).ok());
    Result<ServeClient::DrainResult> drained = client.Drain();
    ASSERT_TRUE(drained.ok());
    (*server)->Drain();

    obs::MetricsSnapshot snapshot = (*server)->metrics()->Snapshot();
    const uint64_t accepted = snapshot.counters["serve/queue/accepted"];
    const uint64_t shed = snapshot.counters["serve/queue/shed"];
    const uint64_t dropped = snapshot.counters["serve/queue/dropped"];
    // Conservation: every sent tuple was either accepted or shed, and
    // every accepted-minus-evicted tuple was dispatched to the runtime.
    EXPECT_EQ(accepted + shed, trace.size());
    EXPECT_EQ(snapshot.counters["serve/batch/tuples"], accepted - dropped);
    // The client saw the same story via flow frames.
    EXPECT_EQ(drained->shed, shed);
    EXPECT_EQ(drained->dropped, dropped);
    if (policy == BackpressurePolicy::kShed) {
      EXPECT_EQ(dropped, 0u);
    }
  }
}

TEST(Session, ProtocolViolationGetsErrorFrame) {
  Result<std::unique_ptr<StreamServer>> server =
      StreamServer::Make(ObjectsServerOptions(BackpressurePolicy::kBlock));
  ASSERT_TRUE(server.ok());
  Result<std::unique_ptr<Transport>> conn = (*server)->ConnectInProcess();
  ASSERT_TRUE(conn.ok());
  ServeClient client(std::move(*conn));
  // No hello: the first data frame is a protocol violation.
  ASSERT_TRUE(client.SendTuple(1, ObjectTuple(0, 1, 0, 0)).ok());
  Result<std::optional<Frame>> reply = client.ReadFrame();
  ASSERT_TRUE(reply.ok());
  ASSERT_TRUE(reply->has_value());
  EXPECT_EQ((*reply)->type, FrameType::kError);
  (*server)->Shutdown();
}

TEST(Session, UnknownStreamNameRejected) {
  Result<std::unique_ptr<StreamServer>> server =
      StreamServer::Make(ObjectsServerOptions(BackpressurePolicy::kBlock));
  ASSERT_TRUE(server.ok());
  Result<std::unique_ptr<Transport>> conn = (*server)->ConnectInProcess();
  ASSERT_TRUE(conn.ok());
  ServeClient client(std::move(*conn));
  ASSERT_TRUE(client.Hello().ok());
  ASSERT_TRUE(client.OpenStream(1, "nonexistent").ok());
  Result<std::optional<Frame>> reply = client.ReadFrame();
  ASSERT_TRUE(reply.ok());
  ASSERT_TRUE(reply->has_value());
  EXPECT_EQ((*reply)->type, FrameType::kError);
  (*server)->Shutdown();
}

TEST(Session, TeardownUnderLoadDoesNotHang) {
  Result<std::unique_ptr<StreamServer>> server =
      StreamServer::Make(ObjectsServerOptions(BackpressurePolicy::kBlock));
  ASSERT_TRUE(server.ok());
  // Several concurrent sessions, each sending as fast as it can while
  // the server is shut down mid-stream.
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    Result<std::unique_ptr<Transport>> conn = (*server)->ConnectInProcess();
    ASSERT_TRUE(conn.ok());
    clients.emplace_back([transport = std::move(*conn)]() mutable {
      ServeClient client(std::move(transport));
      if (!client.Hello().ok()) return;
      if (!client.OpenStream(1, "objects").ok()) return;
      for (int i = 0; i < 1'000'000; ++i) {
        if (!client
                 .SendTuple(1, ObjectTuple(i * 0.05, 1, i * 0.1, 0.0))
                 .ok()) {
          return;  // server went away: expected
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  (*server)->Shutdown();
  for (std::thread& t : clients) t.join();
  EXPECT_EQ((*server)->active_sessions(), 0u);
}

TEST(Session, ServerDrainFinishesInFlightSessions) {
  Result<std::unique_ptr<StreamServer>> server =
      StreamServer::Make(ObjectsServerOptions(BackpressurePolicy::kBlock));
  ASSERT_TRUE(server.ok());
  Result<std::unique_ptr<Transport>> conn = (*server)->ConnectInProcess();
  ASSERT_TRUE(conn.ok());
  ServeClient client(std::move(*conn));
  ASSERT_TRUE(client.Hello().ok());
  ASSERT_TRUE(client.OpenStream(1, "objects").ok());
  ASSERT_TRUE(client.SendBatch(1, PiecewiseTrace(100)).ok());
  // Drain only guarantees delivery of *admitted* work, and the batch
  // sits in the transport buffer until the reader thread decodes it —
  // wait for admission before draining, or the drain may legitimately
  // produce nothing.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while ((*server)->metrics()->Snapshot().counters["serve/queue/accepted"] <
         100) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Server-side graceful drain: session processes what was admitted
  // and closes; the client sees output frames then EOF.
  std::thread drainer([&] { (*server)->Drain(); });
  size_t outputs = 0;
  for (;;) {
    Result<std::optional<Frame>> frame = client.ReadFrame();
    if (!frame.ok() || !frame->has_value()) break;
    if ((*frame)->type == FrameType::kOutputSegment) ++outputs;
  }
  drainer.join();
  EXPECT_GT(outputs, 0u);
  EXPECT_EQ((*server)->active_sessions(), 0u);
}

// ---------------------------------------------------------------------
// TCP transport.

TEST(TcpTransport, EndToEndSessionOverLoopback) {
  Result<std::unique_ptr<StreamServer>> server =
      StreamServer::Make(ObjectsServerOptions(BackpressurePolicy::kBlock));
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->ListenTcp(0).ok());
  const uint16_t port = (*server)->tcp_port();
  ASSERT_NE(port, 0);

  Result<std::unique_ptr<Transport>> conn = TcpConnect("127.0.0.1", port);
  ASSERT_TRUE(conn.ok());
  ServeClient client(std::move(*conn));
  ASSERT_TRUE(client.Hello().ok());
  ASSERT_TRUE(client.OpenStream(1, "objects").ok());
  ASSERT_TRUE(client.SendBatch(1, PiecewiseTrace(200)).ok());
  Result<ServeClient::DrainResult> drained = client.Drain();
  ASSERT_TRUE(drained.ok());
  EXPECT_GT(drained->output_segments.size(), 0u);
  EXPECT_EQ(drained->shed, 0u);
  ASSERT_TRUE(client.Bye().ok());
  (*server)->Drain();
  EXPECT_EQ((*server)->sessions_opened(), 1u);
}

// ---------------------------------------------------------------------
// Paced replay traffic generator.

TEST(PacedReplay, UniformPacingAtTargetRate) {
  PacedReplay replay(PiecewiseTrace(10), 1000.0);  // 1k tuples/s
  Tuple t;
  uint64_t offset = 0;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(replay.Next(&t, &offset));
    EXPECT_EQ(offset, static_cast<uint64_t>(i) * 1'000'000u);
  }
  EXPECT_FALSE(replay.Next(&t, &offset));
}

TEST(PacedReplay, EventTimePacingFollowsTimestamps) {
  std::vector<Tuple> trace = {ObjectTuple(10.0, 1, 0, 0),
                              ObjectTuple(10.5, 1, 1, 0),
                              ObjectTuple(12.0, 1, 2, 0)};
  PacedReplay replay(trace, 0.0);
  Tuple t;
  uint64_t offset = 0;
  ASSERT_TRUE(replay.Next(&t, &offset));
  EXPECT_EQ(offset, 0u);
  ASSERT_TRUE(replay.Next(&t, &offset));
  EXPECT_EQ(offset, 500'000'000u);
  ASSERT_TRUE(replay.Next(&t, &offset));
  EXPECT_EQ(offset, 2'000'000'000u);
}

// ---------------------------------------------------------------------
// Durable serving mode (docs/STORAGE.md): admitted input hits the
// shared segment log before dispatch, delivered outputs advance the
// checkpoint watermark, and Drain seals a finished checkpoint that
// recovery verifies byte-for-byte.

class DurableServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string templ =
        (std::filesystem::temp_directory_path() / "pulse_serve_store_XXXXXX")
            .string();
    ASSERT_NE(mkdtemp(templ.data()), nullptr);
    dir_ = templ;
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::string dir_;
};

TEST_F(DurableServeTest, SessionLogsAdmissionsAndDrainSealsCheckpoint) {
  const std::vector<Tuple> trace = PiecewiseTrace(300);
  ServerOptions options = ObjectsServerOptions(BackpressurePolicy::kBlock);
  std::vector<Segment> delivered;
  {
    Result<store::SegmentStore> st = store::SegmentStore::Open({.dir = dir_});
    ASSERT_TRUE(st.ok()) << st.status().ToString();
    options.store = &*st;
    Result<std::unique_ptr<StreamServer>> server =
        StreamServer::Make(options);
    ASSERT_TRUE(server.ok());
    Result<std::unique_ptr<Transport>> conn = (*server)->ConnectInProcess();
    ASSERT_TRUE(conn.ok());
    ServeClient client(std::move(*conn));
    ASSERT_TRUE(client.Hello().ok());
    ASSERT_TRUE(client.OpenStream(1, "objects").ok());
    for (const Tuple& t : trace) {
      ASSERT_TRUE(client.SendTuple(1, t).ok());
    }
    Result<ServeClient::DrainResult> drained = client.Drain();
    ASSERT_TRUE(drained.ok());
    EXPECT_EQ(drained->shed, 0u);
    delivered = std::move(drained->output_segments);
    ASSERT_FALSE(delivered.empty());
    (*server)->Drain();
    // Every admitted tuple was logged; every delivered output noted.
    EXPECT_EQ(st->log_records(), trace.size());
    EXPECT_EQ(st->delivered_outputs(), delivered.size());
  }

  // Recovery replays the log into a fresh runtime and must verify the
  // delivered prefix against the finished checkpoint — and because the
  // checkpoint covered everything, nothing is pending.
  Result<store::RecoveredHistorical> recovered = store::RecoverHistorical(
      options.spec, options.runtime, {.dir = dir_});
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered->report.clean());
  EXPECT_TRUE(recovered->report.checkpoint.finished);
  EXPECT_EQ(recovered->report.log_records, trace.size());
  EXPECT_TRUE(recovered->state_verified) << recovered->verify_detail;
  EXPECT_TRUE(recovered->pending_outputs.empty());
}

TEST_F(DurableServeTest, KilledServerRedeliversUndeliveredOutputs) {
  const std::vector<Tuple> trace = PiecewiseTrace(300);
  ServerOptions options = ObjectsServerOptions(BackpressurePolicy::kBlock);

  // The uninterrupted direct run is the ground truth.
  Result<HistoricalRuntime> direct =
      HistoricalRuntime::Make(options.spec, options.runtime);
  ASSERT_TRUE(direct.ok());
  for (const Tuple& t : trace) {
    ASSERT_TRUE(direct->ProcessTuple("objects", t).ok());
  }
  ASSERT_TRUE(direct->Finish().ok());
  const std::vector<Segment> expected = direct->TakeOutputSegments();

  // Serve the feed durably, then Shutdown() instead of Drain(): the
  // hard stop never seals a checkpoint (the mid-flight crash shape).
  {
    Result<store::SegmentStore> st = store::SegmentStore::Open({.dir = dir_});
    ASSERT_TRUE(st.ok());
    options.store = &*st;
    Result<std::unique_ptr<StreamServer>> server =
        StreamServer::Make(options);
    ASSERT_TRUE(server.ok());
    Result<std::unique_ptr<Transport>> conn = (*server)->ConnectInProcess();
    ASSERT_TRUE(conn.ok());
    ServeClient client(std::move(*conn));
    ASSERT_TRUE(client.Hello().ok());
    ASSERT_TRUE(client.OpenStream(1, "objects").ok());
    for (const Tuple& t : trace) {
      ASSERT_TRUE(client.SendTuple(1, t).ok());
    }
    // Client drain forces all input through admission (and thus into
    // the log) before the "crash".
    ASSERT_TRUE(client.Drain().ok());
    (*server)->Shutdown();
    EXPECT_EQ(st->log_records(), trace.size());
  }

  // No checkpoint: recovery redelivers the full output set, which must
  // equal the uninterrupted run's.
  Result<store::RecoveredHistorical> recovered = store::RecoverHistorical(
      options.spec, options.runtime, {.dir = dir_});
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_FALSE(recovered->report.checkpoint_found);
  EXPECT_TRUE(recovered->state_verified) << recovered->verify_detail;
  ASSERT_TRUE(recovered->runtime.Finish().ok());
  std::vector<Segment> outputs = std::move(recovered->pending_outputs);
  for (Segment& s : recovered->runtime.TakeOutputSegments()) {
    outputs.push_back(std::move(s));
  }
  ExpectSameSegments(expected, outputs);
}

}  // namespace
}  // namespace serve
}  // namespace pulse
