// Ablation A1: split-heuristic comparison (paper Section IV-C). The
// paper defines equi-split and gradient-split and frames validation
// efficiency as an optimization problem; this bench quantifies the
// choice: with the same output bound, a better apportioning of input
// margins yields fewer violations (longer-lived bounds) and therefore
// fewer solver runs.
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "core/runtime.h"
#include "workload/nyse.h"
#include "workload/queries.h"

namespace pulse {
namespace {

QuerySpec MacdSpec() {
  QuerySpec spec;
  (void)spec.AddStream(NyseGenerator::MakeStreamSpec("nyse", 5.0));
  MacdParams params;
  (void)AddMacdQuery(&spec, params);
  return spec;
}

struct RunResult {
  double seconds = 0.0;
  uint64_t violations = 0;
  uint64_t validated = 0;
  uint64_t segments = 0;
  uint64_t inversions = 0;
};

RunResult RunWith(const std::shared_ptr<const SplitHeuristic>& split,
                  const std::vector<Tuple>& trace, double bound) {
  PredictiveRuntime::Options opts;
  opts.bounds = {BoundSpec::Relative("s.ap", bound)};
  opts.split = split;
  opts.collect_outputs = false;
  Result<PredictiveRuntime> rt = PredictiveRuntime::Make(MacdSpec(), opts);
  RunResult out;
  out.seconds = bench::MeasureSeconds([&] {
    for (const Tuple& t : trace) (void)rt->ProcessTuple("nyse", t);
    (void)rt->Finish();
  });
  out.violations = rt->stats().violations;
  out.validated = rt->stats().tuples_validated;
  out.segments = rt->stats().segments_pushed;
  out.inversions = rt->stats().inversions;
  return out;
}

}  // namespace
}  // namespace pulse

int main() {
  using namespace pulse;
  NyseOptions gen_opts;
  gen_opts.num_symbols = 50;
  gen_opts.tuple_rate = 3000.0;
  gen_opts.trades_per_trend = 300;
  gen_opts.noise = 0.05;
  const std::vector<Tuple> trace =
      NyseGenerator(gen_opts).Generate(180000);
  std::printf("Ablation A1: split heuristics on MACD, %zu trades\n",
              trace.size());

  bench::SeriesTable table(
      "A1: equi-split vs gradient-split (MACD, varying bound)",
      "bound_%",
      {"equi_violations", "grad_violations", "equi_tps", "grad_tps"});
  for (double bound : {0.05, 0.02, 0.01, 0.005, 0.002}) {
    const RunResult equi =
        RunWith(std::make_shared<EquiSplit>(), trace, bound);
    const RunResult grad =
        RunWith(std::make_shared<GradientSplit>(), trace, bound);
    table.AddRow(bound * 100.0,
                 {static_cast<double>(equi.violations),
                  static_cast<double>(grad.violations),
                  static_cast<double>(trace.size()) / equi.seconds,
                  static_cast<double>(trace.size()) / grad.seconds});
  }
  table.Print();
  std::printf(
      "\nReading: gradient-split gives fast-moving models the larger "
      "margin share, postponing violations\non the attributes most likely "
      "to drift; equal bounds make the comparison apples-to-apples.\n");
  return 0;
}
