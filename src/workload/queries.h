#ifndef PULSE_WORKLOAD_QUERIES_H_
#define PULSE_WORKLOAD_QUERIES_H_

#include <string>

#include "core/query.h"
#include "util/result.h"

namespace pulse {

/// Parameters of the paper's MACD (moving average convergence/divergence)
/// query over the NYSE feed (Section V-B):
///
///   select symbol, S.ap - L.ap as diff from
///     (select symbol, avg(price) as ap from stream S[size 10 advance 2])
///       as S
///     join
///     (select symbol, avg(price) as ap from stream S[size 60 advance 2])
///       as L
///     on (S.Symbol = L.Symbol) where S.ap > L.ap
struct MacdParams {
  std::string stream = "nyse";
  double short_window = 10.0;
  double long_window = 60.0;
  double slide = 2.0;
  /// Join buffer window (seconds of aggregate outputs held per side).
  double join_window = 4.0;
};

/// Builds the MACD query over an already-declared stream in `spec`
/// (the stream must have a "price" modeled attribute keyed by symbol).
/// Returns the sink node id of the final diff map.
Result<QuerySpec::NodeId> AddMacdQuery(QuerySpec* spec,
                                       const MacdParams& params);

/// Parameters of the paper's vessel "following" query over the AIS feed
/// (Section V-B):
///
///   select Candidates.id1, Candidates.id2, avg(dist)
///   (select S1.id as id1, S2.id as id2,
///           sqrt(pow(S1.x-S2.x,2) + pow(S1.y-S2.y,2)) as dist
///    from S[size 10 advance 1] as S1 join S as S2[size 10 advance 1]
///    on (S1.id <> S2.id)) [size 600 advance 10] as Candidates
///   group by id1, id2 having avg(dist) < 1000
///
/// Substitution note (documented in DESIGN.md): sqrt is not polynomial,
/// so both plans compute dist^2 and aggregate avg(dist^2) with the HAVING
/// threshold squared — identical semantics on both the discrete baseline
/// and the Pulse plan, preserving a fair comparison. A candidate-pruning
/// distance predicate (dist < prune_factor * threshold) bounds the
/// otherwise-cross-product join, as a proximity tracker would.
struct FollowingParams {
  std::string stream = "ais";
  double join_window = 10.0;
  double avg_window = 600.0;
  double avg_slide = 10.0;
  double threshold = 1000.0;
  double prune_factor = 4.0;
};

/// Builds the following query; returns the sink node id of the HAVING
/// filter.
Result<QuerySpec::NodeId> AddFollowingQuery(QuerySpec* spec,
                                            const FollowingParams& params);

}  // namespace pulse

#endif  // PULSE_WORKLOAD_QUERIES_H_
