// Reproduces paper Fig. 7i: aggregate processing cost vs window size
// (10-100 s, slide 2 s, 3000 tup/s, 1% threshold).
//
// Paper shape: the tuple-based aggregate's cost is linear in the window
// size (size/slide state increments per tuple) while the segment-based
// cost stays low and flat — Pulse outperforms beyond ~30 s and costs
// ~40% of regular processing at a 100 s window.
#include <cstdio>

#include "bench_util.h"
#include "core/runtime.h"
#include "engine/executor.h"
#include "workload/moving_object.h"

namespace pulse {
namespace {

std::vector<Tuple> MakeTrace(double rate, double duration_s) {
  MovingObjectOptions opts;
  opts.num_objects = 10;
  opts.tuple_rate = rate;
  opts.tuples_per_segment = 200;
  opts.noise = 0.0;
  return MovingObjectGenerator(opts).Generate(
      static_cast<size_t>(rate * duration_s));
}

QuerySpec MinQuery(double window) {
  QuerySpec spec;
  (void)spec.AddStream(
      MovingObjectGenerator::MakeStreamSpec("objects", 200.0 * 10 / 3000));
  AggregateSpec agg;
  agg.fn = AggFn::kMin;
  agg.attribute = "x";
  agg.window_seconds = window;
  agg.slide_seconds = 2.0;  // Fig. 6: slide 2 s
  spec.AddAggregate("min", QuerySpec::Input::Stream("objects"), agg);
  return spec;
}

}  // namespace
}  // namespace pulse

int main() {
  using namespace pulse;
  const double kRate = 3000.0;  // Fig. 6: stream rate 3000 tup/s
  const std::vector<Tuple> trace = MakeTrace(kRate, /*duration_s=*/150.0);
  std::printf("Fig 7i reproduction: %zu tuples at %.0f tup/s\n",
              trace.size(), kRate);

  bench::SeriesTable table(
      "Fig 7i: aggregate processing cost vs window size (1% threshold)",
      "window_s",
      {"tuple_cost_s", "pulse_cost_s", "pulse/tuple_ratio"});

  for (double window = 10.0; window <= 100.0; window += 10.0) {
    const QuerySpec spec = MinQuery(window);

    Result<DiscretePlan> dplan = BuildDiscretePlan(spec);
    Result<Executor> dexec = Executor::Make(std::move(dplan->plan));
    dexec->set_discard_output(true);
    const double tuple_cost = bench::MeasureSeconds([&] {
      for (const Tuple& t : trace) {
        (void)dexec->PushTuple("objects", t);
      }
    });

    PredictiveRuntime::Options opts;
    opts.bounds = {BoundSpec::Relative("agg", 0.01)};
    opts.collect_outputs = false;
    Result<PredictiveRuntime> rt =
        PredictiveRuntime::Make(spec, std::move(opts));
    const double pulse_cost = bench::MeasureSeconds([&] {
      for (const Tuple& t : trace) {
        (void)rt->ProcessTuple("objects", t);
      }
    });

    table.AddRow(window, {tuple_cost, pulse_cost, pulse_cost / tuple_cost});
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper): tuple cost grows ~linearly with window; "
      "pulse cost stays flat;\ncrossover by ~30 s and pulse ~40%% of tuple "
      "cost at 100 s.\n");
  return 0;
}
