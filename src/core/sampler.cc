#include "core/sampler.h"

#include <cmath>
#include <cstdint>

#include "util/logging.h"

namespace pulse {

Sampler::Sampler(SamplerOptions options) : options_(options) {
  PULSE_CHECK(options_.rate > 0.0 || options_.slide > 0.0);
}

std::vector<Tuple> Sampler::Sample(
    const Segment& segment,
    const std::vector<std::string>& attributes) const {
  std::vector<Tuple> out;
  auto emit = [&](double t) {
    Tuple tuple;
    tuple.timestamp = t;
    tuple.values.reserve(attributes.size() + 1);
    tuple.values.push_back(Value(segment.key));
    for (const std::string& attr : attributes) {
      auto it = segment.attributes.find(attr);
      const double v =
          it != segment.attributes.end() ? it->second.Evaluate(t) : 0.0;
      tuple.values.push_back(Value(v));
    }
    out.push_back(std::move(tuple));
  };

  if (segment.range.IsEmpty()) return out;
  if (segment.range.IsPoint()) {
    emit(segment.range.lo);
    return out;
  }
  const double step =
      options_.slide > 0.0 ? options_.slide : 1.0 / options_.rate;
  // Samples lie on the absolute grid k * step so consecutive segments of
  // one output stream produce a uniformly spaced tuple sequence. Integer
  // stepping avoids accumulated floating-point drift past the range end.
  int64_t k = static_cast<int64_t>(std::ceil(segment.range.lo / step));
  if (k * step == segment.range.lo && segment.range.lo_open) ++k;
  for (;; ++k) {
    const double t = static_cast<double>(k) * step;
    const bool inside =
        t < segment.range.hi ||
        (t == segment.range.hi && !segment.range.hi_open);
    if (!inside) break;
    emit(t);
  }
  return out;
}

std::vector<Tuple> Sampler::SampleAll(
    const SegmentBatch& segments,
    const std::vector<std::string>& attributes) const {
  std::vector<Tuple> out;
  for (const Segment& s : segments) {
    std::vector<Tuple> part = Sample(s, attributes);
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

}  // namespace pulse
