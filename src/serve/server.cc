#include "serve/server.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "store/store.h"
#include "util/logging.h"

namespace pulse {
namespace serve {

StreamServer::StreamServer(ServerOptions options)
    : options_(std::move(options)) {
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  c_opened_ = metrics_->GetCounter("serve/session/opened");
  c_closed_ = metrics_->GetCounter("serve/session/closed");
  g_active_ = metrics_->GetGauge("serve/session/active");
}

Result<std::unique_ptr<StreamServer>> StreamServer::Make(
    ServerOptions options) {
  // Fail fast on an unservable query: build one probe runtime now
  // rather than on the first connection.
  HistoricalRuntime::Options probe = options.runtime;
  probe.metrics = nullptr;
  PULSE_RETURN_IF_ERROR(
      HistoricalRuntime::Make(options.spec, std::move(probe)).status());
  auto server =
      std::unique_ptr<StreamServer>(new StreamServer(std::move(options)));
  shard::ShardPoolOptions pool_options;
  pool_options.num_shards =
      server->options_.num_shards != 0
          ? server->options_.num_shards
          : std::max<size_t>(1, std::thread::hardware_concurrency());
  pool_options.exchange_capacity = server->options_.exchange_capacity;
  pool_options.runtime = server->options_.runtime;
  pool_options.metrics = server->metrics_;
  PULSE_ASSIGN_OR_RETURN(
      server->pool_,
      shard::ShardPool::Make(server->options_.spec, std::move(pool_options)));
  return server;
}

StreamServer::~StreamServer() { Shutdown(); }

Status StreamServer::AddSession(std::unique_ptr<Transport> transport) {
  // A session is a thin router: it gets a ShardClient handle onto the
  // shared pool, not a runtime of its own. Per-client solver state is
  // created inside the pool, one slice per shard.
  PULSE_ASSIGN_OR_RETURN(std::unique_ptr<shard::ShardClient> client,
                         pool_->AddClient());
  // Adaptive-precision sessions dispatch into a session-owned runtime
  // (the tier lever needs a single sequential call stream to defer and
  // replay; docs/PRECISION.md), so each one gets its own AdaptiveRuntime
  // instead of using its slice of the shared shard pool.
  std::unique_ptr<AdaptiveRuntime> adaptive;
  if (options_.session.precision.enabled) {
    PULSE_ASSIGN_OR_RETURN(
        adaptive,
        AdaptiveRuntime::Make(options_.spec, options_.runtime,
                              options_.session.precision_runtime));
  }
  std::vector<std::string> streams;
  for (const auto& [name, spec] : options_.spec.streams()) {
    streams.push_back(name);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) {
    return Status::FailedPrecondition("server is shut down");
  }
  ReapLocked();
  auto session = std::make_unique<Session>(
      next_session_id_++, std::move(transport), std::move(client),
      options_.session, std::move(streams), metrics_, options_.store,
      std::move(adaptive));
  session->Start();
  sessions_.push_back(std::move(session));
  c_opened_->Increment();
  UpdateSessionMetricsLocked();
  return Status::OK();
}

Result<std::unique_ptr<Transport>> StreamServer::ConnectInProcess() {
  TransportPair pair = MakeInProcessPair();
  PULSE_RETURN_IF_ERROR(AddSession(std::move(pair.server)));
  return std::move(pair.client);
}

Status StreamServer::ListenTcp(uint16_t port) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return Status::FailedPrecondition("server is shut down");
    }
    if (listener_ != nullptr) {
      return Status::AlreadyExists("already listening on port " +
                                   std::to_string(listener_->port()));
    }
  }
  PULSE_ASSIGN_OR_RETURN(std::unique_ptr<TcpListener> listener,
                         TcpListener::Listen(port));
  {
    std::lock_guard<std::mutex> lock(mu_);
    listener_ = std::move(listener);
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

uint16_t StreamServer::tcp_port() const {
  std::lock_guard<std::mutex> lock(mu_);
  return listener_ == nullptr ? 0 : listener_->port();
}

void StreamServer::AcceptLoop() {
  for (;;) {
    Result<std::unique_ptr<Transport>> conn = listener_->Accept();
    if (!conn.ok()) return;  // listener closed (shutdown) or fatal
    // A rejected session (e.g. shutdown race) just drops the
    // connection; the client sees EOF.
    (void)AddSession(std::move(*conn));
  }
}

void StreamServer::ReapLocked() {
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if ((*it)->finished()) {
      (*it)->Join();
      it = sessions_.erase(it);
      c_closed_->Increment();
    } else {
      ++it;
    }
  }
}

void StreamServer::UpdateSessionMetricsLocked() {
  g_active_->Set(static_cast<double>(sessions_.size()));
}

void StreamServer::Drain() {
  std::vector<Session*> draining;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    if (listener_ != nullptr) listener_->Close();
    for (const auto& session : sessions_) draining.push_back(session.get());
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  for (Session* session : draining) session->BeginDrain();
  for (Session* session : draining) session->Join();
  // Every session has flushed its runtimes and delivered its outputs:
  // seal the store so recovery knows this was an orderly stop.
  if (options_.store != nullptr) {
    Status status = options_.store->WriteCheckpoint(/*finished=*/true);
    if (!status.ok()) {
      metrics_->GetCounter("serve/checkpoint/failed")->Increment();
      PULSE_LOG(Warning) << "drain checkpoint failed: " << status.ToString();
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  ReapLocked();
  UpdateSessionMetricsLocked();
}

void StreamServer::Shutdown() {
  std::vector<Session*> aborting;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    if (listener_ != nullptr) listener_->Close();
    for (const auto& session : sessions_) aborting.push_back(session.get());
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  for (Session* session : aborting) session->Abort();
  for (Session* session : aborting) session->Join();
  std::lock_guard<std::mutex> lock(mu_);
  ReapLocked();
  UpdateSessionMetricsLocked();
}

size_t StreamServer::active_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t active = 0;
  for (const auto& session : sessions_) {
    if (!session->finished()) ++active;
  }
  return active;
}

uint64_t StreamServer::sessions_opened() const {
  return c_opened_->value();
}

}  // namespace serve
}  // namespace pulse
