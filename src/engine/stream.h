#ifndef PULSE_ENGINE_STREAM_H_
#define PULSE_ENGINE_STREAM_H_

#include <deque>
#include <memory>
#include <string>

#include "engine/schema.h"
#include "engine/tuple.h"
#include "util/status.h"

namespace pulse {

/// A named, schema-typed tuple queue. Streams connect external sources to
/// query plans and model the engine's admission queues: when a bounded
/// stream overflows, Push fails with Capacity — the "system is no longer
/// stable, queues grow" regime the paper reports at saturation
/// (Section V-C).
class Stream {
 public:
  /// capacity == 0 means unbounded.
  Stream(std::string name, std::shared_ptr<const Schema> schema,
         size_t capacity = 0);

  const std::string& name() const { return name_; }
  const std::shared_ptr<const Schema>& schema() const { return schema_; }

  Status Push(Tuple tuple);
  bool Pop(Tuple* tuple);

  size_t size() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }

  /// Largest queue length observed (congestion indicator).
  size_t high_watermark() const { return high_watermark_; }

 private:
  std::string name_;
  std::shared_ptr<const Schema> schema_;
  size_t capacity_;
  size_t high_watermark_ = 0;
  std::deque<Tuple> queue_;
};

}  // namespace pulse

#endif  // PULSE_ENGINE_STREAM_H_
