#include "core/runtime.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "core/operators/aggregate.h"
#include "core/operators/distinct.h"
#include "core/operators/epoch.h"
#include "core/operators/filter.h"
#include "core/operators/join.h"
#include "core/operators/map.h"
#include "math/linear_system.h"
#include "model/fitting.h"
#include "obs/span.h"
#include "util/logging.h"

namespace pulse {
namespace {

// Attribute names referenced by operators that consume `stream` directly:
// only these need validation — an unused modeled attribute cannot change
// any query result. Returns an empty set when nothing could be resolved
// (callers then validate everything, the safe default).
std::set<std::string> CollectStreamAttributes(const QuerySpec& spec,
                                              const std::string& stream) {
  std::set<std::string> used;
  for (const QuerySpec::Node& node : spec.nodes()) {
    bool consumes = false;
    for (const QuerySpec::Input& in : node.inputs) {
      if (in.is_stream && in.stream == stream) consumes = true;
    }
    if (!consumes) continue;
    switch (node.kind) {
      case QuerySpec::OpKind::kFilter: {
        std::vector<AttrRef> refs;
        node.filter->predicate.CollectAttributes(&refs);
        for (const AttrRef& r : refs) used.insert(r.name);
        break;
      }
      case QuerySpec::OpKind::kJoin: {
        std::vector<AttrRef> refs;
        node.join->predicate.CollectAttributes(&refs);
        for (const AttrRef& r : refs) used.insert(r.name);
        break;
      }
      case QuerySpec::OpKind::kAggregate:
        used.insert(node.aggregate->attribute);
        break;
      case QuerySpec::OpKind::kEpoch:
      case QuerySpec::OpKind::kDistinct:
        // Time-only operators: they read timestamps, not attributes.
        break;
      case QuerySpec::OpKind::kMap:
        for (const ComputedAttr& ca : node.map->outputs) {
          if (ca.kind == ComputedAttr::Kind::kDifference) {
            used.insert(ca.a.name);
            used.insert(ca.b.name);
          } else {
            used.insert(ca.x1.name);
            used.insert(ca.y1.name);
            used.insert(ca.x2.name);
            used.insert(ca.y2.name);
          }
        }
        break;
    }
  }
  return used;
}

}  // namespace
}  // namespace pulse

namespace pulse {

Result<PredictiveRuntime> PredictiveRuntime::Make(const QuerySpec& spec,
                                                  Options options) {
  PredictiveRuntime rt;
  rt.spec_ = spec;
  rt.options_ = std::move(options);
  if (rt.options_.split == nullptr) {
    rt.options_.split = std::make_shared<EquiSplit>();
  }
  PULSE_ASSIGN_OR_RETURN(TransformedPlan transformed, BuildPulsePlan(spec));
  PULSE_ASSIGN_OR_RETURN(PulseExecutor exec,
                         PulseExecutor::Make(std::move(transformed.plan)));
  rt.executor_ = std::make_unique<PulseExecutor>(std::move(exec));
  if (rt.options_.parallel.num_threads > 1) {
    rt.pool_ = std::make_unique<ThreadPool>(rt.options_.parallel.num_threads);
    rt.executor_->set_thread_pool(rt.pool_.get());
  }
  if (rt.options_.solve_cache.has_value()) {
    rt.solve_cache_ = std::make_unique<SolveCache>(*rt.options_.solve_cache);
    rt.executor_->set_solve_cache(rt.solve_cache_.get());
  }
  if (rt.options_.metrics != nullptr) {
    rt.metrics_ = rt.options_.metrics;
  } else {
    rt.owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    rt.metrics_ = rt.owned_metrics_.get();
  }
  rt.executor_->set_metrics_registry(rt.metrics_);
  rt.BindRuntimeCounters();
  rt.inverter_ = std::make_unique<QueryInverter>(&rt.executor_->plan(),
                                                 rt.options_.split);
  rt.bound_registry_ = std::make_unique<BoundRegistry>();
  rt.validator_ =
      std::make_unique<AlternatingValidator>(rt.bound_registry_.get());
  for (const auto& [name, stream] : spec.streams()) {
    PULSE_ASSIGN_OR_RETURN(SegmentModelBuilder builder,
                           SegmentModelBuilder::Make(stream));
    StreamState state{std::move(builder), {}, {}};
    // Pre-resolve the clauses worth validating: modeled attributes the
    // query references that are also observable on the tuple.
    const std::set<std::string> used = CollectStreamAttributes(spec, name);
    // Clause pointers target the builder's own StreamSpec copy; the
    // vector buffer survives the moves below.
    for (const ModelClause& clause : state.builder.spec().models) {
      if (!used.empty() && used.count(clause.modeled_attribute) == 0) {
        continue;
      }
      Result<size_t> idx =
          stream.schema->IndexOf(clause.modeled_attribute);
      if (!idx.ok()) continue;  // not observable: cannot validate
      state.clauses.push_back(ValidationClause{&clause, *idx});
    }
    rt.streams_.emplace(name, std::move(state));
  }
  if (rt.options_.sample_rate > 0.0) {
    rt.sampler_.emplace(SamplerOptions{rt.options_.sample_rate, 0.0});
  }
  return rt;
}

void PredictiveRuntime::BindRuntimeCounters() {
  c_tuples_in_ = metrics_->GetCounter("runtime/tuples_in");
  c_tuples_validated_ = metrics_->GetCounter("runtime/tuples_validated");
  c_violations_ = metrics_->GetCounter("runtime/violations");
  c_segments_pushed_ = metrics_->GetCounter("runtime/segments_pushed");
  c_output_segments_ = metrics_->GetCounter("runtime/output_segments");
  c_output_tuples_ = metrics_->GetCounter("runtime/output_tuples");
  c_inversions_ = metrics_->GetCounter("runtime/inversions");
  c_tasks_spawned_ = metrics_->GetCounter("runtime/tasks_spawned");
  c_parallel_cpu_ns_ = metrics_->GetCounter("runtime/parallel_solve_cpu_ns");
  c_parallel_wall_ns_ =
      metrics_->GetCounter("runtime/parallel_solve_wall_ns");
  c_cache_hits_ = metrics_->GetCounter("solve_cache/hits");
  c_cache_misses_ = metrics_->GetCounter("solve_cache/misses");
  c_cache_lookups_ = metrics_->GetCounter("solve_cache/lookups");
  c_cache_uncacheable_ = metrics_->GetCounter("solve_cache/uncacheable");
}

void PredictiveRuntime::SyncParallelStats() {
  if (pool_ != nullptr) {
    c_tasks_spawned_->Store(pool_->tasks_spawned());
    c_parallel_cpu_ns_->Store(pool_->parallel_cpu_ns());
    c_parallel_wall_ns_->Store(pool_->parallel_wall_ns());
  }
  if (solve_cache_ != nullptr) {
    c_cache_hits_->Store(solve_cache_->hits());
    c_cache_misses_->Store(solve_cache_->misses());
    c_cache_lookups_->Store(solve_cache_->lookups());
    c_cache_uncacheable_->Store(solve_cache_->uncacheable());
  }
}

RuntimeStats PredictiveRuntime::stats() const {
  RuntimeStats s;
  s.tuples_in = c_tuples_in_->value();
  s.tuples_validated = c_tuples_validated_->value();
  s.violations = c_violations_->value();
  s.segments_pushed = c_segments_pushed_->value();
  s.output_segments = c_output_segments_->value();
  s.output_tuples = c_output_tuples_->value();
  s.inversions = c_inversions_->value();
  if (pool_ != nullptr) {
    s.tasks_spawned = pool_->tasks_spawned();
    s.parallel_solve_cpu_ns = pool_->parallel_cpu_ns();
    s.parallel_solve_wall_ns = pool_->parallel_wall_ns();
  }
  if (solve_cache_ != nullptr) {
    s.solve_cache_hits = solve_cache_->hits();
    s.solve_cache_misses = solve_cache_->misses();
    s.solve_cache_lookups = solve_cache_->lookups();
    s.solve_cache_uncacheable = solve_cache_->uncacheable();
  }
  return s;
}

namespace {

// Slack contributed by the consumer behind one plan edge: the smallest
// value deviation of `segment` that could change some selective gate's
// answer. Walks THROUGH operators that reshape segments without gating
// on values — epoch and distinct pass attributes unchanged, map derives
// new attributes by a pure transform — so a detection chain like
// stream -> epoch -> filter -> distinct yields the filter's threshold
// distance, not infinity. An infinite slack here would let a stale
// baseline model "explain" an attack for the rest of its horizon
// (tuples deviating by any amount are skipped), which is exactly the
// failure the telemetry workload exposed.
double EdgeSlack(const PulsePlan& plan, const PulsePlan::Edge& e,
                 const Segment& segment, int depth);

double DownstreamSlack(const PulsePlan& plan, PulsePlan::NodeId id,
                       const Segment& segment, int depth) {
  double slack = std::numeric_limits<double>::infinity();
  for (const PulsePlan::Edge& e : plan.downstream(id)) {
    slack = std::min(slack, EdgeSlack(plan, e, segment, depth));
  }
  return slack;
}

double EdgeSlack(const PulsePlan& plan, const PulsePlan::Edge& e,
                 const Segment& segment, int depth) {
  if (depth > 8) return 0.0;  // cycle guard: force revalidation
  PulseOperator* op = plan.node(e.to);
  if (auto* filter = dynamic_cast<PulseFilter*>(op)) {
    Result<double> s = filter->ComputeSlack(segment);
    return s.ok() ? *s : std::numeric_limits<double>::infinity();
  }
  if (auto* join = dynamic_cast<PulseJoin*>(op)) {
    Result<double> s = join->ComputeSlack(e.port, segment);
    return s.ok() ? *s : std::numeric_limits<double>::infinity();
  }
  if (auto* agg = dynamic_cast<PulseMinMaxAggregate*>(op)) {
    Result<double> s = agg->ComputeSlack(segment);
    return s.ok() ? *s : std::numeric_limits<double>::infinity();
  }
  if (dynamic_cast<PulseEpoch*>(op) != nullptr ||
      dynamic_cast<PulseDistinct*>(op) != nullptr) {
    // Pure time-reshaping: attribute polynomials pass through unchanged,
    // so the gate (if any) lives further downstream.
    return DownstreamSlack(plan, e.to, segment, depth + 1);
  }
  if (auto* map = dynamic_cast<PulseMap*>(op)) {
    Result<Segment> mapped = map->Apply(segment);
    if (!mapped.ok()) return 0.0;
    // Deviations of d in each input move a difference output by at most
    // 2d, so half the downstream slack is safe for differences.
    // distance2 has value-dependent gradients, so the same halving is
    // heuristic there — an over-large slack only postpones revalidation
    // within the segment horizon, the same precision trade slack mode
    // already makes (paper Section IV).
    return 0.5 * DownstreamSlack(plan, e.to, *mapped, depth + 1);
  }
  // Operators without a selective gate (sum/avg aggregates and their
  // group-bys) produce no "near miss" notion: a null result there
  // only means the window has not warmed up. Leave the slack infinite
  // so the model keeps explaining tuples; accuracy margins take over
  // once the query produces results and bounds are inverted, and the
  // segment horizon bounds model staleness regardless.
  return std::numeric_limits<double>::infinity();
}

}  // namespace

double PredictiveRuntime::SourceSlack(const std::string& stream,
                                      const Segment& segment) {
  double slack = std::numeric_limits<double>::infinity();
  const PulsePlan& plan = executor_->plan();
  for (const PulsePlan::Edge& e : plan.source_bindings(stream)) {
    slack = std::min(slack, EdgeSlack(plan, e, segment, 0));
  }
  return slack;
}

Status PredictiveRuntime::HandleOutputs(std::vector<Segment> outputs) {
  const PulsePlan& plan = executor_->plan();
  const std::vector<PulsePlan::NodeId> sinks = plan.SinkNodes();
  for (const Segment& out : outputs) {
    c_output_segments_->Increment();
    // Invert each user bound through whichever sink produced this
    // segment (identified by lineage ownership).
    for (const BoundSpec& spec : options_.bounds) {
      for (PulsePlan::NodeId sink : sinks) {
        if (plan.node(sink)->lineage().Lookup(out.id) == nullptr) {
          continue;
        }
        Status st = inverter_->InvertForOutput(sink, out, spec,
                                               bound_registry_.get());
        if (st.ok()) c_inversions_->Increment();
        break;
      }
    }
    if (sampler_.has_value()) {
      std::vector<std::string> attrs;
      for (const auto& [name, _] : out.attributes) attrs.push_back(name);
      std::vector<Tuple> sampled = sampler_->Sample(out, attrs);
      c_output_tuples_->Add(sampled.size());
      if (options_.collect_outputs) {
        output_tuples_.insert(output_tuples_.end(), sampled.begin(),
                              sampled.end());
      }
    }
  }
  if (options_.collect_outputs) {
    output_segments_.insert(output_segments_.end(),
                            std::make_move_iterator(outputs.begin()),
                            std::make_move_iterator(outputs.end()));
  }
  return Status::OK();
}

void PredictiveRuntime::BindModel(const StreamState& state,
                                  ActiveModel* model) {
  model->polys.clear();
  model->polys.reserve(state.clauses.size());
  for (const ValidationClause& vc : state.clauses) {
    auto it = model->segment.attributes.find(vc.clause->modeled_attribute);
    model->polys.push_back(it == model->segment.attributes.end()
                               ? nullptr
                               : &it->second);
  }
}

void PredictiveRuntime::RefreshMargins(const StreamState& state, Key key,
                                       ActiveModel* model) const {
  model->margins.resize(state.clauses.size());
  for (size_t i = 0; i < state.clauses.size(); ++i) {
    model->margins[i] = bound_registry_->Margin(
        key, state.clauses[i].clause->modeled_attribute);
  }
  model->margin_version = bound_registry_->version();
}

PredictiveRuntime::StreamState* PredictiveRuntime::FindStream(
    const std::string& name) {
  if (memo_state_ != nullptr && *memo_name_ == name) return memo_state_;
  auto it = streams_.find(name);
  if (it == streams_.end()) return nullptr;
  memo_name_ = &it->first;
  memo_state_ = &it->second;
  return memo_state_;
}

Status PredictiveRuntime::ProcessTuple(const std::string& stream,
                                       const Tuple& tuple) {
  c_tuples_in_->Increment();
  StreamState* state = FindStream(stream);
  if (state == nullptr) {
    return Status::NotFound("stream '" + stream + "' not declared");
  }
  const SegmentModelBuilder& builder = state->builder;
  const Key key = builder.KeyOf(tuple);

  // Fast path: the tuple is explained by the active predictive model.
  // This is what makes Pulse cheap — an explained tuple costs one map hop
  // plus a polynomial evaluation and comparison per validated attribute,
  // never touching the solver (paper Section IV).
  auto cit = state->current.find(key);
  if (cit != state->current.end() &&
      cit->second.segment.range.Contains(tuple.timestamp)) {
    ActiveModel& model = cit->second;
    if (model.margin_version != bound_registry_->version()) {
      RefreshMargins(*state, key, &model);
    }
    bool explained = true;
    for (size_t i = 0; i < state->clauses.size(); ++i) {
      const Polynomial* poly = model.polys[i];
      if (poly == nullptr) continue;
      const double actual =
          tuple.at(state->clauses[i].observed_index).as_double();
      const double deviation =
          std::abs(actual - poly->Evaluate(tuple.timestamp));
      // Accuracy mode checks the inverted margin; slack mode ignores
      // anything below the recorded slack (Section IV alternation).
      const double allowance = model.mode == ValidationMode::kAccuracy
                                   ? model.margins[i]
                                   : model.slack;
      if (deviation > allowance) {
        explained = false;
        break;
      }
    }
    if (explained) {
      c_tuples_validated_->Increment();
      return Status::OK();
    }
    c_violations_->Increment();
  }

  // Rebuild the model from this tuple and reprocess.
  PULSE_ASSIGN_OR_RETURN(Segment segment, builder.BuildSegment(tuple));
  ActiveModel& model = state->current[key];
  // Backfill horizon gaps: when the previous segment expired shortly
  // before this tuple, extend the new model backward to its end so
  // downstream window aggregates see contiguous coverage (the new model
  // extrapolates over the gap the validated tuples already covered).
  const double prev_end = model.segment.range.hi;
  if (!model.segment.range.IsEmpty() && prev_end <= tuple.timestamp &&
      tuple.timestamp - prev_end <
          state->builder.spec().segment_horizon) {
    segment.range.lo = prev_end;
  }
  model.segment = segment;
  BindModel(*state, &model);
  RefreshMargins(*state, key, &model);
  {
    // Scope spans fired inside the push (PULSE_SPAN sites in the
    // executor and operators) to this runtime's registry.
    obs::ScopedMetricsRegistry scoped(metrics_);
    PULSE_SPAN("runtime/push_segment");
    PULSE_RETURN_IF_ERROR(
        executor_->PushSegment(stream, std::move(segment)));
  }
  c_segments_pushed_->Increment();
  SyncParallelStats();
  std::vector<Segment> outputs = executor_->TakeOutput();
  const bool produced = !outputs.empty();
  PULSE_RETURN_IF_ERROR(HandleOutputs(std::move(outputs)));
  if (produced) {
    model.mode = ValidationMode::kAccuracy;
    model.slack = 0.0;
    validator_->ObserveResult(key, true, 0.0);
  } else {
    // Record slack so subsequent tuples take the cheaper slack test
    // (paper Section IV).
    const double slack = SourceSlack(stream, model.segment);
    model.mode = ValidationMode::kSlack;
    model.slack = slack;
    validator_->ObserveResult(key, false, slack);
  }
  return Status::OK();
}

Status PredictiveRuntime::ProcessTuples(const std::string& stream,
                                        const Tuple* tuples, size_t n) {
  // The per-tuple stream lookup is already memoized across consecutive
  // same-stream calls, so the loop form is the batch form; the batch
  // entry point exists for call-site symmetry with HistoricalRuntime.
  for (size_t i = 0; i < n; ++i) {
    PULSE_RETURN_IF_ERROR(ProcessTuple(stream, tuples[i]));
  }
  return Status::OK();
}

Status PredictiveRuntime::Finish() {
  {
    obs::ScopedMetricsRegistry scoped(metrics_);
    PULSE_RETURN_IF_ERROR(executor_->Finish());
  }
  SyncParallelStats();
  return HandleOutputs(executor_->TakeOutput());
}

std::vector<Segment> PredictiveRuntime::TakeOutputSegments() {
  std::vector<Segment> out = std::move(output_segments_);
  output_segments_.clear();
  return out;
}

std::vector<Tuple> PredictiveRuntime::TakeOutputTuples() {
  std::vector<Tuple> out = std::move(output_tuples_);
  output_tuples_.clear();
  return out;
}

void MultiAttributeSegmenter::Moments::Reset(size_t d) {
  *this = Moments();
  degree = std::min(d, kMaxIncrementalDegree);
}

void MultiAttributeSegmenter::Moments::AddPoint(double tau, double v) {
  double p = 1.0;
  for (size_t k = 0; k <= 2 * degree; ++k) {
    s[k] += p;
    if (k <= degree) b[k] += v * p;
    p *= tau;
  }
  vv += v * v;
}

size_t MultiAttributeSegmenter::Moments::Fit(size_t count,
                                             double* coeffs) const {
  // Clamp the fitted degree while the piece is short, then solve the
  // (d+1)x(d+1) normal equations by in-place Gaussian elimination on a
  // stack buffer.
  const size_t d = std::min(degree, count - 1);
  const size_t n = d + 1;
  double a[(kMaxIncrementalDegree + 1) * (kMaxIncrementalDegree + 2)];
  for (size_t j = 0; j < n; ++j) {
    for (size_t k = 0; k < n; ++k) a[j * (n + 1) + k] = s[j + k];
    a[j * (n + 1) + n] = b[j];
  }
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < n; ++r) {
      if (std::abs(a[r * (n + 1) + col]) >
          std::abs(a[pivot * (n + 1) + col])) {
        pivot = r;
      }
    }
    if (std::abs(a[pivot * (n + 1) + col]) < 1e-12) return 0;
    if (pivot != col) {
      for (size_t c = 0; c <= n; ++c) {
        std::swap(a[col * (n + 1) + c], a[pivot * (n + 1) + c]);
      }
    }
    const double inv = 1.0 / a[col * (n + 1) + col];
    for (size_t r = col + 1; r < n; ++r) {
      const double factor = a[r * (n + 1) + col] * inv;
      for (size_t c = col; c <= n; ++c) {
        a[r * (n + 1) + c] -= factor * a[col * (n + 1) + c];
      }
    }
  }
  for (size_t r = n; r-- > 0;) {
    double acc = a[r * (n + 1) + n];
    for (size_t c = r + 1; c < n; ++c) acc -= a[r * (n + 1) + c] * coeffs[c];
    coeffs[r] = acc / a[r * (n + 1) + r];
  }
  return n;
}

double MultiAttributeSegmenter::Moments::Rms(const double* coeffs, size_t n,
                                             size_t count) const {
  // RSS = sum v^2 - x^T b for the least-squares solution.
  double rss = vv;
  for (size_t k = 0; k < n; ++k) rss -= coeffs[k] * b[k];
  if (rss < 0.0) rss = 0.0;  // roundoff
  return std::sqrt(rss / static_cast<double>(count));
}

MultiAttributeSegmenter::MultiAttributeSegmenter(StreamSpec spec,
                                                 SegmentationOptions options)
    : spec_(std::move(spec)), options_(options) {
  Result<size_t> key_idx = spec_.schema->IndexOf(spec_.key_field);
  PULSE_CHECK(key_idx.ok());
  key_index_ = *key_idx;
  for (const ModelClause& clause : spec_.models) {
    Result<size_t> idx = spec_.schema->IndexOf(clause.modeled_attribute);
    PULSE_CHECK(idx.ok());
    attr_indices_.push_back(*idx);
  }
}

void MultiAttributeSegmenter::ResetWith(PerKey* state,
                                        const Tuple& tuple) const {
  state->active = true;
  state->t0 = tuple.timestamp;
  state->last_t = tuple.timestamp;
  state->count = 1;
  state->attrs.resize(attr_indices_.size());
  for (size_t m = 0; m < attr_indices_.size(); ++m) {
    state->attrs[m].Reset(options_.degree);
    state->attrs[m].AddPoint(0.0, tuple.at(attr_indices_[m]).as_double());
  }
}

Result<std::optional<Segment>> MultiAttributeSegmenter::CloseSegment(
    Key key, const PerKey& state) const {
  if (!state.active || state.count == 0) {
    return std::optional<Segment>(std::nullopt);
  }
  Segment seg;
  seg.id = NextSegmentId();
  seg.key = key;
  const double lo = state.t0;
  double hi = state.last_t +
              (options_.extend_to_next ? state.last_gap : 0.0);
  if (hi <= lo) hi = lo + 1e-9;
  seg.range = Interval::ClosedOpen(lo, hi);
  for (size_t m = 0; m < attr_indices_.size(); ++m) {
    const Moments& mm = state.attrs[m];
    double buf[kMaxIncrementalDegree + 1];
    size_t n;
    if (mm.good_n > 0) {
      // The cached fit excludes the breaking point.
      std::copy(mm.good, mm.good + mm.good_n, buf);
      n = mm.good_n;
    } else {
      n = mm.Fit(state.count, buf);
      if (n == 0) {
        // Degenerate geometry: fall back to the running mean.
        buf[0] = mm.b[0] / static_cast<double>(state.count);
        n = 1;
      }
    }
    // Local-time fit -> absolute-time model (straight from the stack
    // buffer into inline polynomial storage).
    const Polynomial local{buf, n};
    seg.set_attribute(spec_.models[m].modeled_attribute,
                      local.Shift(-state.t0));
  }
  return std::optional<Segment>(std::move(seg));
}

Result<std::optional<Segment>> MultiAttributeSegmenter::Add(
    const Tuple& tuple) {
  const Key key = tuple.at(key_index_).as_int64();
  PerKey& state = keys_[key];
  if (!state.active) {
    ResetWith(&state, tuple);
    return std::optional<Segment>(std::nullopt);
  }
  state.last_gap = std::max(0.0, tuple.timestamp - state.last_t);

  // Include the point, refit each attribute incrementally, and test the
  // RMS bound. On acceptance the fit is cached; on a break the piece is
  // closed from the cached fit (which excludes the breaking point), so
  // there is neither a trial copy nor a rollback refit on the hot path.
  const double tau = tuple.timestamp - state.t0;
  const size_t new_count = state.count + 1;
  bool breaks = options_.max_points_per_segment > 0 &&
                new_count > options_.max_points_per_segment;
  if (!breaks) {
    for (size_t m = 0; m < attr_indices_.size(); ++m) {
      state.attrs[m].AddPoint(tau, tuple.at(attr_indices_[m]).as_double());
    }
    for (size_t m = 0; m < attr_indices_.size() && !breaks; ++m) {
      Moments& mm = state.attrs[m];
      double buf[kMaxIncrementalDegree + 1];
      const size_t n = mm.Fit(new_count, buf);
      const bool warmup = new_count <= options_.degree + 1;
      if (n == 0 ||
          (!warmup && mm.Rms(buf, n, new_count) > options_.max_error)) {
        breaks = true;
        break;
      }
      std::copy(buf, buf + n, mm.good);
      mm.good_n = n;
    }
  }
  if (!breaks) {
    state.count = new_count;
    state.last_t = tuple.timestamp;
    return std::optional<Segment>(std::nullopt);
  }
  // The newest tuple broke the piece: close everything before it (from
  // the cached pre-break fits) and start the next piece from the
  // breaking tuple.
  PULSE_ASSIGN_OR_RETURN(std::optional<Segment> closed,
                         CloseSegment(key, state));
  ResetWith(&state, tuple);
  return closed;
}

Result<std::vector<Segment>> MultiAttributeSegmenter::Flush() {
  std::vector<Segment> out;
  for (auto& [key, state] : keys_) {
    PULSE_ASSIGN_OR_RETURN(std::optional<Segment> closed,
                           CloseSegment(key, state));
    if (closed.has_value()) out.push_back(std::move(*closed));
    state.active = false;
  }
  keys_.clear();
  return out;
}

Result<HistoricalRuntime> HistoricalRuntime::Make(const QuerySpec& spec,
                                                  Options options) {
  HistoricalRuntime rt;
  rt.spec_ = spec;
  rt.options_ = std::move(options);
  PULSE_ASSIGN_OR_RETURN(TransformedPlan transformed, BuildPulsePlan(spec));
  PULSE_ASSIGN_OR_RETURN(PulseExecutor exec,
                         PulseExecutor::Make(std::move(transformed.plan)));
  rt.executor_ = std::make_unique<PulseExecutor>(std::move(exec));
  rt.executor_->set_discard_output(!rt.options_.collect_outputs);
  if (rt.options_.parallel.num_threads > 1) {
    rt.pool_ = std::make_unique<ThreadPool>(rt.options_.parallel.num_threads);
    rt.executor_->set_thread_pool(rt.pool_.get());
  }
  if (rt.options_.shared_solve_cache != nullptr) {
    rt.cache_ = rt.options_.shared_solve_cache;
    rt.executor_->set_solve_cache(rt.cache_);
  } else if (rt.options_.solve_cache.has_value()) {
    rt.solve_cache_ = std::make_unique<SolveCache>(*rt.options_.solve_cache);
    rt.cache_ = rt.solve_cache_.get();
    rt.executor_->set_solve_cache(rt.cache_);
  }
  if (rt.options_.metrics != nullptr) {
    rt.metrics_ = rt.options_.metrics;
  } else {
    rt.owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    rt.metrics_ = rt.owned_metrics_.get();
  }
  rt.executor_->set_metrics_registry(rt.metrics_);
  rt.BindRuntimeCounters();
  for (const auto& [name, stream] : spec.streams()) {
    rt.segmenters_.emplace(name,
                           std::make_unique<MultiAttributeSegmenter>(
                               stream, rt.options_.segmentation));
  }
  return rt;
}

MultiAttributeSegmenter* HistoricalRuntime::FindSegmenter(
    const std::string& name) {
  if (memo_segmenter_ != nullptr && *memo_segmenter_name_ == name) {
    return memo_segmenter_;
  }
  auto it = segmenters_.find(name);
  if (it == segmenters_.end()) return nullptr;
  memo_segmenter_name_ = &it->first;
  memo_segmenter_ = it->second.get();
  return memo_segmenter_;
}

Status HistoricalRuntime::ProcessTuple(const std::string& stream,
                                       const Tuple& tuple) {
  c_tuples_in_->Increment();
  MultiAttributeSegmenter* segmenter = FindSegmenter(stream);
  if (segmenter == nullptr) {
    return Status::NotFound("stream '" + stream + "' not declared");
  }
  PULSE_ASSIGN_OR_RETURN(std::optional<Segment> seg, segmenter->Add(tuple));
  if (seg.has_value()) {
    PULSE_RETURN_IF_ERROR(ProcessSegment(stream, std::move(*seg)));
  }
  return Status::OK();
}

Status HistoricalRuntime::ProcessTuples(const std::string& stream,
                                        const Tuple* tuples, size_t n) {
  if (n == 0) return Status::OK();
  MultiAttributeSegmenter* segmenter = FindSegmenter(stream);
  if (segmenter == nullptr) {
    return Status::NotFound("stream '" + stream + "' not declared");
  }
  c_tuples_in_->Add(n);
  for (size_t i = 0; i < n; ++i) {
    PULSE_ASSIGN_OR_RETURN(std::optional<Segment> seg,
                           segmenter->Add(tuples[i]));
    if (seg.has_value()) {
      PULSE_RETURN_IF_ERROR(ProcessSegment(stream, std::move(*seg)));
    }
  }
  return Status::OK();
}

void HistoricalRuntime::BindRuntimeCounters() {
  c_tuples_in_ = metrics_->GetCounter("runtime/tuples_in");
  c_segments_pushed_ = metrics_->GetCounter("runtime/segments_pushed");
  c_output_segments_ = metrics_->GetCounter("runtime/output_segments");
  c_tasks_spawned_ = metrics_->GetCounter("runtime/tasks_spawned");
  c_parallel_cpu_ns_ = metrics_->GetCounter("runtime/parallel_solve_cpu_ns");
  c_parallel_wall_ns_ =
      metrics_->GetCounter("runtime/parallel_solve_wall_ns");
  c_cache_hits_ = metrics_->GetCounter("solve_cache/hits");
  c_cache_misses_ = metrics_->GetCounter("solve_cache/misses");
  c_cache_lookups_ = metrics_->GetCounter("solve_cache/lookups");
  c_cache_uncacheable_ = metrics_->GetCounter("solve_cache/uncacheable");
}

void HistoricalRuntime::SyncParallelStats() {
  if (pool_ != nullptr) {
    c_tasks_spawned_->Store(pool_->tasks_spawned());
    c_parallel_cpu_ns_->Store(pool_->parallel_cpu_ns());
    c_parallel_wall_ns_->Store(pool_->parallel_wall_ns());
  }
  if (cache_ != nullptr) {
    c_cache_hits_->Store(cache_->hits());
    c_cache_misses_->Store(cache_->misses());
    c_cache_lookups_->Store(cache_->lookups());
    c_cache_uncacheable_->Store(cache_->uncacheable());
  }
}

RuntimeStats HistoricalRuntime::stats() const {
  RuntimeStats s;
  s.tuples_in = c_tuples_in_->value();
  s.segments_pushed = c_segments_pushed_->value();
  s.output_segments = c_output_segments_->value();
  if (pool_ != nullptr) {
    s.tasks_spawned = pool_->tasks_spawned();
    s.parallel_solve_cpu_ns = pool_->parallel_cpu_ns();
    s.parallel_solve_wall_ns = pool_->parallel_wall_ns();
  }
  if (cache_ != nullptr) {
    s.solve_cache_hits = cache_->hits();
    s.solve_cache_misses = cache_->misses();
    s.solve_cache_lookups = cache_->lookups();
    s.solve_cache_uncacheable = cache_->uncacheable();
  }
  return s;
}

Status HistoricalRuntime::ProcessSegment(const std::string& stream,
                                         Segment segment) {
  const size_t before = executor_->total_output();
  const bool observing = options_.output_observer != nullptr &&
                         options_.collect_outputs && !finishing_;
  const size_t observed_before = observing ? executor_->output().size() : 0;
  {
    // Scope spans fired inside the push (PULSE_SPAN sites in the
    // executor and operators) to this runtime's registry.
    obs::ScopedMetricsRegistry scoped(metrics_);
    PULSE_SPAN("runtime/push_segment");
    PULSE_RETURN_IF_ERROR(
        executor_->PushSegment(stream, std::move(segment)));
  }
  c_segments_pushed_->Increment();
  c_output_segments_->Add(executor_->total_output() - before);
  if (observing) {
    const std::vector<Segment>& out = executor_->output();
    for (size_t i = observed_before; i < out.size(); ++i) {
      options_.output_observer(out[i]);
    }
  }
  SyncParallelStats();
  return Status::OK();
}

Status HistoricalRuntime::Finish() {
  const size_t finish_tail = executor_->output().size();
  // Flush-phase outputs land inside the sorted finish tail below, so
  // the observer must not see them yet (its contract is
  // TakeOutputSegments order).
  finishing_ = true;
  for (auto& [stream, segmenter] : segmenters_) {
    PULSE_ASSIGN_OR_RETURN(std::vector<Segment> segs, segmenter->Flush());
    for (Segment& s : segs) {
      PULSE_RETURN_IF_ERROR(ProcessSegment(stream, std::move(s)));
    }
  }
  {
    obs::ScopedMetricsRegistry scoped(metrics_);
    PULSE_RETURN_IF_ERROR(executor_->Finish());
  }
  // Canonical finish order: the flush above interleaves keys in
  // segmenter hash order, which is an implementation accident. Sorting
  // the finish-phase outputs stably by key makes the tail order a
  // *contract* — and because every key's outputs keep their relative
  // order, a key-partitioned run (docs/SHARDING.md) can reproduce it
  // exactly by concatenating per-shard finish outputs and applying the
  // same stable sort.
  std::vector<Segment>& out = executor_->output();
  std::stable_sort(
      out.begin() + static_cast<std::ptrdiff_t>(finish_tail), out.end(),
      [](const Segment& a, const Segment& b) { return a.key < b.key; });
  finishing_ = false;
  if (options_.output_observer != nullptr && options_.collect_outputs) {
    for (size_t i = finish_tail; i < out.size(); ++i) {
      options_.output_observer(out[i]);
    }
  }
  SyncParallelStats();
  return Status::OK();
}

std::vector<Segment> HistoricalRuntime::TakeOutputSegments() {
  return executor_->TakeOutput();
}

}  // namespace pulse
