#ifndef PULSE_ENGINE_TUPLE_H_
#define PULSE_ENGINE_TUPLE_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/schema.h"
#include "engine/value.h"

namespace pulse {

/// A discrete stream tuple. `timestamp` is the paper's reference temporal
/// attribute: monotonically non-decreasing per stream and globally
/// synchronized across sources (Section II-B). Field layout is dictated by
/// the stream's Schema.
struct Tuple {
  double timestamp = 0.0;
  std::vector<Value> values;

  Tuple() = default;
  Tuple(double ts, std::vector<Value> vals)
      : timestamp(ts), values(std::move(vals)) {}

  const Value& at(size_t i) const { return values[i]; }
  Value& at(size_t i) { return values[i]; }

  /// Concatenates two tuples (join output); the later timestamp wins.
  static Tuple Concat(const Tuple& left, const Tuple& right);

  std::string ToString() const;
};

}  // namespace pulse

#endif  // PULSE_ENGINE_TUPLE_H_
