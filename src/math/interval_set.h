#ifndef PULSE_MATH_INTERVAL_SET_H_
#define PULSE_MATH_INTERVAL_SET_H_

#include <string>
#include <vector>

namespace pulse {

/// A real interval with independently open/closed endpoints.
///
/// Equation-system solutions need all four flavours: segment validity
/// ranges are half-open [tl, tu) (paper Section II-B), inequality
/// predicates produce open or closed ranges depending on strictness, and
/// equality predicates produce degenerate point intervals [r, r].
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
  bool lo_open = false;
  bool hi_open = false;

  static Interval Closed(double lo, double hi) {
    return {lo, hi, false, false};
  }
  static Interval Open(double lo, double hi) { return {lo, hi, true, true}; }
  static Interval ClosedOpen(double lo, double hi) {
    return {lo, hi, false, true};
  }
  static Interval OpenClosed(double lo, double hi) {
    return {lo, hi, true, false};
  }
  /// The single point {t}.
  static Interval Point(double t) { return {t, t, false, false}; }

  /// Empty if the endpoints cross, or coincide with any open end.
  bool IsEmpty() const {
    if (lo > hi) return true;
    if (lo == hi) return lo_open || hi_open;
    return false;
  }

  /// True for the degenerate single-point interval.
  bool IsPoint() const { return lo == hi && !lo_open && !hi_open; }

  /// Membership test honouring endpoint openness.
  bool Contains(double t) const {
    if (t < lo || t > hi) return false;
    if (t == lo && lo_open) return false;
    if (t == hi && hi_open) return false;
    return true;
  }

  /// hi - lo (zero for points and empty intervals).
  double Length() const { return IsEmpty() ? 0.0 : hi - lo; }

  /// Set intersection; may be empty.
  Interval Intersect(const Interval& other) const;

  /// True when the two intervals share at least one point.
  bool Intersects(const Interval& other) const {
    return !Intersect(other).IsEmpty();
  }

  bool operator==(const Interval& other) const {
    return lo == other.lo && hi == other.hi && lo_open == other.lo_open &&
           hi_open == other.hi_open;
  }

  /// e.g. "[0, 1)", "{3}".
  std::string ToString() const;
};

/// A normalized union of disjoint intervals, kept sorted by lower endpoint.
/// This is the solution domain of a simultaneous equation system: each
/// predicate row contributes an IntervalSet and the system's solution is
/// their intersection (paper Section III-A).
class IntervalSet {
 public:
  /// The empty set.
  IntervalSet() = default;

  /// Singleton set.
  explicit IntervalSet(const Interval& iv) { Add(iv); }

  /// Set from arbitrary (possibly overlapping, unsorted) intervals.
  static IntervalSet FromIntervals(std::vector<Interval> intervals);

  /// The full real line.
  static IntervalSet All();

  /// Inserts an interval, merging as needed.
  void Add(const Interval& iv);

  IntervalSet Union(const IntervalSet& other) const;
  IntervalSet Intersect(const IntervalSet& other) const;

  /// Complement relative to `domain`.
  IntervalSet Complement(const Interval& domain) const;

  /// In-place forms for the solver hot path (no allocation once the
  /// receiver's buffers are warm; see docs/PERFORMANCE.md).

  /// Replaces the contents with *intervals (normalizing). Buffers are
  /// swapped, so the receiver reuses its capacity across solves and the
  /// caller's vector keeps a warm buffer for the next call.
  void Assign(std::vector<Interval>* intervals);

  /// Resets to the single interval `iv` (empty when iv is empty).
  void AssignInterval(const Interval& iv);

  /// this = this ∪ other, in place.
  void UnionWith(const IntervalSet& other);

  /// this = this ∩ other. `scratch` provides the temporary buffer (its
  /// capacity is recycled across calls).
  void IntersectWith(const IntervalSet& other,
                     std::vector<Interval>* scratch);

  /// *out = complement of this relative to `domain`, reusing out's
  /// storage. `out` must not alias this.
  void ComplementInto(const Interval& domain, IntervalSet* out) const;

  void Clear() { intervals_.clear(); }

  /// this \ other.
  IntervalSet Difference(const IntervalSet& other) const;

  bool Contains(double t) const;
  bool IsEmpty() const { return intervals_.empty(); }

  /// Sum of interval lengths (points contribute 0).
  double TotalLength() const;

  /// Smallest lower endpoint; invalid to call on the empty set.
  double Min() const;
  /// Largest upper endpoint; invalid to call on the empty set.
  double Max() const;

  size_t size() const { return intervals_.size(); }
  const std::vector<Interval>& intervals() const { return intervals_; }

  bool operator==(const IntervalSet& other) const {
    return intervals_ == other.intervals_;
  }

  /// e.g. "{[0, 1), {2}, (3, 4]}".
  std::string ToString() const;

 private:
  void Normalize();

  std::vector<Interval> intervals_;  // sorted, disjoint, non-empty
};

}  // namespace pulse

#endif  // PULSE_MATH_INTERVAL_SET_H_
