#include "math/polynomial.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <sstream>

#include "math/roots.h"
#include "util/logging.h"

namespace pulse {

namespace {

// Binomial coefficient C(n, k) as double; n stays small (model degrees).
double Binomial(size_t n, size_t k) {
  double result = 1.0;
  for (size_t i = 0; i < k; ++i) {
    result *= static_cast<double>(n - i);
    result /= static_cast<double>(i + 1);
  }
  return result;
}

// Allocation proxy for the bench harness: one tick per coefficient buffer
// that left the inline storage.
std::atomic<uint64_t> g_heap_allocations{0};

}  // namespace

uint64_t Polynomial::heap_allocations() {
  return g_heap_allocations.load(std::memory_order_relaxed);
}

void Polynomial::Reserve(size_t n, bool preserve) {
  if (n <= capacity_) return;
  size_t cap = capacity_;
  while (cap < n) cap *= 2;
  double* heap = new double[cap];
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (preserve && size_ > 0) {
    std::memcpy(heap, data_, size_ * sizeof(double));
  }
  if (data_ != inline_) delete[] data_;
  data_ = heap;
  capacity_ = cap;
}

Polynomial::~Polynomial() {
  if (data_ != inline_) delete[] data_;
}

Polynomial::Polynomial(const Polynomial& other) {
  Reserve(other.size_, false);
  size_ = other.size_;
  std::memcpy(data_, other.data_, size_ * sizeof(double));
}

void Polynomial::MoveFrom(Polynomial&& other) noexcept {
  if (other.data_ != other.inline_) {
    // Steal the heap buffer.
    if (data_ != inline_) delete[] data_;
    data_ = other.data_;
    capacity_ = other.capacity_;
    size_ = other.size_;
    other.data_ = other.inline_;
    other.capacity_ = kInlineCoefficients;
    other.size_ = 0;
    return;
  }
  // Inline source: copy the (small) payload; keep our own buffer if it is
  // already big enough.
  if (capacity_ < other.size_) {
    // Only possible when we are inline too (capacity_ >= kInline... and
    // other.size_ <= kInlineCoefficients), so this never triggers; kept
    // for clarity.
    Reserve(other.size_, false);
  }
  size_ = other.size_;
  std::memcpy(data_, other.data_, size_ * sizeof(double));
  other.size_ = 0;
}

Polynomial::Polynomial(Polynomial&& other) noexcept {
  MoveFrom(std::move(other));
}

Polynomial& Polynomial::operator=(const Polynomial& other) {
  if (this == &other) return *this;
  Reserve(other.size_, false);
  size_ = other.size_;
  std::memcpy(data_, other.data_, size_ * sizeof(double));
  return *this;
}

Polynomial& Polynomial::operator=(Polynomial&& other) noexcept {
  if (this == &other) return *this;
  MoveFrom(std::move(other));
  return *this;
}

Polynomial::Polynomial(std::initializer_list<double> coeffs) {
  Assign(coeffs.begin(), coeffs.size());
}

Polynomial::Polynomial(std::vector<double> coeffs) {
  Assign(coeffs.data(), coeffs.size());
}

Polynomial::Polynomial(const double* coeffs, size_t n) { Assign(coeffs, n); }

void Polynomial::Assign(const double* coeffs, size_t n) {
  Reserve(n, false);
  size_ = n;
  if (n > 0) std::memmove(data_, coeffs, n * sizeof(double));
  Trim();
}

void Polynomial::Resize(size_t n) {
  Reserve(n, true);
  for (size_t i = size_; i < n; ++i) data_[i] = 0.0;
  size_ = n;
}

Polynomial Polynomial::Constant(double c) { return Polynomial(&c, 1); }

Polynomial Polynomial::Monomial(double c, size_t power) {
  Polynomial p;
  p.Resize(power + 1);
  p.data_[power] = c;
  p.Trim();
  return p;
}

void Polynomial::Trim() {
  while (size_ > 0 && std::abs(data_[size_ - 1]) <= kCoefficientEpsilon) {
    --size_;
  }
}

double Polynomial::Evaluate(double t) const {
  double acc = 0.0;
  for (size_t i = size_; i-- > 0;) {
    acc = acc * t + data_[i];
  }
  return acc;
}

Polynomial Polynomial::Derivative() const {
  Polynomial d;
  DerivativeInto(&d);
  return d;
}

void Polynomial::DerivativeInto(Polynomial* out) const {
  PULSE_CHECK(out != this);
  if (size_ <= 1) {
    out->size_ = 0;
    return;
  }
  out->Reserve(size_ - 1, false);
  out->size_ = size_ - 1;
  for (size_t i = 1; i < size_; ++i) {
    out->data_[i - 1] = data_[i] * static_cast<double>(i);
  }
  out->Trim();
}

Polynomial Polynomial::Antiderivative() const {
  Polynomial a;
  if (size_ == 0) return a;
  a.Resize(size_ + 1);
  for (size_t i = 0; i < size_; ++i) {
    a.data_[i + 1] = data_[i] / static_cast<double>(i + 1);
  }
  a.Trim();
  return a;
}

double Polynomial::Integrate(double lo, double hi) const {
  Polynomial anti = Antiderivative();
  return anti.Evaluate(hi) - anti.Evaluate(lo);
}

Polynomial Polynomial::Shift(double shift) const {
  // p(t + s) = sum_i c_i (t + s)^i
  //          = sum_i c_i sum_{k<=i} C(i,k) s^{i-k} t^k.
  if (size_ == 0 || shift == 0.0) return *this;
  Polynomial out;
  out.Resize(size_);
  for (size_t i = 0; i < size_; ++i) {
    double s_pow = 1.0;  // shift^{i-k}, built from k = i downward
    for (size_t k = i + 1; k-- > 0;) {
      out.data_[k] += data_[i] * Binomial(i, k) * s_pow;
      s_pow *= shift;
    }
  }
  out.Trim();
  return out;
}

Polynomial Polynomial::ScaleArgument(double s) const {
  Polynomial out;
  out.Reserve(size_, false);
  out.size_ = size_;
  double s_pow = 1.0;
  for (size_t i = 0; i < size_; ++i) {
    out.data_[i] = data_[i] * s_pow;
    s_pow *= s;
  }
  out.Trim();
  return out;
}

Polynomial Polynomial::operator+(const Polynomial& other) const {
  Polynomial out = *this;
  out.AddInPlace(other);
  return out;
}

Polynomial Polynomial::operator-(const Polynomial& other) const {
  Polynomial out = *this;
  out.SubInPlace(other);
  return out;
}

void Polynomial::AddInPlace(const Polynomial& other) {
  if (other.size_ > size_) Resize(other.size_);
  for (size_t i = 0; i < other.size_; ++i) data_[i] += other.data_[i];
  Trim();
}

void Polynomial::SubInPlace(const Polynomial& other) {
  if (other.size_ > size_) Resize(other.size_);
  for (size_t i = 0; i < other.size_; ++i) data_[i] -= other.data_[i];
  Trim();
}

void Polynomial::ScaleInPlace(double s) {
  for (size_t i = 0; i < size_; ++i) data_[i] *= s;
  Trim();
}

void Polynomial::Sub(const Polynomial& a, const Polynomial& b,
                     Polynomial* out) {
  if (out == &a) {
    out->SubInPlace(b);
    return;
  }
  if (out == &b) {
    // out = a - out: negate, then add a.
    out->ScaleInPlace(-1.0);
    out->AddInPlace(a);
    return;
  }
  const size_t n = std::max(a.size_, b.size_);
  out->Reserve(n, false);
  out->size_ = n;
  for (size_t i = 0; i < n; ++i) {
    out->data_[i] = (i < a.size_ ? a.data_[i] : 0.0) -
                    (i < b.size_ ? b.data_[i] : 0.0);
  }
  out->Trim();
}

void Polynomial::Mul(const Polynomial& a, const Polynomial& b,
                     Polynomial* out) {
  PULSE_CHECK(out != &a && out != &b);
  if (a.size_ == 0 || b.size_ == 0) {
    out->size_ = 0;
    return;
  }
  const size_t n = a.size_ + b.size_ - 1;
  out->Reserve(n, false);
  out->size_ = n;
  std::fill(out->data_, out->data_ + n, 0.0);
  for (size_t i = 0; i < a.size_; ++i) {
    for (size_t j = 0; j < b.size_; ++j) {
      out->data_[i + j] += a.data_[i] * b.data_[j];
    }
  }
  out->Trim();
}

Polynomial Polynomial::operator*(const Polynomial& other) const {
  Polynomial out;
  Mul(*this, other, &out);
  return out;
}

Polynomial Polynomial::operator*(double scalar) const {
  Polynomial out = *this;
  out.ScaleInPlace(scalar);
  return out;
}

Polynomial Polynomial::operator-() const { return *this * -1.0; }

bool Polynomial::operator==(const Polynomial& other) const {
  if (size_ != other.size_) return false;
  for (size_t i = 0; i < size_; ++i) {
    if (data_[i] != other.data_[i]) return false;
  }
  return true;
}

bool Polynomial::AlmostEquals(const Polynomial& other, double tol) const {
  size_t n = std::max(size_, other.size_);
  for (size_t i = 0; i < n; ++i) {
    if (std::abs(coeff(i) - other.coeff(i)) > tol) return false;
  }
  return true;
}

double Polynomial::MaxAbsDifference(const Polynomial& other, double lo,
                                    double hi) const {
  PULSE_CHECK(lo <= hi);
  const Polynomial diff = *this - other;
  if (diff.IsZero()) return 0.0;
  double max_abs =
      std::max(std::abs(diff.Evaluate(lo)), std::abs(diff.Evaluate(hi)));
  // Interior extrema occur at roots of the derivative.
  const std::vector<double> critical =
      FindRealRoots(diff.Derivative(), lo, hi);
  for (double t : critical) {
    max_abs = std::max(max_abs, std::abs(diff.Evaluate(t)));
  }
  return max_abs;
}

std::string Polynomial::ToString() const {
  if (size_ == 0) return "0";
  std::ostringstream os;
  bool first = true;
  for (size_t i = 0; i < size_; ++i) {
    double c = data_[i];
    if (std::abs(c) <= kCoefficientEpsilon && size_ > 1) continue;
    if (first) {
      if (c < 0) os << "-";
    } else {
      os << (c < 0 ? " - " : " + ");
    }
    double a = std::abs(c);
    if (i == 0) {
      os << a;
    } else {
      if (a != 1.0) os << a << "*";
      os << "t";
      if (i > 1) os << "^" << i;
    }
    first = false;
  }
  if (first) return "0";
  return os.str();
}

}  // namespace pulse
