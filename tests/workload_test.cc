#include <cmath>
#include <cstdio>
#include <filesystem>
#include <set>

#include <gtest/gtest.h>

#include "core/transform.h"
#include "workload/ais.h"
#include "workload/moving_object.h"
#include "workload/nyse.h"
#include "workload/queries.h"
#include "workload/replay.h"

namespace pulse {
namespace {

TEST(MovingObjectGenerator, SchemaAndDeterminism) {
  MovingObjectOptions opts;
  opts.seed = 99;
  MovingObjectGenerator a(opts), b(opts);
  for (int i = 0; i < 50; ++i) {
    Tuple ta = a.NextTuple();
    Tuple tb = b.NextTuple();
    EXPECT_EQ(ta.ToString(), tb.ToString());
  }
  EXPECT_EQ(MovingObjectGenerator::TupleSchema()->num_fields(), 5u);
}

TEST(MovingObjectGenerator, RateAndRoundRobin) {
  MovingObjectOptions opts;
  opts.num_objects = 4;
  opts.tuple_rate = 100.0;
  MovingObjectGenerator gen(opts);
  std::vector<Tuple> tuples = gen.Generate(8);
  // Timestamps spaced at 1/rate.
  EXPECT_NEAR(tuples[1].timestamp - tuples[0].timestamp, 0.01, 1e-12);
  // Round-robin ids.
  EXPECT_EQ(tuples[0].at(0).as_int64(), 0);
  EXPECT_EQ(tuples[1].at(0).as_int64(), 1);
  EXPECT_EQ(tuples[4].at(0).as_int64(), 0);
}

TEST(MovingObjectGenerator, LinearBetweenTurnsMatchesModel) {
  // With zero noise, consecutive samples of one object obey
  // x' = x + vx * dt exactly while the velocity is unchanged.
  MovingObjectOptions opts;
  opts.num_objects = 1;
  opts.tuple_rate = 10.0;
  opts.tuples_per_segment = 1000;  // no turn within this test
  opts.noise = 0.0;
  opts.area = 1e9;  // no wall reflections
  MovingObjectGenerator gen(opts);
  Tuple prev = gen.NextTuple();
  for (int i = 0; i < 100; ++i) {
    Tuple cur = gen.NextTuple();
    const double dt = cur.timestamp - prev.timestamp;
    EXPECT_NEAR(cur.at(1).as_double(),
                prev.at(1).as_double() + prev.at(3).as_double() * dt,
                1e-9);
    prev = cur;
  }
}

TEST(MovingObjectGenerator, VelocityChangesEveryKSamples) {
  MovingObjectOptions opts;
  opts.num_objects = 1;
  opts.tuples_per_segment = 10;
  opts.area = 1e9;
  MovingObjectGenerator gen(opts);
  std::vector<Tuple> tuples = gen.Generate(40);
  std::set<double> velocities;
  for (const Tuple& t : tuples) velocities.insert(t.at(3).as_double());
  // 40 samples / 10 per segment: about 4 distinct velocities.
  EXPECT_GE(velocities.size(), 3u);
  EXPECT_LE(velocities.size(), 6u);
}

TEST(NyseGenerator, PricesPositiveAndTrendy) {
  NyseOptions opts;
  opts.num_symbols = 10;
  NyseGenerator gen(opts);
  for (int i = 0; i < 2000; ++i) {
    Tuple t = gen.NextTuple();
    EXPECT_GT(t.at(1).as_double(), 0.0);
    EXPECT_GE(t.at(0).as_int64(), 0);
    EXPECT_LT(t.at(0).as_int64(), 10);
  }
}

TEST(NyseGenerator, ZipfSkewsSymbolFrequency) {
  NyseOptions opts;
  opts.num_symbols = 50;
  opts.zipf_skew = 1.2;
  NyseGenerator gen(opts);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 20000; ++i) {
    ++counts[gen.NextTuple().at(0).as_int64()];
  }
  EXPECT_GT(counts[0], counts[25] * 3);
}

TEST(NyseGenerator, DriftFieldPredictsPrice) {
  NyseOptions opts;
  opts.num_symbols = 1;
  opts.noise = 0.0;
  opts.trades_per_trend = 100000;
  NyseGenerator gen(opts);
  Tuple prev = gen.NextTuple();
  for (int i = 0; i < 200; ++i) {
    Tuple cur = gen.NextTuple();
    const double dt = cur.timestamp - prev.timestamp;
    EXPECT_NEAR(cur.at(1).as_double(),
                prev.at(1).as_double() + prev.at(2).as_double() * dt,
                1e-9);
    prev = cur;
  }
}

TEST(AisGenerator, FollowersStayClose) {
  AisOptions opts;
  opts.num_vessels = 20;
  opts.following_fraction = 0.3;
  opts.noise = 0.0;
  AisGenerator gen(opts);
  ASSERT_FALSE(gen.follower_pairs().empty());
  // Track positions over time.
  std::map<int64_t, std::pair<double, double>> last_pos;
  for (int i = 0; i < 5000; ++i) {
    Tuple t = gen.NextTuple();
    last_pos[t.at(0).as_int64()] = {t.at(1).as_double(),
                                    t.at(3).as_double()};
  }
  for (const auto& [follower, leader] : gen.follower_pairs()) {
    const auto [fx, fy] = last_pos.at(follower);
    const auto [lx, ly] = last_pos.at(leader);
    const double dist = std::hypot(fx - lx, fy - ly);
    EXPECT_LE(dist, opts.follow_distance * 1.5)
        << "follower " << follower << " strayed";
  }
}

TEST(AisGenerator, SchemaMatchesStreamSpec) {
  StreamSpec spec = AisGenerator::MakeStreamSpec("ais", 5.0);
  EXPECT_EQ(spec.key_field, "id");
  EXPECT_EQ(spec.models.size(), 2u);
  EXPECT_TRUE(spec.schema->HasField("vx"));
}

TEST(TraceFile, RoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "pulse_trace_test.csv")
          .string();
  MovingObjectGenerator gen(MovingObjectOptions{});
  std::vector<Tuple> tuples = gen.Generate(25);
  const auto schema = MovingObjectGenerator::TupleSchema();
  ASSERT_TRUE(TraceFile::Write(path, *schema, tuples).ok());
  Result<std::vector<Tuple>> loaded = TraceFile::Load(path, *schema);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), tuples.size());
  for (size_t i = 0; i < tuples.size(); ++i) {
    EXPECT_NEAR((*loaded)[i].timestamp, tuples[i].timestamp, 1e-9);
    EXPECT_EQ((*loaded)[i].at(0).as_int64(), tuples[i].at(0).as_int64());
    EXPECT_NEAR((*loaded)[i].at(1).as_double(),
                tuples[i].at(1).as_double(), 1e-6);
  }
  std::remove(path.c_str());
}

TEST(RescaleRate, CompressesTime) {
  std::vector<Tuple> trace;
  for (int i = 0; i < 10; ++i) {
    trace.push_back(Tuple(10.0 + i, {Value(int64_t{1})}));
  }
  std::vector<Tuple> fast = RescaleRate(trace, 2.0);
  EXPECT_DOUBLE_EQ(fast[0].timestamp, 10.0);
  EXPECT_DOUBLE_EQ(fast[9].timestamp, 14.5);
}

TEST(Queries, MacdSpecBuilds) {
  QuerySpec spec;
  ASSERT_TRUE(
      spec.AddStream(NyseGenerator::MakeStreamSpec("nyse", 2.0)).ok());
  Result<QuerySpec::NodeId> sink = AddMacdQuery(&spec, MacdParams{});
  ASSERT_TRUE(sink.ok());
  // short agg, long agg, join, diff map.
  EXPECT_EQ(spec.num_nodes(), 4u);
  EXPECT_EQ(spec.SinkNodes().size(), 1u);
  // Both plans build.
  EXPECT_TRUE(BuildPulsePlan(spec).ok());
  EXPECT_TRUE(BuildDiscretePlan(spec).ok());
}

TEST(Queries, FollowingSpecBuilds) {
  QuerySpec spec;
  ASSERT_TRUE(
      spec.AddStream(AisGenerator::MakeStreamSpec("ais", 10.0)).ok());
  Result<QuerySpec::NodeId> sink =
      AddFollowingQuery(&spec, FollowingParams{});
  ASSERT_TRUE(sink.ok());
  // join, dist map, avg, having.
  EXPECT_EQ(spec.num_nodes(), 4u);
  EXPECT_TRUE(BuildPulsePlan(spec).ok());
  EXPECT_TRUE(BuildDiscretePlan(spec).ok());
}

TEST(Queries, MissingStreamFails) {
  QuerySpec spec;
  EXPECT_FALSE(AddMacdQuery(&spec, MacdParams{}).ok());
  EXPECT_FALSE(AddFollowingQuery(&spec, FollowingParams{}).ok());
}

}  // namespace
}  // namespace pulse
