#include "serve/admission.h"

#include <algorithm>

namespace pulse {
namespace serve {

IntervalLatencySampler::IntervalLatencySampler(
    const obs::Histogram* histogram)
    : histogram_(histogram) {}

double IntervalLatencySampler::Sample() {
  if (histogram_ == nullptr) return 0.0;
  const auto buckets = histogram_->BucketCounts();
  const uint64_t count = histogram_->count();
  if (count <= last_count_) {
    // No new observations since the last sample: the latency signal is
    // stale, not elevated.
    p99_ns_ = 0.0;
    last_buckets_ = buckets;
    last_count_ = count;
    return p99_ns_;
  }
  std::array<uint64_t, obs::Histogram::kNumBuckets> delta{};
  for (size_t i = 0; i < delta.size(); ++i) {
    delta[i] = buckets[i] - last_buckets_[i];
  }
  p99_ns_ = obs::PercentileFromBuckets(delta, count - last_count_, 99.0);
  last_buckets_ = buckets;
  last_count_ = count;
  return p99_ns_;
}

AdmissionController::AdmissionController(AdmissionOptions options,
                                         const obs::Histogram* latency)
    : options_(options), sampler_(latency) {
  if (options_.queue_low_watermark > options_.queue_high_watermark) {
    options_.queue_low_watermark = options_.queue_high_watermark;
  }
  if (options_.latency_low_ns > options_.latency_high_ns) {
    options_.latency_low_ns = options_.latency_high_ns;
  }
  if (options_.sample_every == 0) options_.sample_every = 1;
}

void AdmissionController::ResampleLatency() {
  const double p99 = sampler_.Sample();
  if (latency_overloaded_) {
    if (p99 < static_cast<double>(options_.latency_low_ns)) {
      latency_overloaded_ = false;
    }
  } else if (p99 > static_cast<double>(options_.latency_high_ns)) {
    latency_overloaded_ = true;
  }
}

AdmitDecision AdmissionController::Admit(size_t total_depth,
                                         size_t total_capacity) {
  if (!options_.enabled) return AdmitDecision::kAdmit;

  const double fraction =
      total_capacity == 0
          ? 0.0
          : static_cast<double>(total_depth) /
                static_cast<double>(total_capacity);
  if (queue_overloaded_) {
    if (fraction < options_.queue_low_watermark) queue_overloaded_ = false;
  } else if (fraction > options_.queue_high_watermark) {
    queue_overloaded_ = true;
  }

  if (++admits_since_sample_ >= options_.sample_every) {
    admits_since_sample_ = 0;
    ResampleLatency();
  }

  if (queue_overloaded_) return AdmitDecision::kShedQueue;
  if (latency_overloaded_) return AdmitDecision::kShedLatency;
  return AdmitDecision::kAdmit;
}

PrecisionController::PrecisionController(PrecisionOptions options,
                                         const obs::Histogram* latency)
    : options_(options), sampler_(latency) {
  if (options_.tighten_queue_watermark > options_.widen_queue_watermark) {
    options_.tighten_queue_watermark = options_.widen_queue_watermark;
  }
  if (options_.tighten_latency_ns > options_.widen_latency_ns) {
    options_.tighten_latency_ns = options_.widen_latency_ns;
  }
  if (options_.sample_every == 0) options_.sample_every = 1;
  if (options_.num_tiers == 0) options_.num_tiers = 1;
  if (options_.forced_tier >= 0) {
    tier_ = std::min(static_cast<size_t>(options_.forced_tier),
                     options_.num_tiers);
  }
}

size_t PrecisionController::Update(size_t total_depth,
                                   size_t total_capacity) {
  if (!options_.enabled) return 0;
  if (options_.forced_tier >= 0) return tier_;

  ++admissions_;
  if (++admits_since_sample_ >= options_.sample_every) {
    admits_since_sample_ = 0;
    (void)sampler_.Sample();
  }
  // Dwell: at most one tier move per cooldown window, so a step load
  // ramps monotonically instead of oscillating around a watermark.
  if (admissions_ - last_move_admission_ < options_.cooldown) return tier_;

  const double fraction =
      total_capacity == 0
          ? 0.0
          : static_cast<double>(total_depth) /
                static_cast<double>(total_capacity);
  const double p99 = sampler_.p99_ns();

  const bool pressure =
      fraction > options_.widen_queue_watermark ||
      p99 > static_cast<double>(options_.widen_latency_ns);
  const bool relief =
      fraction < options_.tighten_queue_watermark &&
      p99 < static_cast<double>(options_.tighten_latency_ns);

  if (pressure && tier_ < options_.num_tiers) {
    ++tier_;
    ++widen_events_;
    last_move_admission_ = admissions_;
  } else if (relief && tier_ > 0) {
    --tier_;
    ++tighten_events_;
    last_move_admission_ = admissions_;
  }
  return tier_;
}

}  // namespace serve
}  // namespace pulse
