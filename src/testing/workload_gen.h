#ifndef PULSE_TESTING_WORKLOAD_GEN_H_
#define PULSE_TESTING_WORKLOAD_GEN_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "engine/schema.h"
#include "engine/tuple.h"
#include "model/segment.h"
#include "util/rng.h"

namespace pulse {
namespace testing {

/// Knobs of the random piecewise-polynomial stream generator. Defaults
/// are sized so a generated case solves in well under a millisecond —
/// the differential suite replays hundreds of them in tier-1.
struct WorkloadGenOptions {
  /// Every track covers exactly [0, duration).
  double duration = 6.0;
  size_t min_keys = 1;
  size_t max_keys = 3;
  /// Pieces per key track (each a random polynomial over its range).
  size_t min_pieces = 1;
  size_t max_pieces = 4;
  /// Polynomial degree per piece, drawn uniformly in [0, max_degree].
  size_t max_degree = 3;
  /// Constant-term scale; higher-order coefficients shrink with order so
  /// values stay O(value_scale) over a piece.
  double value_scale = 10.0;
  /// Telemetry mode: instead of free random polynomials, each piece is
  /// either a near-zero baseline or a burst near value_scale (degree <=
  /// 1, slopes bounded) — the on/off shape of attack traffic. Thresholds
  /// placed between the bands make epoch/distinct detections non-trivial
  /// in both directions. Tracks stay exact piecewise polynomials, so the
  /// differential oracles apply unchanged.
  bool telemetry = false;
  /// Probability a telemetry piece is a burst rather than baseline.
  double burst_probability = 0.35;
};

/// One polynomial piece of a key's track. `range` is half-open [lo, hi);
/// the polynomial is stored in absolute time (same convention segments
/// use on the wire).
struct TrackPiece {
  Interval range = Interval::ClosedOpen(0.0, 0.0);
  std::map<std::string, Polynomial> attrs;
};

/// The full ground-truth trajectory of one entity: contiguous pieces
/// exactly partitioning [0, duration).
struct KeyTrack {
  Key key = 0;
  std::vector<TrackPiece> pieces;

  /// Value of `attr` at absolute time t, or nullopt outside every piece.
  std::optional<double> Value(const std::string& attr, double t) const;

  /// The piece whose range contains t, or nullptr.
  const TrackPiece* PieceAt(double t) const;
};

/// A generated stream: the single source of truth both representations
/// are derived from. Segments carry the piece polynomials exactly;
/// tuples sample the same polynomials on the global grid j * dt — so any
/// disagreement between the two engines is a processing divergence, not
/// input noise.
struct StreamWorkload {
  std::string name;
  std::vector<std::string> attributes;
  std::vector<KeyTrack> tracks;
  double t_begin = 0.0;
  double t_end = 0.0;
  /// sup |attr(t)| over all pieces (sampled bound; used for tolerances).
  double value_bound = 0.0;
  /// sup |d attr/dt| over all pieces (sampled bound; discretization-error
  /// tolerances in the differential matcher scale with dt * this).
  double derivative_bound = 0.0;

  /// Exact continuous representation: one segment per (key, piece), in
  /// (range.lo, key) order — the order the harness replays them in.
  std::vector<Segment> ToSegments() const;

  /// Dense discrete representation: one tuple per (grid time, key) where
  /// the key's track covers the grid time, ordered by (time, key).
  /// Field layout matches MakeSchema(): [id, attributes...].
  std::vector<Tuple> ToTuples(double dt) const;

  /// Schema {id: int64, <attr>: double ...}.
  std::shared_ptr<const Schema> MakeSchema() const;

  /// Ground-truth value of `attr` for `key` at time t.
  std::optional<double> Value(Key key, const std::string& attr,
                              double t) const;

  /// Cross-key instantaneous envelope: min (or max) over all keys whose
  /// track covers t. nullopt when no key covers t.
  std::optional<double> Envelope(const std::string& attr, double t,
                                 bool is_min) const;

  /// Exact integral of `attr` for `key` over [lo, hi] via piecewise
  /// antiderivatives (the continuous sum/avg oracle).
  std::optional<double> Integral(Key key, const std::string& attr,
                                 double lo, double hi) const;
};

/// Generates one stream: `num_keys` tracks over [0, duration), each
/// split into random contiguous pieces with random bounded polynomials
/// per attribute. Deterministic in `rng`.
StreamWorkload GenerateStreamWorkload(Rng& rng, std::string name,
                                      std::vector<std::string> attributes,
                                      size_t num_keys,
                                      const WorkloadGenOptions& options = {});

}  // namespace testing
}  // namespace pulse

#endif  // PULSE_TESTING_WORKLOAD_GEN_H_
