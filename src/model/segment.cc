#include "model/segment.h"

#include <algorithm>
#include <sstream>

namespace pulse {

Result<Polynomial> Segment::attribute(const std::string& name) const {
  auto it = attributes.find(name);
  if (it == attributes.end()) {
    return Status::NotFound("segment has no modeled attribute '" + name +
                            "'");
  }
  return it->second;
}

Result<double> Segment::EvaluateAttribute(const std::string& name,
                                          double t) const {
  auto it = attributes.find(name);
  if (it == attributes.end()) {
    return Status::NotFound("segment has no modeled attribute '" + name +
                            "'");
  }
  return it->second.Evaluate(t);
}

Segment Segment::ClipTo(const Interval& clip) const {
  Segment out = *this;
  out.range = range.Intersect(clip);
  return out;
}

std::string Segment::ToString() const {
  std::ostringstream os;
  os << "Segment{key=" << key << ", range=" << range.ToString();
  for (const auto& [name, poly] : attributes) {
    os << ", " << name << "(t)=" << poly.ToString();
  }
  for (const auto& [name, v] : unmodeled) {
    os << ", " << name << "=" << v;
  }
  os << "}";
  return os.str();
}

void ApplySegmentUpdate(std::vector<Segment>* timeline, Segment incoming) {
  if (incoming.range.IsEmpty()) return;
  // Fast path for the dominant in-order append: the timeline is sorted
  // and disjoint, so a segment starting at or after the last one's end
  // cannot overlap anything and keeps the ordering by plain push_back.
  if (timeline->empty()) {
    timeline->push_back(std::move(incoming));
    return;
  }
  const Interval& last = timeline->back().range;
  if (incoming.range.lo > last.hi ||
      (incoming.range.lo == last.hi &&
       (last.hi_open || incoming.range.lo_open))) {
    timeline->push_back(std::move(incoming));
    return;
  }
  // Successor wins the overlap: truncate any earlier segment that extends
  // past the newcomer's start; drop segments fully covered.
  std::vector<Segment> kept;
  kept.reserve(timeline->size() + 1);
  for (Segment& s : *timeline) {
    if (!s.range.Intersects(incoming.range)) {
      kept.push_back(std::move(s));
      continue;
    }
    // Piece of s strictly before the incoming segment survives.
    Segment head = s;
    head.range.hi = incoming.range.lo;
    head.range.hi_open = !incoming.range.lo_open;
    if (!head.range.IsEmpty()) kept.push_back(std::move(head));
    // Piece of s after the incoming segment survives too (incoming is an
    // update for the overlap only).
    Segment tail = std::move(s);
    tail.range.lo = incoming.range.hi;
    tail.range.lo_open = !incoming.range.hi_open;
    if (!tail.range.IsEmpty()) kept.push_back(std::move(tail));
  }
  kept.push_back(std::move(incoming));
  std::sort(kept.begin(), kept.end(), [](const Segment& a, const Segment& b) {
    if (a.range.lo != b.range.lo) return a.range.lo < b.range.lo;
    return !a.range.lo_open && b.range.lo_open;
  });
  *timeline = std::move(kept);
}

}  // namespace pulse
