#ifndef PULSE_STORE_RECOVERY_H_
#define PULSE_STORE_RECOVERY_H_

#include <string>
#include <vector>

#include "core/query.h"
#include "core/runtime.h"
#include "shard/sharded_runtime.h"
#include "store/store.h"
#include "util/result.h"

namespace pulse {
namespace store {

/// Runtime restoration (docs/STORAGE.md): reopen the store, replay the
/// consistent log prefix into a fresh runtime — deterministic replay
/// reconstructs solver caches, envelopes, and segmenter state exactly —
/// then verify the replayed output prefix against the checkpoint's
/// canonical hash and suppress the outputs a client already saw.

struct RecoveredHistorical {
  SegmentStore store;
  HistoricalRuntime runtime;
  RecoveryReport report;
  /// Replayed outputs past the delivered watermark: deliver these, then
  /// keep feeding the runtime (unless the checkpoint was `finished`).
  std::vector<Segment> pending_outputs;
  /// The replayed delivered-prefix hash matched the checkpoint — the
  /// byte-identity proof. False with detail when it did not (recovery
  /// then redelivers everything rather than diverge silently).
  bool state_verified = false;
  std::string verify_detail;
};

/// Replays `store_options.dir` into a serial HistoricalRuntime.
/// `options.collect_outputs` is forced on (replay needs the outputs to
/// verify and suppress). When the checkpoint marks a drain point the
/// runtime is Finish()ed, matching the state the original run died in.
Result<RecoveredHistorical> RecoverHistorical(
    const QuerySpec& spec, HistoricalRuntime::Options options,
    StoreOptions store_options);

struct RecoveredSharded {
  SegmentStore store;
  shard::ShardedRuntime runtime;
  RecoveryReport report;
  std::vector<Segment> pending_outputs;
  bool state_verified = false;
  std::string verify_detail;
};

/// Sharded flavor: replays into a ShardedRuntime (key-partitioned
/// ShardPool) and synchronizes with Barrier() — the released prefix is
/// then byte-identical to a serial replay, so the same watermark
/// verification applies.
Result<RecoveredSharded> RecoverSharded(
    const QuerySpec& spec, shard::ShardedRuntimeOptions options,
    StoreOptions store_options);

}  // namespace store
}  // namespace pulse

#endif  // PULSE_STORE_RECOVERY_H_
