#ifndef PULSE_MATH_BATCH_KERNELS_H_
#define PULSE_MATH_BATCH_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "util/cpu_features.h"

namespace pulse {

/// One ISA tier of the batched structure-of-arrays solver kernels.
///
/// Layout: every input is a column of `n` doubles; coefficient columns
/// are indexed low degree first (c0 = constant term). All kernels are
/// pinned **bit-identical** to the scalar closed forms in roots.cc
/// (roots_internal::LinearRoot/QuadraticRoots/CubicRoots and
/// Polynomial::Evaluate): the vector tiers use only correctly-rounded
/// IEEE-754 operations (add/sub/mul/div/sqrt, copysign as bit ops) in
/// the exact scalar operation order, and never fuse multiply-add.
/// Operations on cbrt/acos/cos (the cubic closed form) have no
/// reproducible vectorization, so `cubic_roots` is lane-scalar in every
/// tier. See docs/PERFORMANCE.md "Batched solver kernels".
struct BatchKernels {
  /// Dispatch-tier name: "scalar" | "sse2" | "neon" | "avx2". Static
  /// storage; stable for pointer comparison.
  const char* name;

  /// SoA Horner: out[i] = p_i(t[i]) where p_i has coefficient columns
  /// c[0..degree], degree <= 7 (the solver's cacheable-coefficient cap).
  /// The recurrence is pinned to Polynomial::Evaluate (acc = 0.0; top
  /// coefficient downwards: acc = acc * t + c[j][i]) — the leading
  /// 0.0 * t step matters for t = ±inf.
  void (*horner)(const double* const* c, size_t degree, const double* t,
                 double* out, size_t n);

  /// Degree-1 closed form: r0[i] = -c0[i] / c1[i].
  void (*linear_roots)(const double* c0, const double* c1, double* r0,
                       size_t n);

  /// Degree-2 closed form; count[i] in {0, 1, 2}, roots in the scalar
  /// reference's push order. Root slots beyond count[i] are 0.0.
  void (*quadratic_roots)(const double* c0, const double* c1,
                          const double* c2, double* r0, double* r1,
                          uint8_t* count, size_t n);

  /// Degree-3 closed form; count[i] in {1, 2, 3}; unused slots 0.0.
  /// Lane-scalar in every tier (see class comment).
  void (*cubic_roots)(const double* c0, const double* c1, const double* c2,
                      const double* c3, double* r0, double* r1, double* r2,
                      uint8_t* count, size_t n);
};

/// The scalar reference tier (thin loops over the roots.cc closed forms).
const BatchKernels& ScalarBatchKernels();

/// The tier for an explicit SimdLevel. Levels compiled out of this
/// binary (e.g. kAvx2 on a non-x86 build) degrade to the strongest
/// available weaker tier.
const BatchKernels& BatchKernelsFor(SimdLevel level);

/// The tier matching ActiveSimdLevel() right now — honors
/// PULSE_FORCE_SCALAR and SetSimdOverrideForTesting. One relaxed atomic
/// load; cheap enough to call per batch flush.
const BatchKernels& ActiveBatchKernels();

namespace batch_internal {
/// The AVX2 tier, or nullptr when this binary was built without the
/// AVX2 translation unit's -mavx2 flags. Defined in
/// batch_kernels_avx2.cc; callers go through BatchKernelsFor.
const BatchKernels* Avx2BatchKernelsOrNull();

/// Scalar kernel entry points, exposed so the AVX2 translation unit can
/// delegate remainder lanes to code compiled with baseline flags (the
/// -mavx2 TU must not compile scalar reference arithmetic itself).
void ScalarHorner(const double* const* c, size_t degree, const double* t,
                  double* out, size_t n);
void ScalarLinearRoots(const double* c0, const double* c1, double* r0,
                       size_t n);
void ScalarQuadraticRoots(const double* c0, const double* c1,
                          const double* c2, double* r0, double* r1,
                          uint8_t* count, size_t n);
void ScalarCubicRoots(const double* c0, const double* c1, const double* c2,
                      const double* c3, double* r0, double* r1, double* r2,
                      uint8_t* count, size_t n);
}  // namespace batch_internal

}  // namespace pulse

#endif  // PULSE_MATH_BATCH_KERNELS_H_
