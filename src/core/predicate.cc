#include "core/predicate.h"

#include <sstream>
#include <utility>

#include "core/solve_cache.h"

namespace pulse {

ComparisonTerm ComparisonTerm::Simple(AttrRef lhs, CmpOp op, Operand rhs) {
  ComparisonTerm t;
  t.kind = Kind::kSimple;
  t.lhs = std::move(lhs);
  t.op = op;
  t.rhs = std::move(rhs);
  return t;
}

ComparisonTerm ComparisonTerm::Distance2(AttrRef x1, AttrRef y1, AttrRef x2,
                                         AttrRef y2, CmpOp op,
                                         double threshold) {
  ComparisonTerm t;
  t.kind = Kind::kDistance2;
  t.x1 = std::move(x1);
  t.y1 = std::move(y1);
  t.x2 = std::move(x2);
  t.y2 = std::move(y2);
  t.op = op;
  t.threshold = threshold;
  return t;
}

std::string ComparisonTerm::ToString() const {
  std::ostringstream os;
  if (kind == Kind::kSimple) {
    os << lhs.ToString() << " " << CmpOpToString(op) << " ";
    if (rhs.kind == Operand::Kind::kAttribute) {
      os << rhs.attr.ToString();
    } else {
      os << rhs.constant;
    }
  } else {
    os << "dist((" << x1.ToString() << "," << y1.ToString() << "),("
       << x2.ToString() << "," << y2.ToString() << ")) "
       << CmpOpToString(op) << " " << threshold;
  }
  return os.str();
}

Predicate Predicate::Comparison(ComparisonTerm term) {
  Predicate p;
  p.kind_ = Kind::kComparison;
  p.term_ = std::move(term);
  return p;
}

Predicate Predicate::And(std::vector<Predicate> children) {
  Predicate p;
  p.kind_ = Kind::kAnd;
  p.children_ = std::move(children);
  return p;
}

Predicate Predicate::Or(std::vector<Predicate> children) {
  Predicate p;
  p.kind_ = Kind::kOr;
  p.children_ = std::move(children);
  return p;
}

Predicate Predicate::Not(Predicate child) {
  Predicate p;
  p.kind_ = Kind::kNot;
  p.children_.push_back(std::move(child));
  return p;
}

bool Predicate::IsConjunctive() const {
  if (kind_ == Kind::kComparison) return true;
  if (kind_ != Kind::kAnd) return false;
  for (const Predicate& c : children_) {
    if (!c.IsConjunctive()) return false;
  }
  return true;
}

Result<DifferenceEquation> Predicate::BuildRow(const ComparisonTerm& term,
                                               const AttrResolver& resolver) {
  if (term.kind == ComparisonTerm::Kind::kSimple) {
    PULSE_ASSIGN_OR_RETURN(Polynomial lhs, resolver(term.lhs));
    Polynomial rhs;
    if (term.rhs.kind == Operand::Kind::kAttribute) {
      PULSE_ASSIGN_OR_RETURN(rhs, resolver(term.rhs.attr));
    } else {
      rhs = Polynomial::Constant(term.rhs.constant);
    }
    return MakeDifferenceEquation(std::move(lhs), term.op, rhs);
  }
  // Distance term: (x1-x2)^2 + (y1-y2)^2 - c^2 R 0, built with fused
  // in-place ops — inline SBO storage end to end for degree <= 3 models.
  PULSE_ASSIGN_OR_RETURN(Polynomial dx, resolver(term.x1));
  PULSE_ASSIGN_OR_RETURN(Polynomial x2, resolver(term.x2));
  dx.SubInPlace(x2);
  PULSE_ASSIGN_OR_RETURN(Polynomial dy, resolver(term.y1));
  PULSE_ASSIGN_OR_RETURN(Polynomial y2, resolver(term.y2));
  dy.SubInPlace(y2);
  Polynomial diff;
  Polynomial::Mul(dx, dx, &diff);
  Polynomial dy2;
  Polynomial::Mul(dy, dy, &dy2);
  diff.AddInPlace(dy2);
  diff.SubInPlace(Polynomial::Constant(term.threshold * term.threshold));
  return DifferenceEquation{std::move(diff), term.op};
}

Result<EquationSystem> Predicate::BuildSystem(
    const AttrResolver& resolver) const {
  EquationSystem system;
  PULSE_RETURN_IF_ERROR(BuildSystemInto(resolver, &system));
  return system;
}

Status Predicate::BuildSystemInto(const AttrResolver& resolver,
                                  EquationSystem* out) const {
  if (!IsConjunctive()) {
    return Status::FailedPrecondition(
        "BuildSystem requires a conjunctive predicate");
  }
  out->Clear();
  return AppendSystemRows(resolver, out);
}

Status Predicate::AppendSystemRows(const AttrResolver& resolver,
                                   EquationSystem* out) const {
  if (kind_ == Kind::kComparison) {
    PULSE_ASSIGN_OR_RETURN(DifferenceEquation row,
                           BuildRow(term_, resolver));
    out->AddRow(std::move(row));
    return Status::OK();
  }
  for (const Predicate& c : children_) {
    PULSE_RETURN_IF_ERROR(c.AppendSystemRows(resolver, out));
  }
  return Status::OK();
}

Result<IntervalSet> Predicate::Solve(const AttrResolver& resolver,
                                     const Interval& domain,
                                     RootMethod method) const {
  SolveScratch scratch;
  IntervalSet out;
  PULSE_RETURN_IF_ERROR(
      SolveInto(resolver, domain, method, &scratch, nullptr, &out));
  return out;
}

Status Predicate::SolveInto(const AttrResolver& resolver,
                            const Interval& domain, RootMethod method,
                            SolveScratch* scratch, SolveCache* cache,
                            IntervalSet* out) const {
  switch (kind_) {
    case Kind::kComparison: {
      PULSE_ASSIGN_OR_RETURN(DifferenceEquation row,
                             BuildRow(term_, resolver));
      if (cache != nullptr &&
          cache->Lookup(row.diff, row.op, domain, method, out)) {
        return Status::OK();
      }
      SolveComparisonInto(row.diff, row.op, domain, method, &scratch->roots,
                          out);
      if (cache != nullptr) {
        cache->Insert(row.diff, row.op, domain, method, *out);
      }
      return Status::OK();
    }
    case Kind::kAnd: {
      out->AssignInterval(domain);
      // Local accumulator per recursion level: child solves reuse the
      // shared scratch below this frame.
      IntervalSet sub;
      for (const Predicate& c : children_) {
        PULSE_RETURN_IF_ERROR(
            c.SolveInto(resolver, domain, method, scratch, cache, &sub));
        out->IntersectWith(sub, &scratch->roots.interval_scratch);
        if (out->IsEmpty()) break;
      }
      return Status::OK();
    }
    case Kind::kOr: {
      out->Clear();
      IntervalSet sub;
      for (const Predicate& c : children_) {
        PULSE_RETURN_IF_ERROR(
            c.SolveInto(resolver, domain, method, scratch, cache, &sub));
        out->UnionWith(sub);
      }
      return Status::OK();
    }
    case Kind::kNot: {
      IntervalSet sub;
      PULSE_RETURN_IF_ERROR(children_[0].SolveInto(resolver, domain, method,
                                                   scratch, cache, &sub));
      sub.ComplementInto(domain, out);
      return Status::OK();
    }
  }
  return Status::Internal("unknown predicate kind");
}

void Predicate::CollectAttributes(std::vector<AttrRef>* out) const {
  if (kind_ == Kind::kComparison) {
    if (term_.kind == ComparisonTerm::Kind::kSimple) {
      out->push_back(term_.lhs);
      if (term_.rhs.kind == Operand::Kind::kAttribute) {
        out->push_back(term_.rhs.attr);
      }
    } else {
      out->push_back(term_.x1);
      out->push_back(term_.y1);
      out->push_back(term_.x2);
      out->push_back(term_.y2);
    }
    return;
  }
  for (const Predicate& c : children_) c.CollectAttributes(out);
}

namespace {

bool CompareValues(double lhs, CmpOp op, double rhs) {
  switch (op) {
    case CmpOp::kLt:
      return lhs < rhs;
    case CmpOp::kLe:
      return lhs <= rhs;
    case CmpOp::kEq:
      return lhs == rhs;
    case CmpOp::kNe:
      return lhs != rhs;
    case CmpOp::kGe:
      return lhs >= rhs;
    case CmpOp::kGt:
      return lhs > rhs;
  }
  return false;
}

}  // namespace

Result<bool> Predicate::EvaluateOnValues(
    const ValueResolver& resolver) const {
  switch (kind_) {
    case Kind::kComparison: {
      if (term_.kind == ComparisonTerm::Kind::kSimple) {
        PULSE_ASSIGN_OR_RETURN(double lhs, resolver(term_.lhs));
        double rhs = term_.rhs.constant;
        if (term_.rhs.kind == Operand::Kind::kAttribute) {
          PULSE_ASSIGN_OR_RETURN(rhs, resolver(term_.rhs.attr));
        }
        return CompareValues(lhs, term_.op, rhs);
      }
      PULSE_ASSIGN_OR_RETURN(double x1, resolver(term_.x1));
      PULSE_ASSIGN_OR_RETURN(double y1, resolver(term_.y1));
      PULSE_ASSIGN_OR_RETURN(double x2, resolver(term_.x2));
      PULSE_ASSIGN_OR_RETURN(double y2, resolver(term_.y2));
      const double dist2 =
          (x1 - x2) * (x1 - x2) + (y1 - y2) * (y1 - y2);
      return CompareValues(dist2, term_.op,
                           term_.threshold * term_.threshold);
    }
    case Kind::kAnd: {
      for (const Predicate& c : children_) {
        PULSE_ASSIGN_OR_RETURN(bool v, c.EvaluateOnValues(resolver));
        if (!v) return false;
      }
      return true;
    }
    case Kind::kOr: {
      for (const Predicate& c : children_) {
        PULSE_ASSIGN_OR_RETURN(bool v, c.EvaluateOnValues(resolver));
        if (v) return true;
      }
      return false;
    }
    case Kind::kNot: {
      PULSE_ASSIGN_OR_RETURN(bool v,
                             children_[0].EvaluateOnValues(resolver));
      return !v;
    }
  }
  return Status::Internal("unknown predicate kind");
}

std::string Predicate::ToString() const {
  switch (kind_) {
    case Kind::kComparison:
      return term_.ToString();
    case Kind::kAnd:
    case Kind::kOr: {
      std::ostringstream os;
      os << "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) os << (kind_ == Kind::kAnd ? " AND " : " OR ");
        os << children_[i].ToString();
      }
      os << ")";
      return os.str();
    }
    case Kind::kNot:
      return "NOT " + children_[0].ToString();
  }
  return "?";
}

}  // namespace pulse
