#include "engine/value.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace pulse {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

bool Value::operator<(const Value& other) const {
  if (is_string() || other.is_string()) {
    PULSE_CHECK(is_string() && other.is_string());
    return as_string() < other.as_string();
  }
  return as_double() < other.as_double();
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kInt64:
      return std::to_string(as_int64());
    case ValueType::kDouble:
      return FormatDouble(as_double());
    case ValueType::kString:
      return as_string();
  }
  return "?";
}

}  // namespace pulse
