file(REMOVE_RECURSE
  "CMakeFiles/pulse_engine.dir/engine/aggregate.cc.o"
  "CMakeFiles/pulse_engine.dir/engine/aggregate.cc.o.d"
  "CMakeFiles/pulse_engine.dir/engine/executor.cc.o"
  "CMakeFiles/pulse_engine.dir/engine/executor.cc.o.d"
  "CMakeFiles/pulse_engine.dir/engine/filter.cc.o"
  "CMakeFiles/pulse_engine.dir/engine/filter.cc.o.d"
  "CMakeFiles/pulse_engine.dir/engine/group_by.cc.o"
  "CMakeFiles/pulse_engine.dir/engine/group_by.cc.o.d"
  "CMakeFiles/pulse_engine.dir/engine/join.cc.o"
  "CMakeFiles/pulse_engine.dir/engine/join.cc.o.d"
  "CMakeFiles/pulse_engine.dir/engine/map.cc.o"
  "CMakeFiles/pulse_engine.dir/engine/map.cc.o.d"
  "CMakeFiles/pulse_engine.dir/engine/metrics.cc.o"
  "CMakeFiles/pulse_engine.dir/engine/metrics.cc.o.d"
  "CMakeFiles/pulse_engine.dir/engine/operator.cc.o"
  "CMakeFiles/pulse_engine.dir/engine/operator.cc.o.d"
  "CMakeFiles/pulse_engine.dir/engine/plan.cc.o"
  "CMakeFiles/pulse_engine.dir/engine/plan.cc.o.d"
  "CMakeFiles/pulse_engine.dir/engine/schema.cc.o"
  "CMakeFiles/pulse_engine.dir/engine/schema.cc.o.d"
  "CMakeFiles/pulse_engine.dir/engine/stream.cc.o"
  "CMakeFiles/pulse_engine.dir/engine/stream.cc.o.d"
  "CMakeFiles/pulse_engine.dir/engine/tuple.cc.o"
  "CMakeFiles/pulse_engine.dir/engine/tuple.cc.o.d"
  "CMakeFiles/pulse_engine.dir/engine/value.cc.o"
  "CMakeFiles/pulse_engine.dir/engine/value.cc.o.d"
  "libpulse_engine.a"
  "libpulse_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pulse_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
