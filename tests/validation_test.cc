#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "core/validation/bounds.h"
#include "core/validation/lineage.h"
#include "core/validation/slack.h"
#include "core/validation/splits.h"

namespace pulse {
namespace {

TEST(BoundSpec, AbsoluteAndRelativeMargins) {
  BoundSpec abs = BoundSpec::Absolute("x", 0.5);
  EXPECT_DOUBLE_EQ(abs.MarginFor(1000.0), 0.5);
  BoundSpec rel = BoundSpec::Relative("x", 0.01);
  EXPECT_DOUBLE_EQ(rel.MarginFor(50.0), 0.5);
  EXPECT_DOUBLE_EQ(rel.MarginFor(-50.0), 0.5);  // magnitude-based
}

TEST(BoundRegistry, SetTightensOnly) {
  BoundRegistry reg;
  reg.Set(1, "x", 0.5);
  reg.Set(1, "x", 0.8);  // looser: ignored
  EXPECT_DOUBLE_EQ(reg.Margin(1, "x"), 0.5);
  reg.Set(1, "x", 0.2);  // tighter: kept
  EXPECT_DOUBLE_EQ(reg.Margin(1, "x"), 0.2);
}

TEST(BoundRegistry, WildcardFallback) {
  BoundRegistry reg;
  reg.Set(BoundRegistry::kAnyKey, "x", 1.0);
  EXPECT_DOUBLE_EQ(reg.Margin(42, "x"), 1.0);
  reg.Set(42, "x", 0.25);
  EXPECT_DOUBLE_EQ(reg.Margin(42, "x"), 0.25);
  EXPECT_DOUBLE_EQ(reg.Margin(43, "x"), 1.0);
  EXPECT_TRUE(std::isinf(reg.Margin(43, "unbounded")));
}

TEST(BoundRegistry, Within) {
  BoundRegistry reg;
  reg.Set(1, "x", 0.5);
  EXPECT_TRUE(reg.Within(1, "x", 10.0, 10.4));
  EXPECT_TRUE(reg.Within(1, "x", 10.0, 9.5));
  EXPECT_FALSE(reg.Within(1, "x", 10.0, 10.6));
  // Unregistered attribute: infinite margin, always within.
  EXPECT_TRUE(reg.Within(1, "zzz", 0.0, 1e12));
}

TEST(LineageStore, RecordLookupExpire) {
  LineageStore store;
  Segment in(7, Interval::ClosedOpen(0.0, 1.0));
  in.id = 100;
  store.Record(1, Interval::ClosedOpen(0.0, 1.0), {LineageEntry{0, in}});
  store.Record(2, Interval::ClosedOpen(5.0, 6.0), {LineageEntry{0, in}});
  ASSERT_NE(store.Lookup(1), nullptr);
  EXPECT_EQ(store.Lookup(1)->at(0).input.key, 7);
  EXPECT_EQ(store.Lookup(999), nullptr);
  store.ExpireBefore(3.0);
  EXPECT_EQ(store.Lookup(1), nullptr);
  EXPECT_NE(store.Lookup(2), nullptr);
  store.Clear();
  EXPECT_EQ(store.size(), 0u);
}

TEST(NextSegmentId, MonotoneUnique) {
  const uint64_t a = NextSegmentId();
  const uint64_t b = NextSegmentId();
  EXPECT_GT(b, a);
}

SplitContext MakeContext(const Segment* out, double margin,
                         std::vector<const Segment*> inputs,
                         size_t deps = 1) {
  SplitContext ctx;
  ctx.output = out;
  ctx.attribute = "agg";
  ctx.margin = margin;
  ctx.inputs = std::move(inputs);
  ctx.input_attribute = "v";
  ctx.num_dependencies = deps;
  return ctx;
}

TEST(EquiSplit, UniformAllocation) {
  Segment out(0, Interval::ClosedOpen(0.0, 1.0));
  Segment in1(1, Interval::ClosedOpen(0.0, 1.0));
  Segment in2(2, Interval::ClosedOpen(0.0, 1.0));
  EquiSplit split;
  Result<std::vector<AllocatedBound>> allocs =
      split.Apportion(MakeContext(&out, 1.0, {&in1, &in2}, 2));
  ASSERT_TRUE(allocs.ok());
  ASSERT_EQ(allocs->size(), 2u);
  // margin / (|inputs| * |deps|) = 1 / 4.
  EXPECT_DOUBLE_EQ((*allocs)[0].margin, 0.25);
  EXPECT_DOUBLE_EQ((*allocs)[1].margin, 0.25);
  EXPECT_EQ((*allocs)[0].key, 1);
  EXPECT_EQ((*allocs)[1].key, 2);
}

TEST(EquiSplit, FailsWithoutInputs) {
  Segment out(0, Interval::ClosedOpen(0.0, 1.0));
  EquiSplit split;
  EXPECT_FALSE(split.Apportion(MakeContext(&out, 1.0, {})).ok());
}

TEST(GradientSplit, WeightsByDerivativeMagnitude) {
  Segment out(0, Interval::ClosedOpen(0.0, 10.0));
  Segment fast(1, Interval::ClosedOpen(0.0, 10.0));
  fast.set_attribute("v", Polynomial({0.0, 3.0}));  // |v'| = 3
  Segment slow(2, Interval::ClosedOpen(0.0, 10.0));
  slow.set_attribute("v", Polynomial({5.0, 1.0}));  // |v'| = 1
  GradientSplit split;
  Result<std::vector<AllocatedBound>> allocs =
      split.Apportion(MakeContext(&out, 1.0, {&fast, &slow}));
  ASSERT_TRUE(allocs.ok());
  ASSERT_EQ(allocs->size(), 2u);
  EXPECT_NEAR((*allocs)[0].margin, 0.75, 1e-9);  // 3 / (3+1)
  EXPECT_NEAR((*allocs)[1].margin, 0.25, 1e-9);
  // Conservative: shares sum to the output margin.
  EXPECT_NEAR((*allocs)[0].margin + (*allocs)[1].margin, 1.0, 1e-9);
}

TEST(GradientSplit, ConstantModelsDegradeToEquiSplit) {
  Segment out(0, Interval::ClosedOpen(0.0, 10.0));
  Segment a(1, Interval::ClosedOpen(0.0, 10.0));
  a.set_attribute("v", Polynomial({5.0}));
  Segment b(2, Interval::ClosedOpen(0.0, 10.0));
  b.set_attribute("v", Polynomial({7.0}));
  GradientSplit split;
  Result<std::vector<AllocatedBound>> allocs =
      split.Apportion(MakeContext(&out, 1.0, {&a, &b}));
  ASSERT_TRUE(allocs.ok());
  EXPECT_DOUBLE_EQ((*allocs)[0].margin, 0.5);
  EXPECT_DOUBLE_EQ((*allocs)[1].margin, 0.5);
}

TEST(UserSplit, WrapsFunction) {
  UserSplit split("biased", [](const SplitContext& ctx)
                                -> Result<std::vector<AllocatedBound>> {
    std::vector<AllocatedBound> out;
    for (const Segment* s : ctx.inputs) {
      out.push_back(
          AllocatedBound{s->key, ctx.input_attribute, ctx.margin});
    }
    return out;
  });
  EXPECT_EQ(split.name(), "biased");
  Segment out(0, Interval::ClosedOpen(0.0, 1.0));
  Segment in(3, Interval::ClosedOpen(0.0, 1.0));
  Result<std::vector<AllocatedBound>> allocs =
      split.Apportion(MakeContext(&out, 0.7, {&in}));
  ASSERT_TRUE(allocs.ok());
  EXPECT_DOUBLE_EQ((*allocs)[0].margin, 0.7);
}

TEST(AlternatingValidator, AccuracyModeUsesBounds) {
  BoundRegistry reg;
  reg.Set(1, "x", 0.5);
  AlternatingValidator v(&reg);
  EXPECT_EQ(v.mode(1), ValidationMode::kAccuracy);
  EXPECT_TRUE(v.Validate(1, "x", 10.0, 10.3));
  EXPECT_FALSE(v.Validate(1, "x", 10.0, 11.0));
  EXPECT_EQ(v.accuracy_checks(), 2u);
  EXPECT_EQ(v.violations(), 1u);
}

TEST(AlternatingValidator, SlackModeAfterNullResult) {
  BoundRegistry reg;
  reg.Set(1, "x", 0.1);  // tight accuracy bound
  AlternatingValidator v(&reg);
  v.ObserveResult(1, /*produced_output=*/false, /*slack=*/2.0);
  EXPECT_EQ(v.mode(1), ValidationMode::kSlack);
  EXPECT_DOUBLE_EQ(v.slack(1), 2.0);
  // Deviation 1.5 < slack 2.0: ignored even though it exceeds the
  // accuracy bound (paper Section IV: following a null, inputs are
  // ignored until they exceed the slack range).
  EXPECT_TRUE(v.Validate(1, "x", 10.0, 11.5));
  EXPECT_FALSE(v.Validate(1, "x", 10.0, 12.5));
  EXPECT_EQ(v.slack_checks(), 2u);
}

TEST(AlternatingValidator, FlipsBackToAccuracyOnResult) {
  BoundRegistry reg;
  reg.Set(1, "x", 0.1);
  AlternatingValidator v(&reg);
  v.ObserveResult(1, false, 5.0);
  EXPECT_EQ(v.mode(1), ValidationMode::kSlack);
  v.ObserveResult(1, true, 0.0);
  EXPECT_EQ(v.mode(1), ValidationMode::kAccuracy);
  EXPECT_FALSE(v.Validate(1, "x", 0.0, 1.0));
}

TEST(AlternatingValidator, PerKeyIndependence) {
  BoundRegistry reg;
  AlternatingValidator v(&reg);
  v.ObserveResult(1, false, 1.0);
  EXPECT_EQ(v.mode(1), ValidationMode::kSlack);
  EXPECT_EQ(v.mode(2), ValidationMode::kAccuracy);
}

TEST(AlternatingValidator, ResetCounters) {
  BoundRegistry reg;
  AlternatingValidator v(&reg);
  v.Validate(1, "x", 0.0, 0.0);
  v.ResetCounters();
  EXPECT_EQ(v.accuracy_checks(), 0u);
  EXPECT_EQ(v.violations(), 0u);
}

}  // namespace
}  // namespace pulse
