file(REMOVE_RECURSE
  "libpulse_engine.a"
)
