file(REMOVE_RECURSE
  "CMakeFiles/pulse_workload.dir/workload/ais.cc.o"
  "CMakeFiles/pulse_workload.dir/workload/ais.cc.o.d"
  "CMakeFiles/pulse_workload.dir/workload/moving_object.cc.o"
  "CMakeFiles/pulse_workload.dir/workload/moving_object.cc.o.d"
  "CMakeFiles/pulse_workload.dir/workload/nyse.cc.o"
  "CMakeFiles/pulse_workload.dir/workload/nyse.cc.o.d"
  "CMakeFiles/pulse_workload.dir/workload/queries.cc.o"
  "CMakeFiles/pulse_workload.dir/workload/queries.cc.o.d"
  "CMakeFiles/pulse_workload.dir/workload/replay.cc.o"
  "CMakeFiles/pulse_workload.dir/workload/replay.cc.o.d"
  "libpulse_workload.a"
  "libpulse_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pulse_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
