# Empty compiler generated dependencies file for linear_algebra_test.
# This may be replaced when dependencies are built.
