#ifndef PULSE_ENGINE_AGGREGATE_H_
#define PULSE_ENGINE_AGGREGATE_H_

#include <deque>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "engine/operator.h"

namespace pulse {

/// Aggregate functions of the discrete engine. Pulse's continuous
/// transform covers min/max/sum/avg; count is frequency-based and exists
/// only here (paper Section III-B, "Transformation Limitations").
enum class AggFn { kMin, kMax, kSum, kAvg, kCount };

const char* AggFnToString(AggFn fn);

/// Sliding-window specification: StreamSQL's "[size w advance s]".
/// A window closing at time c covers [c - size, c).
struct WindowSpec {
  double size = 1.0;
  double slide = 1.0;
};

/// Incremental accumulator for one open window.
struct AggState {
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  uint64_t count = 0;

  void Update(double v) {
    sum += v;
    if (v < min) min = v;
    if (v > max) max = v;
    ++count;
  }

  /// Final value under `fn`; empty windows yield NaN except count = 0.
  double Finalize(AggFn fn) const;
};

/// Event-time sliding-window aggregate over one value field.
///
/// Window k closes at origin + size + k*slide where origin is the first
/// tuple's timestamp. Each arriving tuple updates every open window whose
/// range contains it — the per-tuple cost is linear in size/slide, the
/// behaviour the paper's Fig. 7i measures for the discrete baseline.
/// Results are emitted when event time passes a window's close.
class WindowedAggregate : public Operator {
 public:
  /// `output_field` names the single output column (plus the window close
  /// time as the tuple timestamp).
  WindowedAggregate(std::string name,
                    std::shared_ptr<const Schema> input_schema,
                    WindowSpec window, AggFn fn, size_t value_field,
                    std::string output_field = "agg");

  std::shared_ptr<const Schema> output_schema() const override {
    return output_schema_;
  }

  Status Process(size_t port, const Tuple& input,
                 std::vector<Tuple>* out) override;
  Status AdvanceTime(double t, std::vector<Tuple>* out) override;
  Status Flush(std::vector<Tuple>* out) override;

  size_t open_windows() const { return windows_.size(); }

 private:
  struct OpenWindow {
    double close = 0.0;
    AggState state;
  };

  // Creates windows so that every window containing `t` exists.
  void EnsureWindows(double t);
  // Emits and retires windows whose close time is <= `t`.
  void CloseThrough(double t, std::vector<Tuple>* out);
  void EmitWindow(const OpenWindow& w, std::vector<Tuple>* out);

  std::shared_ptr<const Schema> input_schema_;
  std::shared_ptr<const Schema> output_schema_;
  WindowSpec window_;
  AggFn fn_;
  size_t value_field_;

  bool have_origin_ = false;
  double next_close_ = 0.0;  // close time of the next window to create
  std::deque<OpenWindow> windows_;
};

}  // namespace pulse

#endif  // PULSE_ENGINE_AGGREGATE_H_
