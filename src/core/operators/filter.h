#ifndef PULSE_CORE_OPERATORS_FILTER_H_
#define PULSE_CORE_OPERATORS_FILTER_H_

#include <string>
#include <vector>

#include "core/operators/pulse_operator.h"
#include "core/predicate.h"

namespace pulse {

/// Continuous-time filter (paper Fig. 3, row "Filter"): for each input
/// segment it instantiates the equation system D = [x_i - c_i], solves
/// D t R 0 within the segment's validity range, and emits the segment
/// restricted to the solution time ranges — {(t, x_i) | D t R 0}.
///
/// The filter is stateless: the system is built from the contents of the
/// incoming segment alone (Section III-A).
class PulseFilter : public PulseOperator {
 public:
  PulseFilter(std::string name, Predicate predicate,
              RootMethod method = RootMethod::kAuto);

  Status Process(size_t port, const Segment& segment,
                 SegmentBatch* out) override;

  Result<std::vector<AllocatedBound>> InvertBound(
      const Segment& output, const std::string& attribute, double margin,
      const SplitHeuristic& split) const override;

  /// Slack of the filter's system for `segment` (paper Section IV):
  /// min_t ||D t||_inf over the segment range. Only defined for
  /// conjunctive predicates; non-conjunctive predicates return 0 so the
  /// caller always revalidates.
  Result<double> ComputeSlack(const Segment& segment) const;

  const Predicate& predicate() const { return predicate_; }

 private:
  Predicate predicate_;
  RootMethod method_;
  // Per-push scratch for the conjunctive solve path, reused across
  // pushes so system construction and solution collection stop
  // allocating once warm. Process runs on the pushing thread only.
  EquationSystemTask task_scratch_;
  std::vector<IntervalSet> solution_scratch_;
};

/// Builds the resolver mapping kLeft attribute references onto one
/// segment's models (shared by filter and aggregate operators).
AttrResolver MakeUnaryResolver(const Segment& segment);

}  // namespace pulse

#endif  // PULSE_CORE_OPERATORS_FILTER_H_
