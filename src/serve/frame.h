#ifndef PULSE_SERVE_FRAME_H_
#define PULSE_SERVE_FRAME_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "engine/tuple.h"
#include "model/segment.h"
#include "util/result.h"

namespace pulse {
namespace serve {

/// Frame types of the serving wire protocol (docs/SERVING.md documents
/// the full format). Client->server frames carry stream control and
/// data; server->client frames carry outputs, flow control, and errors.
enum class FrameType : uint8_t {
  /// Client->server: protocol handshake. Payload: u32 protocol version.
  kHello = 1,
  /// Client->server: binds a client-chosen stream id to a declared
  /// stream name. Payload: u32 stream_id + string name.
  kOpenStream = 2,
  /// Client->server: one tuple for a bound stream.
  kTuple = 3,
  /// Client->server: a batch of tuples for one bound stream.
  kTupleBatch = 4,
  /// Client->server: one pre-fitted model segment (historical replay
  /// push path; the serving analogue of ProcessSegment).
  kSegment = 5,
  /// Server->client: flow-control notification (pause/resume/drop/shed)
  /// for one stream. Carries the affected item count.
  kFlow = 6,
  /// Server->client: one query output segment.
  kOutputSegment = 7,
  /// Server->client: one sampled query output tuple.
  kOutputTuple = 8,
  /// Client->server: stop accepting input, process everything admitted,
  /// deliver all outputs, then answer with kDrained.
  kDrain = 9,
  /// Server->client: drain complete; every admitted item is reflected
  /// in the delivered outputs.
  kDrained = 10,
  /// Server->client: fatal session error. Payload: string message.
  kError = 11,
  /// Either direction: orderly goodbye; the peer closes the transport.
  kBye = 12,
  /// Server->client: a provisional answer emitted under a widened
  /// precision budget (docs/PRECISION.md). Payload: u64 lineage id,
  /// f64 bound, segment. The answer is advisory until a later kConfirm
  /// or kRetract carries the same lineage id.
  kProvisional = 13,
  /// Server->client: the provisional with this lineage id matched the
  /// exact computation within its bound. Payload: u64 lineage id.
  kConfirm = 14,
  /// Server->client: the provisional with this lineage id deviated (or
  /// the exact computation never produced it). Payload: u64 lineage id,
  /// u8 reason (0 = deviation, 1 = spurious).
  kRetract = 15,
};

const char* FrameTypeToString(FrameType type);

/// Flow-control event kinds carried by kFlow frames.
enum class FlowEvent : uint8_t {
  /// The stream's queue crossed its high watermark; a kBlock-policy
  /// producer is (or would be) blocked.
  kPaused = 0,
  /// The queue fell back below the low watermark.
  kResumed = 1,
  /// kDropOldest policy evicted `count` queued items to admit new ones.
  kDroppedOldest = 2,
  /// Admission shed `count` arriving items (kShed policy or overload
  /// controller); they were NOT processed.
  kShed = 3,
};

const char* FlowEventToString(FlowEvent event);

/// Current protocol version, carried by kHello.
inline constexpr uint32_t kProtocolVersion = 1;

/// One decoded protocol frame. Which members are meaningful depends on
/// `type`; unused members stay default-constructed.
struct Frame {
  FrameType type = FrameType::kHello;
  /// kOpenStream / kTuple / kTupleBatch / kSegment / kFlow.
  uint32_t stream_id = 0;
  /// kOpenStream: stream name. kError: message.
  std::string text;
  /// kHello: protocol version.
  uint32_t version = kProtocolVersion;
  /// kTuple (size 1) / kTupleBatch / kOutputTuple (size 1).
  std::vector<Tuple> tuples;
  /// kSegment (size 1) / kOutputSegment (size 1).
  std::vector<Segment> segments;
  /// kFlow.
  FlowEvent flow_event = FlowEvent::kPaused;
  uint64_t flow_count = 0;
  /// kProvisional / kConfirm / kRetract: lineage id (> 0).
  uint64_t lineage = 0;
  /// kProvisional: the emitting tier's output bound.
  double bound = 0.0;
  /// kRetract: reason code (core/precision.h RetractReason values).
  uint8_t retract_reason = 0;

  static Frame Hello();
  static Frame OpenStream(uint32_t stream_id, std::string name);
  static Frame OneTuple(uint32_t stream_id, Tuple tuple);
  static Frame TupleBatch(uint32_t stream_id, std::vector<Tuple> tuples);
  static Frame OneSegment(uint32_t stream_id, Segment segment);
  static Frame Flow(uint32_t stream_id, FlowEvent event, uint64_t count);
  static Frame OutputSegment(Segment segment);
  static Frame OutputTuple(Tuple tuple);
  static Frame Drain();
  static Frame Drained();
  static Frame Error(std::string message);
  static Frame Bye();
  static Frame Provisional(uint64_t lineage, double bound, Segment segment);
  static Frame Confirm(uint64_t lineage);
  static Frame Retract(uint64_t lineage, uint8_t reason);
};

/// Decoder guards. A frame whose declared payload length exceeds
/// `max_frame_bytes` is rejected before buffering (a garbage length
/// prefix must not make the reader allocate gigabytes).
struct DecodeLimits {
  size_t max_frame_bytes = 4u << 20;  // 4 MiB
};

/// Appends the length-prefixed wire encoding of `frame` to `out`.
/// Wire format: u32-LE payload length, then the payload
/// (u8 frame type + type-specific body); all integers little-endian,
/// doubles as IEEE-754 bit patterns. See docs/SERVING.md.
void EncodeFrame(const Frame& frame, std::string* out);

/// Convenience: the encoding of one frame as a fresh buffer.
std::string EncodeFrameToString(const Frame& frame);

/// Incremental frame decoder: feed arbitrary byte chunks (as they arrive
/// from a socket), pull complete frames. Decode errors are sticky — a
/// malformed stream cannot be resynchronized, matching TCP semantics.
class FrameReader {
 public:
  explicit FrameReader(DecodeLimits limits = {});

  /// Appends received bytes to the internal buffer. Fails when a
  /// previously detected decode error made the stream unusable or the
  /// pending frame exceeds the size limit.
  Status Feed(const char* data, size_t n);
  Status Feed(const std::string& bytes) {
    return Feed(bytes.data(), bytes.size());
  }

  /// Extracts the next complete frame; nullopt when more bytes are
  /// needed. A truncated or malformed payload fails (and poisons the
  /// reader).
  Result<std::optional<Frame>> Next();

  /// Bytes buffered but not yet consumed by Next().
  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  DecodeLimits limits_;
  std::string buffer_;
  size_t consumed_ = 0;
  bool poisoned_ = false;
};

}  // namespace serve
}  // namespace pulse

#endif  // PULSE_SERVE_FRAME_H_
