// Bit-identity contract of the batched SoA solver kernels: every vector
// tier available on this host must produce byte-for-byte the results of
// the scalar reference (which itself is pinned to roots.cc), across all
// degrees, every remainder lane count, and adversarial coefficient
// values (NaN, ±inf, denormals, signed zeros, roots at endpoints).
// Comparisons are on bit patterns, never epsilon closeness.

#include "math/batch_kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "core/equation_system.h"
#include "math/polynomial.h"
#include "math/roots.h"
#include "util/cpu_features.h"
#include "util/rng.h"

namespace pulse {
namespace {

uint64_t Bits(double x) {
  uint64_t u;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

// Distinct kernel tables reachable on this host (scalar always; vector
// tiers only when the hardware supports them, so no illegal
// instructions on weaker machines).
std::vector<const BatchKernels*> TiersUnderTest() {
  std::vector<const BatchKernels*> tiers = {&ScalarBatchKernels()};
  const int detected = static_cast<int>(DetectedSimdLevel());
  for (SimdLevel level :
       {SimdLevel::kSse2, SimdLevel::kNeon, SimdLevel::kAvx2}) {
    if (static_cast<int>(level) > detected) continue;
    const BatchKernels* k = &BatchKernelsFor(level);
    bool seen = false;
    for (const BatchKernels* t : tiers) seen = seen || (t == k);
    if (!seen) tiers.push_back(k);
  }
  return tiers;
}

// Adversarial values woven into every random column.
const double kSpecials[] = {
    0.0,
    -0.0,
    std::numeric_limits<double>::quiet_NaN(),
    std::numeric_limits<double>::infinity(),
    -std::numeric_limits<double>::infinity(),
    std::numeric_limits<double>::denorm_min(),
    -std::numeric_limits<double>::denorm_min(),
    std::numeric_limits<double>::min(),
    std::numeric_limits<double>::max(),
    1.0,
    -1.0,
    1e-15,
    -3.5,
};

std::vector<double> RandomColumn(Rng* rng, size_t n) {
  std::vector<double> col(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng->Bernoulli(0.25)) {
      col[i] = kSpecials[rng->UniformInt(
          0, static_cast<int64_t>(std::size(kSpecials)) - 1)];
    } else {
      // Span many magnitudes so cancellation/overflow paths get hit.
      const double mag = std::pow(10.0, rng->Uniform(-12.0, 12.0));
      col[i] = rng->Uniform(-1.0, 1.0) * mag;
    }
  }
  return col;
}

TEST(BatchKernelsTest, HornerMatchesScalarForAllDegreesAndRemainders) {
  Rng rng(7);
  const auto tiers = TiersUnderTest();
  for (size_t degree = 0; degree <= 7; ++degree) {
    // n from 1 to 2 * max lane width + 1 covers every remainder count
    // for 2-lane (SSE2/NEON) and 4-lane (AVX2) kernels.
    for (size_t n = 1; n <= 9; ++n) {
      std::vector<std::vector<double>> cols;
      std::vector<const double*> col_ptrs;
      for (size_t j = 0; j <= degree; ++j) {
        cols.push_back(RandomColumn(&rng, n));
        col_ptrs.push_back(cols.back().data());
      }
      const std::vector<double> t = RandomColumn(&rng, n);
      std::vector<double> expected(n);
      ScalarBatchKernels().horner(col_ptrs.data(), degree, t.data(),
                                  expected.data(), n);
      for (const BatchKernels* k : tiers) {
        std::vector<double> got(n, 12345.0);
        k->horner(col_ptrs.data(), degree, t.data(), got.data(), n);
        for (size_t i = 0; i < n; ++i) {
          EXPECT_EQ(Bits(expected[i]), Bits(got[i]))
              << k->name << " degree=" << degree << " n=" << n
              << " lane=" << i << " t=" << t[i];
        }
      }
    }
  }
}

TEST(BatchKernelsTest, HornerMatchesPolynomialEvaluate) {
  Rng rng(11);
  for (size_t degree = 0; degree <= 7; ++degree) {
    const size_t n = 8;
    std::vector<std::vector<double>> cols;
    std::vector<const double*> col_ptrs;
    for (size_t j = 0; j <= degree; ++j) {
      cols.push_back(RandomColumn(&rng, n));
      // Finite top coefficient above the trim epsilon so Polynomial
      // keeps the intended degree.
      if (j == degree) {
        for (double& v : cols.back()) {
          if (!std::isfinite(v) ||
              std::abs(v) <= Polynomial::kCoefficientEpsilon) {
            v = 1.5;
          }
        }
      }
      col_ptrs.push_back(cols.back().data());
    }
    const std::vector<double> t = RandomColumn(&rng, n);
    std::vector<double> got(n);
    ScalarBatchKernels().horner(col_ptrs.data(), degree, t.data(),
                                got.data(), n);
    for (size_t i = 0; i < n; ++i) {
      std::vector<double> coeffs(degree + 1);
      for (size_t j = 0; j <= degree; ++j) coeffs[j] = cols[j][i];
      const Polynomial p(coeffs.data(), coeffs.size());
      ASSERT_EQ(p.degree(), degree);
      EXPECT_EQ(Bits(p.Evaluate(t[i])), Bits(got[i]))
          << "degree=" << degree << " lane=" << i;
    }
  }
}

TEST(BatchKernelsTest, LinearRootsBitIdentical) {
  Rng rng(13);
  const auto tiers = TiersUnderTest();
  for (size_t n = 1; n <= 9; ++n) {
    for (int rep = 0; rep < 50; ++rep) {
      const std::vector<double> c0 = RandomColumn(&rng, n);
      const std::vector<double> c1 = RandomColumn(&rng, n);
      std::vector<double> expected(n);
      ScalarBatchKernels().linear_roots(c0.data(), c1.data(),
                                        expected.data(), n);
      for (const BatchKernels* k : tiers) {
        std::vector<double> got(n, 777.0);
        k->linear_roots(c0.data(), c1.data(), got.data(), n);
        for (size_t i = 0; i < n; ++i) {
          EXPECT_EQ(Bits(expected[i]), Bits(got[i]))
              << k->name << " n=" << n << " lane=" << i << " c0=" << c0[i]
              << " c1=" << c1[i];
        }
      }
    }
  }
}

void CheckQuadraticBatch(const std::vector<double>& c0,
                         const std::vector<double>& c1,
                         const std::vector<double>& c2,
                         const std::string& tag) {
  const size_t n = c0.size();
  std::vector<double> er0(n), er1(n);
  std::vector<uint8_t> ecount(n);
  ScalarBatchKernels().quadratic_roots(c0.data(), c1.data(), c2.data(),
                                       er0.data(), er1.data(),
                                       ecount.data(), n);
  // Scalar reference honors the unused-slot contract.
  for (size_t i = 0; i < n; ++i) {
    if (ecount[i] < 2) {
      EXPECT_EQ(Bits(er1[i]), Bits(0.0)) << tag << i;
    }
    if (ecount[i] < 1) {
      EXPECT_EQ(Bits(er0[i]), Bits(0.0)) << tag << i;
    }
  }
  for (const BatchKernels* k : TiersUnderTest()) {
    std::vector<double> r0(n, 777.0), r1(n, 777.0);
    std::vector<uint8_t> count(n, 99);
    k->quadratic_roots(c0.data(), c1.data(), c2.data(), r0.data(),
                       r1.data(), count.data(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(ecount[i], count[i])
          << tag << k->name << " lane=" << i << " c=(" << c0[i] << ","
          << c1[i] << "," << c2[i] << ")";
      EXPECT_EQ(Bits(er0[i]), Bits(r0[i]))
          << tag << k->name << " lane=" << i << " c=(" << c0[i] << ","
          << c1[i] << "," << c2[i] << ")";
      EXPECT_EQ(Bits(er1[i]), Bits(r1[i]))
          << tag << k->name << " lane=" << i << " c=(" << c0[i] << ","
          << c1[i] << "," << c2[i] << ")";
    }
  }
}

TEST(BatchKernelsTest, QuadraticRootsBitIdenticalRandom) {
  Rng rng(17);
  for (size_t n = 1; n <= 9; ++n) {
    for (int rep = 0; rep < 50; ++rep) {
      CheckQuadraticBatch(RandomColumn(&rng, n), RandomColumn(&rng, n),
                          RandomColumn(&rng, n), "random ");
    }
  }
}

TEST(BatchKernelsTest, QuadraticRootsBitIdenticalCraftedBranches) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const double den = std::numeric_limits<double>::denorm_min();
  // One lane per scalar branch: disc < 0, disc == 0 (double root),
  // disc == -0.0, disc > 0 both root orders, NaN disc, inf coefficients,
  // denormal leading coefficient, signed-zero b.
  const std::vector<double> c0 = {1.0, 1.0, 0.0, -2.0, 3.0, nan, 1.0,
                                  den, -0.0, 4.0, 0.0};
  const std::vector<double> c1 = {0.0, -2.0, 0.0, 1.0, -7.0, 1.0, inf,
                                  1.0, 0.0, -4.0, -0.0};
  const std::vector<double> c2 = {1.0, 1.0, 1.0, 1.0, 2.0, 1.0, 1.0,
                                  den, 1.0, 1.0, 1.0};
  CheckQuadraticBatch(c0, c1, c2, "crafted ");
}

TEST(BatchKernelsTest, CubicRootsBitIdentical) {
  Rng rng(19);
  const auto tiers = TiersUnderTest();
  for (size_t n = 1; n <= 9; ++n) {
    const std::vector<double> c0 = RandomColumn(&rng, n);
    const std::vector<double> c1 = RandomColumn(&rng, n);
    const std::vector<double> c2 = RandomColumn(&rng, n);
    const std::vector<double> c3 = RandomColumn(&rng, n);
    std::vector<double> er0(n), er1(n), er2(n);
    std::vector<uint8_t> ecount(n);
    ScalarBatchKernels().cubic_roots(c0.data(), c1.data(), c2.data(),
                                     c3.data(), er0.data(), er1.data(),
                                     er2.data(), ecount.data(), n);
    for (const BatchKernels* k : tiers) {
      std::vector<double> r0(n), r1(n), r2(n);
      std::vector<uint8_t> count(n);
      k->cubic_roots(c0.data(), c1.data(), c2.data(), c3.data(), r0.data(),
                     r1.data(), r2.data(), count.data(), n);
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(ecount[i], count[i]) << k->name << " lane=" << i;
        EXPECT_EQ(Bits(er0[i]), Bits(r0[i])) << k->name << " lane=" << i;
        EXPECT_EQ(Bits(er1[i]), Bits(r1[i])) << k->name << " lane=" << i;
        EXPECT_EQ(Bits(er2[i]), Bits(r2[i])) << k->name << " lane=" << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end: the batched SolveSystems gather step must yield interval
// sets bit-identical to the forced-scalar dispatch, including roots that
// land exactly on domain endpoints.
// ---------------------------------------------------------------------------

void ExpectBitIdenticalSets(const IntervalSet& a, const IntervalSet& b,
                            const std::string& tag) {
  ASSERT_EQ(a.size(), b.size()) << tag;
  for (size_t i = 0; i < a.size(); ++i) {
    const Interval& x = a.intervals()[i];
    const Interval& y = b.intervals()[i];
    EXPECT_EQ(Bits(x.lo), Bits(y.lo)) << tag << " interval " << i;
    EXPECT_EQ(Bits(x.hi), Bits(y.hi)) << tag << " interval " << i;
    EXPECT_EQ(x.lo_open, y.lo_open) << tag << " interval " << i;
    EXPECT_EQ(x.hi_open, y.hi_open) << tag << " interval " << i;
  }
}

TEST(BatchKernelsTest, SolveSystemsBitIdenticalAcrossDispatch) {
  Rng rng(23);
  const CmpOp ops[] = {CmpOp::kLt, CmpOp::kLe, CmpOp::kEq,
                       CmpOp::kNe, CmpOp::kGe, CmpOp::kGt};
  std::vector<EquationSystemTask> tasks;
  for (int i = 0; i < 200; ++i) {
    EquationSystemTask task;
    task.domain = Interval{rng.Uniform(-5.0, 0.0), rng.Uniform(0.0, 5.0),
                           rng.Bernoulli(0.2), rng.Bernoulli(0.2)};
    const int rows = static_cast<int>(rng.UniformInt(1, 3));
    for (int r = 0; r < rows; ++r) {
      const int degree = static_cast<int>(rng.UniformInt(0, 4));
      std::vector<double> coeffs(degree + 1);
      for (double& c : coeffs) c = rng.Uniform(-4.0, 4.0);
      DifferenceEquation row;
      row.diff = Polynomial(coeffs.data(), coeffs.size());
      row.op = ops[rng.UniformInt(0, 5)];
      task.system.AddRow(std::move(row));
    }
    tasks.push_back(std::move(task));
  }
  // Roots exactly at domain endpoints: (t - lo) * (t - hi) over [lo, hi].
  for (const CmpOp op : ops) {
    EquationSystemTask task;
    task.domain = Interval{-2.0, 3.0, false, false};
    DifferenceEquation row;
    row.diff = Polynomial{-6.0, -1.0, 1.0};  // (t + 2)(t - 3)
    row.op = op;
    task.system.AddRow(std::move(row));
    tasks.push_back(std::move(task));
    EquationSystemTask tangent;
    tangent.domain = Interval{0.0, 4.0, false, false};
    DifferenceEquation trow;
    trow.diff = Polynomial{4.0, -4.0, 1.0};  // (t - 2)^2
    trow.op = op;
    tangent.system.AddRow(std::move(trow));
    tasks.push_back(std::move(tangent));
  }

  SetSimdOverrideForTesting(SimdLevel::kScalar);
  std::vector<IntervalSet> scalar_out;
  SolveSystemsInto(tasks.data(), tasks.size(), RootMethod::kAuto,
                   /*pool=*/nullptr, /*cache=*/nullptr, &scalar_out);
  SetSimdOverrideForTesting(std::nullopt);
  std::vector<IntervalSet> simd_out;
  SolveSystemsInto(tasks.data(), tasks.size(), RootMethod::kAuto,
                   /*pool=*/nullptr, /*cache=*/nullptr, &simd_out);

  ASSERT_EQ(scalar_out.size(), simd_out.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    ExpectBitIdenticalSets(scalar_out[i], simd_out[i],
                           "task " + std::to_string(i));
  }
}

TEST(BatchKernelsTest, DispatchHonorsOverride) {
  SetSimdOverrideForTesting(SimdLevel::kScalar);
  EXPECT_STREQ("scalar", ActiveBatchKernels().name);
  EXPECT_EQ(SimdLevel::kScalar, ActiveSimdLevel());
  SetSimdOverrideForTesting(std::nullopt);
  EXPECT_STREQ(SimdLevelName(ActiveSimdLevel()), ActiveBatchKernels().name);
  // Requesting a tier above the hardware clamps instead of crashing.
  SetSimdOverrideForTesting(SimdLevel::kAvx2);
  EXPECT_LE(static_cast<int>(ActiveSimdLevel()),
            static_cast<int>(DetectedSimdLevel()));
  SetSimdOverrideForTesting(std::nullopt);
}

}  // namespace
}  // namespace pulse
