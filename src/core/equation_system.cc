#include "core/equation_system.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "core/solve_cache.h"
#include "obs/span.h"
#include "util/thread_pool.h"

namespace pulse {

std::string DifferenceEquation::ToString() const {
  return diff.ToString() + " " + CmpOpToString(op) + " 0";
}

DifferenceEquation MakeDifferenceEquation(Polynomial lhs, CmpOp op,
                                          const Polynomial& rhs) {
  lhs.SubInPlace(rhs);
  return DifferenceEquation{std::move(lhs), op};
}

size_t EquationSystem::Degree() const {
  size_t d = 0;
  for (const DifferenceEquation& row : rows_) {
    d = std::max(d, row.diff.degree());
  }
  return d;
}

Matrix EquationSystem::CoefficientMatrix() const {
  const size_t cols = Degree() + 1;
  Matrix d(rows_.size(), cols);
  for (size_t r = 0; r < rows_.size(); ++r) {
    for (size_t c = 0; c < cols; ++c) {
      d.At(r, c) = rows_[r].diff.coeff(c);
    }
  }
  return d;
}

IntervalSet EquationSystem::Solve(const Interval& domain,
                                  RootMethod method) const {
  SolveScratch scratch;
  IntervalSet solution;
  SolveInto(domain, method, &scratch, nullptr, &solution);
  return solution;
}

void EquationSystem::SolveInto(const Interval& domain, RootMethod method,
                               SolveScratch* scratch, SolveCache* cache,
                               IntervalSet* out) const {
  if (domain.IsEmpty()) {
    out->Clear();
    return;
  }
  if (rows_.empty()) {
    out->AssignInterval(domain);
    return;
  }
  // The first row solves directly into *out (SolveComparisonInto clips to
  // the domain, so out == domain ∩ row0 with no explicit intersection);
  // later rows solve into the scratch set and intersect in.
  bool first = true;
  for (const DifferenceEquation& row : rows_) {
    IntervalSet* target = first ? out : &scratch->row_solution;
    const bool hit = cache != nullptr &&
                     cache->Lookup(row.diff, row.op, domain, method, target);
    if (!hit) {
      SolveComparisonInto(row.diff, row.op, domain, method, &scratch->roots,
                          target);
      if (cache != nullptr) {
        cache->Insert(row.diff, row.op, domain, method, *target);
      }
    }
    if (!first) {
      out->IntersectWith(scratch->row_solution,
                         &scratch->roots.interval_scratch);
    }
    first = false;
    if (out->IsEmpty()) break;
  }
}

bool EquationSystem::QualifiesForLinearEquality() const {
  if (rows_.empty()) return false;
  for (const DifferenceEquation& row : rows_) {
    if (row.op != CmpOp::kEq || row.diff.degree() > 1) return false;
  }
  return true;
}

Result<double> EquationSystem::SolveLinearEquality(
    const Interval& domain) const {
  if (!QualifiesForLinearEquality()) {
    return Status::FailedPrecondition(
        "system is not all-equality degree <= 1");
  }
  // Stack the rows as c1 * t = -c0 and solve by (trivial 1-unknown)
  // elimination; rows with c1 == 0 are pure consistency constraints.
  bool have_t = false;
  double t = 0.0;
  for (const DifferenceEquation& row : rows_) {
    const double c0 = row.diff.coeff(0);
    const double c1 = row.diff.coeff(1);
    if (std::abs(c1) <= Polynomial::kCoefficientEpsilon) {
      if (std::abs(c0) > kRootTolerance) {
        return Status::NotFound("inconsistent constant equality row");
      }
      continue;  // 0 = 0: no constraint
    }
    const double cand = -c0 / c1;
    if (!have_t) {
      t = cand;
      have_t = true;
    } else if (std::abs(cand - t) > kRootTolerance *
                                        std::max(1.0, std::abs(t))) {
      return Status::NotFound("equality rows have no common solution");
    }
  }
  if (!have_t) {
    // Every row was 0 = 0: any time in the domain works; pick its start.
    if (domain.IsEmpty()) return Status::NotFound("empty domain");
    return domain.lo;
  }
  if (!domain.Contains(t)) {
    return Status::NotFound("solution outside domain");
  }
  return t;
}

double EquationSystem::Slack(const Interval& domain) const {
  if (rows_.empty()) return 0.0;
  if (domain.IsEmpty()) return std::numeric_limits<double>::infinity();

  // Candidate minimizers of max_i |p_i(t)|: domain endpoints, roots and
  // derivative roots of each row, and pairwise crossings |p_i| = |p_j|
  // (roots of p_i - p_j and p_i + p_j).
  std::vector<double> candidates = {domain.lo, domain.hi};
  auto add_roots = [&](const Polynomial& p) {
    for (double r : FindRealRoots(p, domain.lo, domain.hi)) {
      candidates.push_back(r);
    }
  };
  for (const DifferenceEquation& row : rows_) {
    add_roots(row.diff);
    add_roots(row.diff.Derivative());
  }
  for (size_t i = 0; i < rows_.size(); ++i) {
    for (size_t j = i + 1; j < rows_.size(); ++j) {
      add_roots(rows_[i].diff - rows_[j].diff);
      add_roots(rows_[i].diff + rows_[j].diff);
    }
  }

  double best = std::numeric_limits<double>::infinity();
  for (double t : candidates) {
    if (t < domain.lo || t > domain.hi) continue;
    double max_row = 0.0;
    for (const DifferenceEquation& row : rows_) {
      max_row = std::max(max_row, std::abs(row.diff.Evaluate(t)));
    }
    best = std::min(best, max_row);
  }
  return best;
}

Status SolveSystemsInto(const EquationSystemTask* tasks, size_t n,
                        RootMethod method, ThreadPool* pool,
                        SolveCache* cache,
                        std::vector<IntervalSet>* solutions) {
  PULSE_SPAN("solve/batch");
  solutions->resize(n);
  auto solve_one = [&](size_t i) -> Status {
    // Per-thread scratch: warm buffers across tasks and batches, and no
    // sharing between workers (TSan-clean under ParallelFor).
    static thread_local SolveScratch scratch;
    tasks[i].system.SolveInto(tasks[i].domain, method, &scratch, cache,
                              &(*solutions)[i]);
    return Status::OK();
  };
  if (pool != nullptr && pool->num_threads() > 1 && n > 1) {
    PULSE_RETURN_IF_ERROR(pool->ParallelFor(n, solve_one));
  } else {
    for (size_t i = 0; i < n; ++i) {
      PULSE_RETURN_IF_ERROR(solve_one(i));
    }
  }
  return Status::OK();
}

Result<std::vector<IntervalSet>> SolveSystems(
    const std::vector<EquationSystemTask>& tasks, RootMethod method,
    ThreadPool* pool, SolveCache* cache) {
  std::vector<IntervalSet> solutions;
  PULSE_RETURN_IF_ERROR(SolveSystemsInto(tasks.data(), tasks.size(), method,
                                         pool, cache, &solutions));
  return solutions;
}

std::string EquationSystem::ToString() const {
  std::ostringstream os;
  os << "EquationSystem{";
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (i > 0) os << "; ";
    os << rows_[i].ToString();
  }
  os << "}";
  return os.str();
}

}  // namespace pulse
