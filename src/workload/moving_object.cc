#include "workload/moving_object.h"

#include <cmath>

#include "util/logging.h"

namespace pulse {

namespace {
constexpr double kTwoPi = 6.28318530717958647692;
}  // namespace

MovingObjectGenerator::MovingObjectGenerator(MovingObjectOptions options)
    : options_(options), rng_(options.seed) {
  PULSE_CHECK(options_.num_objects > 0);
  PULSE_CHECK(options_.tuple_rate > 0.0);
  PULSE_CHECK(options_.tuples_per_segment > 0);
  now_ = options_.start_time;
  objects_.resize(options_.num_objects);
  for (ObjectState& obj : objects_) {
    obj.x = rng_.Uniform(0.0, options_.area);
    obj.y = rng_.Uniform(0.0, options_.area);
    obj.last_update = now_;
    Retarget(&obj);
  }
}

std::shared_ptr<const Schema> MovingObjectGenerator::TupleSchema() {
  return Schema::Make({{"id", ValueType::kInt64},
                       {"x", ValueType::kDouble},
                       {"y", ValueType::kDouble},
                       {"vx", ValueType::kDouble},
                       {"vy", ValueType::kDouble}});
}

StreamSpec MovingObjectGenerator::MakeStreamSpec(std::string name,
                                                 double segment_horizon) {
  StreamSpec spec;
  spec.name = std::move(name);
  spec.schema = TupleSchema();
  spec.key_field = "id";
  spec.models = {{"x", {"x", "vx"}}, {"y", {"y", "vy"}}};
  spec.segment_horizon = segment_horizon;
  return spec;
}

void MovingObjectGenerator::Retarget(ObjectState* obj) {
  const double angle = rng_.Uniform(0.0, kTwoPi);
  const double speed = options_.speed * rng_.Uniform(0.5, 1.5);
  obj->vx = speed * std::cos(angle);
  obj->vy = speed * std::sin(angle);
  obj->samples_since_turn = 0;
}

void MovingObjectGenerator::AdvanceObject(ObjectState* obj, double t) {
  const double dt = t - obj->last_update;
  obj->x += obj->vx * dt;
  obj->y += obj->vy * dt;
  obj->last_update = t;
  // Reflect at the world boundary, flipping velocity.
  if (obj->x < 0.0) {
    obj->x = -obj->x;
    obj->vx = -obj->vx;
  } else if (obj->x > options_.area) {
    obj->x = 2.0 * options_.area - obj->x;
    obj->vx = -obj->vx;
  }
  if (obj->y < 0.0) {
    obj->y = -obj->y;
    obj->vy = -obj->vy;
  } else if (obj->y > options_.area) {
    obj->y = 2.0 * options_.area - obj->y;
    obj->vy = -obj->vy;
  }
}

Tuple MovingObjectGenerator::NextTuple() {
  const size_t idx = next_object_;
  next_object_ = (next_object_ + 1) % objects_.size();
  ObjectState& obj = objects_[idx];
  AdvanceObject(&obj, now_);
  if (obj.samples_since_turn >= options_.tuples_per_segment) {
    Retarget(&obj);
  }
  ++obj.samples_since_turn;

  Tuple t;
  t.timestamp = now_;
  const double nx = options_.noise > 0.0
                        ? rng_.Gaussian(0.0, options_.noise)
                        : 0.0;
  const double ny = options_.noise > 0.0
                        ? rng_.Gaussian(0.0, options_.noise)
                        : 0.0;
  t.values = {Value(static_cast<int64_t>(idx)), Value(obj.x + nx),
              Value(obj.y + ny), Value(obj.vx), Value(obj.vy)};
  now_ += 1.0 / options_.tuple_rate;
  return t;
}

std::vector<Tuple> MovingObjectGenerator::Generate(size_t n) {
  std::vector<Tuple> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(NextTuple());
  return out;
}

}  // namespace pulse
