#include "math/roots.h"

#include <algorithm>
#include <cmath>

#include "math/roots_internal.h"
#include "util/logging.h"

namespace pulse {

namespace roots_internal {

namespace {
constexpr double kPi = 3.14159265358979323846;
}  // namespace

void DedupeRoots(std::vector<double>* roots) {
  std::sort(roots->begin(), roots->end());
  auto last = std::unique(roots->begin(), roots->end(),
                          [](double a, double b) {
                            return std::abs(a - b) <= kRootTolerance;
                          });
  roots->erase(last, roots->end());
}

void ClipRoots(double lo, double hi, std::vector<double>* roots) {
  size_t w = 0;
  for (double r : *roots) {
    if (r < lo - kRootTolerance || r > hi + kRootTolerance) continue;
    (*roots)[w++] = std::clamp(r, lo, hi);
  }
  roots->resize(w);
}

int LinearRoot(double c0, double c1, double* r) {
  r[0] = -c0 / c1;
  return 1;
}

int QuadraticRoots(double c0, double c1, double c2, double* r) {
  const double a = c2;
  const double b = c1;
  const double c = c0;
  const double disc = b * b - 4.0 * a * c;
  if (disc < 0.0) return 0;
  if (disc == 0.0) {
    r[0] = -b / (2.0 * a);
    return 1;
  }
  // Numerically stable quadratic formula (avoid cancellation).
  const double q = -0.5 * (b + std::copysign(std::sqrt(disc), b));
  r[0] = q / a;
  if (q != 0.0) {
    r[1] = c / q;
  } else {
    r[1] = 0.0;
  }
  return 2;
}

int CubicRoots(double c0, double c1, double c2, double c3, double* out) {
  // Cubic: normalize to t^3 + a2 t^2 + a1 t + a0, depress, then use the
  // trigonometric method (three real roots) or Cardano (one real root).
  const double inv = 1.0 / c3;
  const double a2 = c2 * inv;
  const double a1 = c1 * inv;
  const double a0 = c0 * inv;
  const double shift = a2 / 3.0;
  const double q = a1 - a2 * a2 / 3.0;
  const double r =
      2.0 * a2 * a2 * a2 / 27.0 - a2 * a1 / 3.0 + a0;
  const double disc = q * q * q / 27.0 + r * r / 4.0;
  if (disc > 0.0) {
    const double sq = std::sqrt(disc);
    const double u = std::cbrt(-r / 2.0 + sq);
    const double v = std::cbrt(-r / 2.0 - sq);
    out[0] = u + v - shift;
    return 1;
  }
  if (disc == 0.0) {
    if (r == 0.0 && q == 0.0) {
      out[0] = -shift;
      return 1;
    }
    const double u = std::cbrt(-r / 2.0);
    out[0] = 2.0 * u - shift;
    out[1] = -u - shift;
    return 2;
  }
  const double rho = std::sqrt(-q * q * q / 27.0);
  const double theta = std::acos(std::clamp(-r / (2.0 * rho), -1.0, 1.0));
  const double mag = 2.0 * std::sqrt(-q / 3.0);
  for (int k = 0; k < 3; ++k) {
    out[k] = mag * std::cos((theta + 2.0 * kPi * k) / 3.0) - shift;
  }
  return 3;
}

void ClosedFormRootsInto(const Polynomial& p, std::vector<double>* out) {
  const size_t d = p.degree();
  if (p.IsZero() || d == 0) return;
  double r[3];
  int n;
  if (d == 1) {
    n = LinearRoot(p.coeff(0), p.coeff(1), r);
  } else if (d == 2) {
    n = QuadraticRoots(p.coeff(0), p.coeff(1), p.coeff(2), r);
  } else {
    n = CubicRoots(p.coeff(0), p.coeff(1), p.coeff(2), p.coeff(3), r);
  }
  for (int i = 0; i < n; ++i) out->push_back(r[i]);
}

bool SolveComparisonTrivial(const Polynomial& p, CmpOp op,
                            const Interval& domain, IntervalSet* out) {
  if (domain.IsEmpty()) {
    out->Clear();
    return true;
  }
  // Everywhere-zero polynomial: predicate truth is constant in t.
  if (p.IsZero()) {
    if (op == CmpOp::kEq || op == CmpOp::kLe || op == CmpOp::kGe) {
      out->AssignInterval(domain);
    } else {
      out->Clear();
    }
    return true;
  }
  // Constant non-zero polynomial.
  if (p.degree() == 0) {
    const double v = p.coeff(0);
    const bool holds = (op == CmpOp::kLt && v < 0.0) ||
                       (op == CmpOp::kLe && v <= 0.0) ||
                       (op == CmpOp::kEq && v == 0.0) ||
                       (op == CmpOp::kNe && v != 0.0) ||
                       (op == CmpOp::kGe && v >= 0.0) ||
                       (op == CmpOp::kGt && v > 0.0);
    if (holds) {
      out->AssignInterval(domain);
    } else {
      out->Clear();
    }
    return true;
  }
  return false;
}

void AssembleEquality(const double* roots, size_t num_roots,
                      const Interval& domain, std::vector<Interval>* cells,
                      IntervalSet* out) {
  cells->clear();
  for (size_t i = 0; i < num_roots; ++i) {
    const double r = roots[i];
    if (domain.Contains(r)) cells->push_back(Interval::Point(r));
  }
  out->Assign(cells);
}

size_t BuildCuts(const double* roots, size_t num_roots,
                 const Interval& domain, std::vector<double>* cuts) {
  cuts->clear();
  cuts->push_back(domain.lo);
  for (size_t i = 0; i < num_roots; ++i) {
    const double r = roots[i];
    if (r > domain.lo && r < domain.hi) cuts->push_back(r);
  }
  cuts->push_back(domain.hi);
  size_t retained = 0;
  for (size_t i = 0; i + 1 < cuts->size(); ++i) {
    if ((*cuts)[i + 1] > (*cuts)[i]) ++retained;
  }
  return retained;
}

void AssembleInequality(const Polynomial& p, CmpOp op,
                        const Interval& domain, const double* roots,
                        size_t num_roots, const double* cuts,
                        size_t num_cuts, const double* mid_values,
                        std::vector<Interval>* cells_out, IntervalSet* out) {
  // Sign-test the open cells between consecutive roots.
  const bool want_negative = (op == CmpOp::kLt || op == CmpOp::kLe);
  const bool include_boundary = CmpOpIncludesEquality(op);
  std::vector<Interval>& cells = *cells_out;
  cells.clear();
  size_t mid_index = 0;
  for (size_t i = 0; i + 1 < num_cuts; ++i) {
    const double a = cuts[i];
    const double b = cuts[i + 1];
    if (b <= a) continue;
    double v;
    if (mid_values != nullptr) {
      v = mid_values[mid_index++];
    } else {
      const double mid = 0.5 * (a + b);
      v = p.Evaluate(mid);
    }
    const bool holds = want_negative ? (v < 0.0) : (v > 0.0);
    if (!holds) continue;
    Interval cell;
    cell.lo = a;
    cell.hi = b;
    // Interior cuts are roots: open for strict ops, closed otherwise.
    const bool a_is_domain = (i == 0);
    const bool b_is_domain = (i + 2 == num_cuts);
    cell.lo_open = a_is_domain ? domain.lo_open : !include_boundary;
    cell.hi_open = b_is_domain ? domain.hi_open : !include_boundary;
    cells.push_back(cell);
  }
  // Non-strict ops additionally admit boundary roots even when no adjacent
  // cell holds (e.g. tangency points of p <= 0 with p > 0 around them).
  if (include_boundary) {
    for (size_t i = 0; i < num_roots; ++i) {
      const double r = roots[i];
      if (domain.Contains(r)) cells.push_back(Interval::Point(r));
    }
  }
  out->Assign(&cells);
}

}  // namespace roots_internal

namespace {

// Plain bisection on a bracket with sign(f(a)) != sign(f(b)).
double Bisect(const Polynomial& p, double a, double b, double tol) {
  double fa = p.Evaluate(a);
  for (int i = 0; i < 200 && (b - a) > tol; ++i) {
    const double m = 0.5 * (a + b);
    const double fm = p.Evaluate(m);
    if (fm == 0.0) return m;
    if ((fa < 0.0) == (fm < 0.0)) {
      a = m;
      fa = fm;
    } else {
      b = m;
    }
  }
  return 0.5 * (a + b);
}

// Converges a bracketed root using the chosen method.
double ConvergeInBracket(const Polynomial& p, double a, double b,
                         RootMethod method) {
  switch (method) {
    case RootMethod::kBisection:
      return Bisect(p, a, b, kRootTolerance);
    case RootMethod::kNewtonPolish: {
      Result<double> r = NewtonRoot(p, 0.5 * (a + b));
      if (r.ok() && *r >= a - kRootTolerance && *r <= b + kRootTolerance) {
        return std::clamp(*r, a, b);
      }
      return Bisect(p, a, b, kRootTolerance);
    }
    case RootMethod::kBrent:
    case RootMethod::kAuto:
    case RootMethod::kClosedForm: {
      Result<double> r = BrentRoot(
          [&p](double t) { return p.Evaluate(t); }, a, b);
      if (r.ok()) return *r;
      return Bisect(p, a, b, kRootTolerance);
    }
  }
  return Bisect(p, a, b, kRootTolerance);
}

// Counts sign changes of the Sturm sequence evaluated at x.
int SturmSignChanges(const std::vector<Polynomial>& sturm, double x) {
  int changes = 0;
  int prev = 0;
  for (const Polynomial& q : sturm) {
    const double v = q.Evaluate(x);
    const int sign = (v > kRootTolerance) - (v < -kRootTolerance);
    if (sign == 0) continue;
    if (prev != 0 && sign != prev) ++changes;
    prev = sign;
  }
  return changes;
}

// Recursively isolates single-root brackets of square-free p in (lo, hi]
// and converges each.
void IsolateAndSolve(const Polynomial& p,
                     const std::vector<Polynomial>& sturm, double lo,
                     double hi, RootMethod method,
                     std::vector<double>* roots, int depth = 0) {
  const int n = CountRootsInInterval(sturm, lo, hi);
  if (n == 0) return;
  if (hi - lo <= kRootTolerance || depth > 96) {
    roots->push_back(0.5 * (lo + hi));
    return;
  }
  if (n == 1) {
    const double flo = p.Evaluate(lo);
    const double fhi = p.Evaluate(hi);
    if ((flo < 0.0) != (fhi < 0.0)) {
      roots->push_back(ConvergeInBracket(p, lo, hi, method));
      return;
    }
    // Root of even local behaviour at an endpoint or a tangency inside:
    // keep subdividing until we either bracket by sign or collapse.
  }
  const double mid = 0.5 * (lo + hi);
  IsolateAndSolve(p, sturm, lo, mid, method, roots, depth + 1);
  IsolateAndSolve(p, sturm, mid, hi, method, roots, depth + 1);
}

}  // namespace

const char* CmpOpToString(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "<>";
    case CmpOp::kGe:
      return ">=";
    case CmpOp::kGt:
      return ">";
  }
  return "?";
}

CmpOp FlipCmpOp(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return CmpOp::kGt;
    case CmpOp::kLe:
      return CmpOp::kGe;
    case CmpOp::kGe:
      return CmpOp::kLe;
    case CmpOp::kGt:
      return CmpOp::kLt;
    case CmpOp::kEq:
    case CmpOp::kNe:
      return op;
  }
  return op;
}

CmpOp NegateCmpOp(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return CmpOp::kGe;
    case CmpOp::kLe:
      return CmpOp::kGt;
    case CmpOp::kEq:
      return CmpOp::kNe;
    case CmpOp::kNe:
      return CmpOp::kEq;
    case CmpOp::kGe:
      return CmpOp::kLt;
    case CmpOp::kGt:
      return CmpOp::kLe;
  }
  return op;
}

bool CmpOpIncludesEquality(CmpOp op) {
  return op == CmpOp::kLe || op == CmpOp::kGe || op == CmpOp::kEq;
}

void DividePolynomials(const Polynomial& num, const Polynomial& den,
                       Polynomial* quot, Polynomial* rem) {
  PULSE_CHECK(!den.IsZero());
  PULSE_CHECK(quot != rem && quot != &num && quot != &den && rem != &den);
  const size_t n = num.IsZero() ? 0 : num.degree() + 1;
  const size_t dn = den.degree();
  const double lead = den.coeff(dn);
  if (n < dn + 1) {
    if (rem != &num) *rem = num;
    *quot = Polynomial();
    return;
  }
  // Long division in place on rem's buffer: no vector temporaries, no
  // allocation while both polynomials fit the inline storage.
  if (rem != &num) *rem = num;
  Polynomial& r = *rem;
  Polynomial& q = *quot;
  q.Resize(n - dn);
  for (size_t i = 0; i < n - dn; ++i) q[i] = 0.0;
  for (size_t i = n - 1;; --i) {  // top coefficient downwards
    const double factor = r[i] / lead;
    q[i - dn] = factor;
    for (size_t k = 0; k <= dn; ++k) {
      r[i - dn + k] -= factor * den.coeff(k);
    }
    if (i == dn) break;
  }
  r.Resize(dn);
  r.TrimInPlace();
  q.TrimInPlace();
}

Polynomial PolynomialGcd(const Polynomial& a, const Polynomial& b) {
  Polynomial x = a;
  Polynomial y = b;
  while (!y.IsZero()) {
    Polynomial q, r;
    DividePolynomials(x, y, &q, &r);
    x = y;
    y = r;
    // Normalize to keep coefficients in range across iterations.
    if (!y.IsZero()) {
      const double lead = y.coeff(y.degree());
      if (std::abs(lead) > 0.0) y = y * (1.0 / lead);
    }
  }
  if (!x.IsZero()) {
    const double lead = x.coeff(x.degree());
    x = x * (1.0 / lead);
  }
  return x;
}

std::vector<Polynomial> SturmSequence(const Polynomial& p) {
  RootScratch scratch;
  SturmSequenceInto(p, &scratch);
  return std::move(scratch.sturm);
}

void SturmSequenceInto(const Polynomial& p, RootScratch* scratch) {
  std::vector<Polynomial>& seq = scratch->sturm;
  // Reuse existing entries (and their coefficient buffers) in place.
  auto entry = [&seq](size_t i) -> Polynomial& {
    if (i == seq.size()) seq.emplace_back();
    return seq[i];
  };
  size_t n = 0;
  entry(n++) = p;
  p.DerivativeInto(&entry(n));
  if (!seq[n].IsZero()) {
    ++n;
    while (seq[n - 1].degree() > 0) {
      DividePolynomials(seq[n - 2], seq[n - 1], &scratch->quot,
                        &scratch->rem);
      if (scratch->rem.IsZero()) break;
      scratch->rem.ScaleInPlace(-1.0);
      std::swap(entry(n), scratch->rem);
      ++n;
    }
  }
  seq.resize(n);
}

int CountRootsInInterval(const std::vector<Polynomial>& sturm, double a,
                         double b) {
  return SturmSignChanges(sturm, a) - SturmSignChanges(sturm, b);
}

std::vector<double> FindRealRoots(const Polynomial& p, double lo, double hi,
                                  RootMethod method) {
  RootScratch scratch;
  FindRealRootsInto(p, lo, hi, method, &scratch);
  return std::move(scratch.roots);
}

void FindRealRootsInto(const Polynomial& p, double lo, double hi,
                       RootMethod method, RootScratch* scratch) {
  std::vector<double>& roots = scratch->roots;
  roots.clear();
  if (p.IsZero() || lo > hi) return;
  const size_t d = p.degree();
  if (d == 0) return;  // non-zero constant: no roots

  // Closed-form dispatch happens before any Sturm machinery is built:
  // degree <= 3 covers every difference polynomial of the paper's
  // low-degree motion models and never touches the scratch polynomials.
  const bool closed_form_ok = d <= 3;
  if ((method == RootMethod::kAuto || method == RootMethod::kClosedForm) &&
      closed_form_ok) {
    roots_internal::ClosedFormRootsInto(p, &roots);
    roots_internal::ClipRoots(lo, hi, &roots);
    roots_internal::DedupeRoots(&roots);
    return;
  }
  if (method == RootMethod::kClosedForm) {
    // No closed form beyond cubics; ablation callers see the gap.
    return;
  }

  // Square-free reduction so Sturm counting sees each root once.
  scratch->square_free = p;
  p.DerivativeInto(&scratch->derivative);
  const Polynomial g = PolynomialGcd(p, scratch->derivative);
  if (g.degree() > 0) {
    DividePolynomials(p, g, &scratch->quot, &scratch->rem);
    if (!scratch->quot.IsZero()) {
      std::swap(scratch->square_free, scratch->quot);
    }
  }
  SturmSequenceInto(scratch->square_free, scratch);
  // Nudge the window outwards so boundary roots are counted (Sturm counts
  // roots in (a, b]).
  IsolateAndSolve(scratch->square_free, scratch->sturm,
                  lo - kRootTolerance, hi + kRootTolerance, method, &roots);
  roots_internal::ClipRoots(lo, hi, &roots);
  roots_internal::DedupeRoots(&roots);
}

Result<double> BrentRoot(const std::function<double(double)>& f, double a,
                         double b, double tol, int max_iter) {
  double fa = f(a);
  double fb = f(b);
  if (fa == 0.0) return a;
  if (fb == 0.0) return b;
  if ((fa < 0.0) == (fb < 0.0)) {
    return Status::InvalidArgument("BrentRoot: interval does not bracket");
  }
  if (std::abs(fa) < std::abs(fb)) {
    std::swap(a, b);
    std::swap(fa, fb);
  }
  double c = a;
  double fc = fa;
  double s = b;
  double d = 0.0;
  bool mflag = true;
  for (int iter = 0; iter < max_iter; ++iter) {
    if (fb == 0.0 || std::abs(b - a) < tol) return b;
    if (fa != fc && fb != fc) {
      // Inverse quadratic interpolation.
      s = a * fb * fc / ((fa - fb) * (fa - fc)) +
          b * fa * fc / ((fb - fa) * (fb - fc)) +
          c * fa * fb / ((fc - fa) * (fc - fb));
    } else {
      // Secant step.
      s = b - fb * (b - a) / (fb - fa);
    }
    const double lo = (3.0 * a + b) / 4.0;
    const bool out_of_range = !((s > std::min(lo, b)) && (s < std::max(lo, b)));
    const bool slow_mflag =
        mflag && std::abs(s - b) >= std::abs(b - c) / 2.0;
    const bool slow_noflag =
        !mflag && std::abs(s - b) >= std::abs(c - d) / 2.0;
    const bool tiny_mflag = mflag && std::abs(b - c) < tol;
    const bool tiny_noflag = !mflag && std::abs(c - d) < tol;
    if (out_of_range || slow_mflag || slow_noflag || tiny_mflag ||
        tiny_noflag) {
      s = 0.5 * (a + b);
      mflag = true;
    } else {
      mflag = false;
    }
    const double fs = f(s);
    d = c;
    c = b;
    fc = fb;
    if ((fa < 0.0) != (fs < 0.0)) {
      b = s;
      fb = fs;
    } else {
      a = s;
      fa = fs;
    }
    if (std::abs(fa) < std::abs(fb)) {
      std::swap(a, b);
      std::swap(fa, fb);
    }
  }
  return b;
}

Result<double> NewtonRoot(const Polynomial& p, double x0, double tol,
                          int max_iter) {
  const Polynomial d = p.Derivative();
  double x = x0;
  for (int i = 0; i < max_iter; ++i) {
    const double fx = p.Evaluate(x);
    if (std::abs(fx) < tol) return x;
    const double dfx = d.Evaluate(x);
    if (std::abs(dfx) < 1e-300) {
      return Status::NumericError("NewtonRoot: derivative vanished");
    }
    const double next = x - fx / dfx;
    if (!std::isfinite(next)) {
      return Status::NumericError("NewtonRoot: diverged");
    }
    if (std::abs(next - x) < tol) return next;
    x = next;
  }
  return Status::NumericError("NewtonRoot: no convergence");
}

IntervalSet SolveComparison(const Polynomial& p, CmpOp op,
                            const Interval& domain, RootMethod method) {
  RootScratch scratch;
  IntervalSet out;
  SolveComparisonInto(p, op, domain, method, &scratch, &out);
  return out;
}

void SolveComparisonInto(const Polynomial& p, CmpOp op,
                         const Interval& domain, RootMethod method,
                         RootScratch* scratch, IntervalSet* out) {
  if (roots_internal::SolveComparisonTrivial(p, op, domain, out)) return;

  if (op == CmpOp::kNe) {
    SolveComparisonInto(p, CmpOp::kEq, domain, method, scratch,
                        &scratch->set_scratch);
    scratch->set_scratch.ComplementInto(domain, out);
    return;
  }

  FindRealRootsInto(p, domain.lo, domain.hi, method, scratch);
  const std::vector<double>& roots = scratch->roots;

  if (op == CmpOp::kEq) {
    roots_internal::AssembleEquality(roots.data(), roots.size(), domain,
                                     &scratch->cells, out);
    return;
  }

  roots_internal::BuildCuts(roots.data(), roots.size(), domain,
                            &scratch->cuts);
  roots_internal::AssembleInequality(p, op, domain, roots.data(),
                                     roots.size(), scratch->cuts.data(),
                                     scratch->cuts.size(),
                                     /*mid_values=*/nullptr, &scratch->cells,
                                     out);
}

}  // namespace pulse
