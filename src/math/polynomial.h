#ifndef PULSE_MATH_POLYNOMIAL_H_
#define PULSE_MATH_POLYNOMIAL_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace pulse {

/// Dense univariate polynomial with real coefficients:
///   p(t) = c[0] + c[1]*t + c[2]*t^2 + ... + c[d]*t^d.
///
/// This is the continuous-time model class of the paper (Section II-B):
/// a modeled stream attribute is a(t) = sum_i c_{a,i} t^i with non-negative
/// exponents. Polynomials are value types; all operations return new
/// polynomials. Coefficients with |c| <= kCoefficientEpsilon are trimmed
/// from the high end so degree() reflects the numerically meaningful degree.
class Polynomial {
 public:
  /// Coefficients below this magnitude are treated as zero when trimming
  /// and when classifying the polynomial's degree for root finding.
  static constexpr double kCoefficientEpsilon = 1e-12;

  /// The zero polynomial.
  Polynomial() = default;

  /// From low-order-first coefficients: Polynomial({1, 2}) is 1 + 2t.
  Polynomial(std::initializer_list<double> coeffs);
  explicit Polynomial(std::vector<double> coeffs);

  /// The constant polynomial c.
  static Polynomial Constant(double c);

  /// The monomial c * t^power.
  static Polynomial Monomial(double c, size_t power);

  /// Degree after trimming; the zero polynomial has degree 0.
  size_t degree() const { return coeffs_.empty() ? 0 : coeffs_.size() - 1; }

  /// True if all coefficients are (numerically) zero.
  bool IsZero() const { return coeffs_.empty(); }

  /// Coefficient of t^i; zero when i exceeds the stored degree.
  double coeff(size_t i) const {
    return i < coeffs_.size() ? coeffs_[i] : 0.0;
  }

  /// Low-order-first coefficients (trimmed; empty for the zero polynomial).
  const std::vector<double>& coeffs() const { return coeffs_; }

  /// Horner evaluation of p(t).
  double Evaluate(double t) const;

  /// First derivative dp/dt.
  Polynomial Derivative() const;

  /// Antiderivative with zero constant term: P(t) with P'(t) = p(t), P(0)=0.
  Polynomial Antiderivative() const;

  /// Definite integral over [lo, hi].
  double Integrate(double lo, double hi) const;

  /// p(t + shift), expanded via the binomial theorem. Used by the sum/avg
  /// aggregate's tail integral where terms of the form (t - w)^i appear
  /// (paper Section III-B): Shift(-w) rewrites p(t - w) as a polynomial
  /// in t.
  Polynomial Shift(double shift) const;

  /// p(s * t): rescales the time axis.
  Polynomial ScaleArgument(double s) const;

  Polynomial operator+(const Polynomial& other) const;
  Polynomial operator-(const Polynomial& other) const;
  Polynomial operator*(const Polynomial& other) const;
  Polynomial operator*(double scalar) const;
  Polynomial operator-() const;

  Polynomial& operator+=(const Polynomial& other);
  Polynomial& operator-=(const Polynomial& other);

  /// Exact coefficient-wise equality (post-trim).
  bool operator==(const Polynomial& other) const {
    return coeffs_ == other.coeffs_;
  }

  /// True if every |coeff difference| <= tol.
  bool AlmostEquals(const Polynomial& other, double tol = 1e-9) const;

  /// Maximum absolute deviation |p(t) - q(t)| sampled on [lo, hi].
  /// Exact for this class (difference is a polynomial whose extrema are
  /// interrogated via its derivative's roots).
  double MaxAbsDifference(const Polynomial& other, double lo, double hi) const;

  /// Human-readable form, e.g. "1 + 2*t - 0.5*t^2".
  std::string ToString() const;

 private:
  void Trim();

  std::vector<double> coeffs_;  // low-order first; empty == zero polynomial
};

inline Polynomial operator*(double scalar, const Polynomial& p) {
  return p * scalar;
}

}  // namespace pulse

#endif  // PULSE_MATH_POLYNOMIAL_H_
