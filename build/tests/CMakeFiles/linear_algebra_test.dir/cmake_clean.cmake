file(REMOVE_RECURSE
  "CMakeFiles/linear_algebra_test.dir/linear_algebra_test.cc.o"
  "CMakeFiles/linear_algebra_test.dir/linear_algebra_test.cc.o.d"
  "linear_algebra_test"
  "linear_algebra_test.pdb"
  "linear_algebra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linear_algebra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
