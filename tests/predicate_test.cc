#include "core/predicate.h"

#include <cmath>

#include <gtest/gtest.h>

namespace pulse {
namespace {

// Resolver with fixed models: x(t) = t, y(t) = 10 - t, c(t) = 5.
AttrResolver FixedResolver() {
  return [](const AttrRef& ref) -> Result<Polynomial> {
    if (ref.name == "x") return Polynomial({0.0, 1.0});
    if (ref.name == "y") return Polynomial({10.0, -1.0});
    if (ref.name == "c") return Polynomial({5.0});
    return Status::NotFound("unknown attribute " + ref.name);
  };
}

TEST(ComparisonTerm, ToStringForms) {
  ComparisonTerm simple = ComparisonTerm::Simple(
      AttrRef::Left("x"), CmpOp::kLt, Operand::Constant(5.0));
  EXPECT_EQ(simple.ToString(), "L.x < 5");
  ComparisonTerm attr = ComparisonTerm::Simple(
      AttrRef::Left("x"), CmpOp::kEq, Operand::Attribute(AttrRef::Right("y")));
  EXPECT_EQ(attr.ToString(), "L.x = R.y");
  ComparisonTerm dist = ComparisonTerm::Distance2(
      AttrRef::Left("x"), AttrRef::Left("y"), AttrRef::Right("x"),
      AttrRef::Right("y"), CmpOp::kLt, 3.0);
  EXPECT_NE(dist.ToString().find("dist"), std::string::npos);
}

TEST(Predicate, ComparisonSolve) {
  // x < 5 with x = t: holds on [0, 5).
  Predicate p = Predicate::Comparison(ComparisonTerm::Simple(
      AttrRef::Left("x"), CmpOp::kLt, Operand::Constant(5.0)));
  Result<IntervalSet> sol =
      p.Solve(FixedResolver(), Interval::ClosedOpen(0.0, 10.0));
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(sol->Contains(4.9));
  EXPECT_FALSE(sol->Contains(5.0));
}

TEST(Predicate, AttributeVsAttribute) {
  // x = y: t = 10 - t -> t = 5 (a point: equality join output).
  Predicate p = Predicate::Comparison(ComparisonTerm::Simple(
      AttrRef::Left("x"), CmpOp::kEq,
      Operand::Attribute(AttrRef::Left("y"))));
  Result<IntervalSet> sol =
      p.Solve(FixedResolver(), Interval::Closed(0.0, 10.0));
  ASSERT_TRUE(sol.ok());
  ASSERT_EQ(sol->size(), 1u);
  EXPECT_TRUE(sol->intervals()[0].IsPoint());
  EXPECT_NEAR(sol->intervals()[0].lo, 5.0, 1e-9);
}

TEST(Predicate, AndIntersects) {
  // x > 2 AND x < 7 -> t in (2, 7).
  Predicate p = Predicate::And(
      {Predicate::Comparison(ComparisonTerm::Simple(
           AttrRef::Left("x"), CmpOp::kGt, Operand::Constant(2.0))),
       Predicate::Comparison(ComparisonTerm::Simple(
           AttrRef::Left("x"), CmpOp::kLt, Operand::Constant(7.0)))});
  Result<IntervalSet> sol =
      p.Solve(FixedResolver(), Interval::Closed(0.0, 10.0));
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(sol->Contains(5.0));
  EXPECT_FALSE(sol->Contains(2.0));
  EXPECT_FALSE(sol->Contains(8.0));
}

TEST(Predicate, OrUnions) {
  Predicate p = Predicate::Or(
      {Predicate::Comparison(ComparisonTerm::Simple(
           AttrRef::Left("x"), CmpOp::kLt, Operand::Constant(2.0))),
       Predicate::Comparison(ComparisonTerm::Simple(
           AttrRef::Left("x"), CmpOp::kGt, Operand::Constant(8.0)))});
  Result<IntervalSet> sol =
      p.Solve(FixedResolver(), Interval::Closed(0.0, 10.0));
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(sol->Contains(1.0));
  EXPECT_TRUE(sol->Contains(9.0));
  EXPECT_FALSE(sol->Contains(5.0));
}

TEST(Predicate, NotComplements) {
  Predicate p = Predicate::Not(Predicate::Comparison(ComparisonTerm::Simple(
      AttrRef::Left("x"), CmpOp::kLt, Operand::Constant(5.0))));
  Result<IntervalSet> sol =
      p.Solve(FixedResolver(), Interval::Closed(0.0, 10.0));
  ASSERT_TRUE(sol.ok());
  EXPECT_FALSE(sol->Contains(3.0));
  EXPECT_TRUE(sol->Contains(5.0));  // NOT(x < 5) includes x == 5
  EXPECT_TRUE(sol->Contains(7.0));
}

TEST(Predicate, DistanceTermSolvesProximity) {
  // Objects at x1 = (t, 0) and x2 = (10 - t, 0): distance < 4 when
  // |2t - 10| < 4, i.e. t in (3, 7).
  AttrResolver resolver = [](const AttrRef& ref) -> Result<Polynomial> {
    if (ref.side == Side::kLeft && ref.name == "x")
      return Polynomial({0.0, 1.0});
    if (ref.side == Side::kRight && ref.name == "x")
      return Polynomial({10.0, -1.0});
    return Polynomial();  // y components zero
  };
  Predicate p = Predicate::Comparison(ComparisonTerm::Distance2(
      AttrRef::Left("x"), AttrRef::Left("y"), AttrRef::Right("x"),
      AttrRef::Right("y"), CmpOp::kLt, 4.0));
  Result<IntervalSet> sol =
      p.Solve(resolver, Interval::Closed(0.0, 10.0));
  ASSERT_TRUE(sol.ok());
  EXPECT_FALSE(sol->Contains(2.9));
  EXPECT_TRUE(sol->Contains(5.0));
  EXPECT_FALSE(sol->Contains(7.1));
}

TEST(Predicate, IsConjunctive) {
  Predicate leaf = Predicate::Comparison(ComparisonTerm::Simple(
      AttrRef::Left("x"), CmpOp::kLt, Operand::Constant(1.0)));
  EXPECT_TRUE(leaf.IsConjunctive());
  EXPECT_TRUE(Predicate::And({leaf, leaf}).IsConjunctive());
  EXPECT_FALSE(Predicate::Or({leaf, leaf}).IsConjunctive());
  EXPECT_FALSE(Predicate::Not(leaf).IsConjunctive());
  EXPECT_FALSE(
      Predicate::And({leaf, Predicate::Or({leaf, leaf})}).IsConjunctive());
}

TEST(Predicate, BuildSystemFromConjunction) {
  Predicate p = Predicate::And(
      {Predicate::Comparison(ComparisonTerm::Simple(
           AttrRef::Left("x"), CmpOp::kGt, Operand::Constant(2.0))),
       Predicate::Comparison(ComparisonTerm::Simple(
           AttrRef::Left("x"), CmpOp::kLt,
           Operand::Attribute(AttrRef::Left("y"))))});
  Result<EquationSystem> sys = p.BuildSystem(FixedResolver());
  ASSERT_TRUE(sys.ok());
  EXPECT_EQ(sys->num_rows(), 2u);
  // Solving the system directly matches Predicate::Solve.
  IntervalSet via_system = sys->Solve(Interval::Closed(0.0, 10.0));
  Result<IntervalSet> via_pred =
      p.Solve(FixedResolver(), Interval::Closed(0.0, 10.0));
  ASSERT_TRUE(via_pred.ok());
  for (double t = 0.0; t <= 10.0; t += 0.1) {
    EXPECT_EQ(via_system.Contains(t), via_pred->Contains(t)) << t;
  }
}

TEST(Predicate, BuildSystemRejectsDisjunction) {
  Predicate leaf = Predicate::Comparison(ComparisonTerm::Simple(
      AttrRef::Left("x"), CmpOp::kLt, Operand::Constant(1.0)));
  Result<EquationSystem> sys =
      Predicate::Or({leaf, leaf}).BuildSystem(FixedResolver());
  EXPECT_FALSE(sys.ok());
  EXPECT_EQ(sys.status().code(), StatusCode::kFailedPrecondition);
}

TEST(Predicate, CollectAttributes) {
  Predicate p = Predicate::And(
      {Predicate::Comparison(ComparisonTerm::Simple(
           AttrRef::Left("a"), CmpOp::kLt,
           Operand::Attribute(AttrRef::Right("b")))),
       Predicate::Comparison(ComparisonTerm::Distance2(
           AttrRef::Left("x1"), AttrRef::Left("y1"), AttrRef::Right("x2"),
           AttrRef::Right("y2"), CmpOp::kLt, 1.0))});
  std::vector<AttrRef> refs;
  p.CollectAttributes(&refs);
  EXPECT_EQ(refs.size(), 6u);
}

TEST(Predicate, EvaluateOnValues) {
  Predicate p = Predicate::And(
      {Predicate::Comparison(ComparisonTerm::Simple(
           AttrRef::Left("a"), CmpOp::kGt, Operand::Constant(1.0))),
       Predicate::Comparison(ComparisonTerm::Simple(
           AttrRef::Left("a"), CmpOp::kLe,
           Operand::Attribute(AttrRef::Left("b"))))});
  auto resolver = [](const AttrRef& ref) -> Result<double> {
    if (ref.name == "a") return 2.0;
    if (ref.name == "b") return 3.0;
    return Status::NotFound("?");
  };
  Result<bool> r = p.EvaluateOnValues(resolver);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
  // Distance form.
  Predicate d = Predicate::Comparison(ComparisonTerm::Distance2(
      AttrRef::Left("a"), AttrRef::Left("b"), AttrRef::Left("a"),
      AttrRef::Left("a"), CmpOp::kLt, 1.5));
  // Points (2,3) and (2,2): distance 1 < 1.5.
  Result<bool> rd = d.EvaluateOnValues(resolver);
  ASSERT_TRUE(rd.ok());
  EXPECT_TRUE(*rd);
}

TEST(Predicate, EvaluateOnValuesBooleanStructure) {
  auto resolver = [](const AttrRef& ref) -> Result<double> {
    return ref.name == "a" ? 1.0 : 5.0;
  };
  Predicate lt = Predicate::Comparison(ComparisonTerm::Simple(
      AttrRef::Left("a"), CmpOp::kLt, Operand::Constant(0.0)));
  Predicate gt = Predicate::Comparison(ComparisonTerm::Simple(
      AttrRef::Left("b"), CmpOp::kGt, Operand::Constant(0.0)));
  EXPECT_FALSE(*Predicate::And({lt, gt}).EvaluateOnValues(resolver));
  EXPECT_TRUE(*Predicate::Or({lt, gt}).EvaluateOnValues(resolver));
  EXPECT_TRUE(*Predicate::Not(lt).EvaluateOnValues(resolver));
}

TEST(Predicate, SolveErrorsOnMissingAttribute) {
  Predicate p = Predicate::Comparison(ComparisonTerm::Simple(
      AttrRef::Left("nope"), CmpOp::kLt, Operand::Constant(0.0)));
  Result<IntervalSet> sol =
      p.Solve(FixedResolver(), Interval::Closed(0.0, 1.0));
  EXPECT_FALSE(sol.ok());
}

TEST(Predicate, ToStringNested) {
  Predicate leaf = Predicate::Comparison(ComparisonTerm::Simple(
      AttrRef::Left("x"), CmpOp::kLt, Operand::Constant(1.0)));
  Predicate p = Predicate::Not(Predicate::Or({leaf, leaf}));
  EXPECT_EQ(p.ToString(), "NOT (L.x < 1 OR L.x < 1)");
}

// Continuous vs discrete consistency: the solved time ranges agree with
// pointwise evaluation of the same predicate on sampled model values.
class ContinuousDiscreteAgreement
    : public ::testing::TestWithParam<CmpOp> {};

TEST_P(ContinuousDiscreteAgreement, Agree) {
  const CmpOp op = GetParam();
  Predicate p = Predicate::Comparison(ComparisonTerm::Simple(
      AttrRef::Left("x"), op, Operand::Attribute(AttrRef::Left("y"))));
  AttrResolver models = FixedResolver();
  Result<IntervalSet> sol = p.Solve(models, Interval::Closed(0.0, 10.0));
  ASSERT_TRUE(sol.ok());
  for (double t = 0.05; t < 10.0; t += 0.173) {
    auto values = [&](const AttrRef& ref) -> Result<double> {
      PULSE_ASSIGN_OR_RETURN(Polynomial poly, models(ref));
      return poly.Evaluate(t);
    };
    Result<bool> discrete = p.EvaluateOnValues(values);
    ASSERT_TRUE(discrete.ok());
    EXPECT_EQ(sol->Contains(t), *discrete)
        << CmpOpToString(op) << " at t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, ContinuousDiscreteAgreement,
                         ::testing::Values(CmpOp::kLt, CmpOp::kLe,
                                           CmpOp::kEq, CmpOp::kNe,
                                           CmpOp::kGe, CmpOp::kGt));

}  // namespace
}  // namespace pulse
