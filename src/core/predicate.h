#ifndef PULSE_CORE_PREDICATE_H_
#define PULSE_CORE_PREDICATE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/equation_system.h"
#include "math/interval_set.h"
#include "math/polynomial.h"
#include "math/roots.h"
#include "util/result.h"

namespace pulse {

class SolveCache;

/// Which input of an operator an attribute reference addresses. Unary
/// operators use kLeft only; joins use both ("R.x" vs "S.x").
enum class Side { kLeft, kRight };

/// Reference to a modeled attribute on one input.
struct AttrRef {
  Side side = Side::kLeft;
  std::string name;

  static AttrRef Left(std::string name) {
    return AttrRef{Side::kLeft, std::move(name)};
  }
  static AttrRef Right(std::string name) {
    return AttrRef{Side::kRight, std::move(name)};
  }

  std::string ToString() const {
    return std::string(side == Side::kLeft ? "L." : "R.") + name;
  }
};

/// Right-hand side of a simple comparison: attribute or constant.
struct Operand {
  enum class Kind { kAttribute, kConstant };
  Kind kind = Kind::kConstant;
  AttrRef attr;
  double constant = 0.0;

  static Operand Attribute(AttrRef ref) {
    Operand o;
    o.kind = Kind::kAttribute;
    o.attr = std::move(ref);
    return o;
  }
  static Operand Constant(double v) {
    Operand o;
    o.kind = Kind::kConstant;
    o.constant = v;
    return o;
  }
};

/// An atomic predicate term.
///
/// kSimple covers the paper's canonical form x R y (attribute vs attribute
/// or constant). kDistance2 covers the moving-object proximity pattern
/// sqrt((x1-x2)^2 + (y1-y2)^2) R c, rewritten polynomially as
/// (x1-x2)^2 + (y1-y2)^2 R c^2 (valid since both sides are non-negative
/// and squaring is monotone there) — the collision/following queries of
/// the paper's introduction and AIS evaluation.
struct ComparisonTerm {
  enum class Kind { kSimple, kDistance2 };
  Kind kind = Kind::kSimple;
  CmpOp op = CmpOp::kEq;

  // kSimple:
  AttrRef lhs;
  Operand rhs;

  // kDistance2: distance between (x1, y1) and (x2, y2) compared to
  // `threshold`.
  AttrRef x1, y1, x2, y2;
  double threshold = 0.0;

  static ComparisonTerm Simple(AttrRef lhs, CmpOp op, Operand rhs);
  static ComparisonTerm Distance2(AttrRef x1, AttrRef y1, AttrRef x2,
                                  AttrRef y2, CmpOp op, double threshold);

  std::string ToString() const;
};

/// Resolves an attribute reference to its polynomial model within the
/// current evaluation context (i.e. the segment(s) an operator is
/// processing).
using AttrResolver = std::function<Result<Polynomial>(const AttrRef&)>;

/// A boolean predicate over modeled attributes: comparisons composed with
/// AND / OR / NOT. Conjunctions map 1:1 onto simultaneous equation
/// systems; general boolean structure is applied to the per-term solution
/// time ranges (paper Section III-A: "we apply the structure of the
/// boolean operators to the solution time ranges").
class Predicate {
 public:
  enum class Kind { kComparison, kAnd, kOr, kNot };

  /// Leaf term.
  static Predicate Comparison(ComparisonTerm term);
  static Predicate And(std::vector<Predicate> children);
  static Predicate Or(std::vector<Predicate> children);
  static Predicate Not(Predicate child);

  Kind kind() const { return kind_; }
  const ComparisonTerm& term() const { return term_; }
  const std::vector<Predicate>& children() const { return children_; }

  /// True when the tree is a pure conjunction of comparisons, i.e. maps
  /// onto a single simultaneous equation system (paper Eq. 1).
  bool IsConjunctive() const;

  /// Builds the equation system for a conjunctive predicate. Fails with
  /// FailedPrecondition on non-conjunctive trees.
  Result<EquationSystem> BuildSystem(const AttrResolver& resolver) const;

  /// Buffer-reusing form of BuildSystem: clears *out (keeping its row
  /// capacity) and appends the rows directly — no per-call row-vector
  /// allocation once the reused system is warm (the join's per-pair hot
  /// path).
  Status BuildSystemInto(const AttrResolver& resolver,
                         EquationSystem* out) const;

  /// Builds the difference equation for one comparison term.
  static Result<DifferenceEquation> BuildRow(const ComparisonTerm& term,
                                             const AttrResolver& resolver);

  /// Full solve: time ranges within `domain` where the predicate holds.
  Result<IntervalSet> Solve(const AttrResolver& resolver,
                            const Interval& domain,
                            RootMethod method = RootMethod::kAuto) const;

  /// Scratch/cache form of Solve: writes into *out, reusing scratch
  /// buffers; leaf comparison solves consult `cache` when non-null (see
  /// SolveCache — with exact keys the output is bit-identical).
  Status SolveInto(const AttrResolver& resolver, const Interval& domain,
                   RootMethod method, SolveScratch* scratch,
                   SolveCache* cache, IntervalSet* out) const;

  /// Collects every attribute reference in the tree (the inversion
  /// machinery's "inferences": attributes constrained by predicates,
  /// Section IV-B).
  void CollectAttributes(std::vector<AttrRef>* out) const;

  /// Resolves an attribute reference to a concrete value (discrete
  /// evaluation: baseline engine predicates and result cross-checks).
  using ValueResolver = std::function<Result<double>(const AttrRef&)>;

  /// Evaluates the predicate on concrete attribute values.
  Result<bool> EvaluateOnValues(const ValueResolver& resolver) const;

  std::string ToString() const;

 private:
  // Recursive worker of BuildSystemInto: appends this subtree's rows.
  Status AppendSystemRows(const AttrResolver& resolver,
                          EquationSystem* out) const;

  Kind kind_ = Kind::kComparison;
  ComparisonTerm term_;
  std::vector<Predicate> children_;
};

}  // namespace pulse

#endif  // PULSE_CORE_PREDICATE_H_
