#ifndef PULSE_SERVE_TRANSPORT_H_
#define PULSE_SERVE_TRANSPORT_H_

#include <memory>
#include <string>

#include "util/result.h"

namespace pulse {
namespace serve {

/// Bidirectional byte stream between a client and a session — the only
/// thing the protocol layer assumes about the network. Two
/// implementations: the in-process pair below (tests, benches, the
/// serving differential — no sockets needed) and TCP
/// (tcp_transport.h). Both ends see the same length-prefixed frame
/// bytes, so everything above the transport is exercised identically.
///
/// Thread contract: one reader thread and one writer thread per
/// endpoint may operate concurrently (the full-duplex session shape);
/// concurrent writers must serialize externally. Close() may be called
/// from any thread and unblocks pending reads and writes.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Blocking read of up to `n` bytes into `buf`. Returns the count
  /// actually read (>= 1), or 0 on clean end-of-stream.
  virtual Result<size_t> Read(char* buf, size_t n) = 0;

  /// Blocking write of exactly `n` bytes (may wait for buffer space /
  /// socket drain). Fails once the peer or Close() shut the stream.
  virtual Status Write(const char* data, size_t n) = 0;
  Status Write(const std::string& bytes) {
    return Write(bytes.data(), bytes.size());
  }

  /// Shuts down both directions; pending and future reads return 0 /
  /// fail, pending and future writes fail. Idempotent.
  virtual void Close() = 0;
};

/// The two endpoints of one in-process connection.
struct TransportPair {
  std::unique_ptr<Transport> client;
  std::unique_ptr<Transport> server;
};

/// In-process transport: two bounded byte channels (one per direction)
/// with blocking semantics matching a TCP socket, including write-side
/// backpressure — a full channel blocks the writer, which is how queue
/// backpressure inside a session reaches an in-process client.
/// `buffer_capacity` is the per-direction byte budget.
TransportPair MakeInProcessPair(size_t buffer_capacity = 4u << 20);

}  // namespace serve
}  // namespace pulse

#endif  // PULSE_SERVE_TRANSPORT_H_
