#ifndef PULSE_CORE_OPERATORS_AGGREGATE_H_
#define PULSE_CORE_OPERATORS_AGGREGATE_H_

#include <deque>
#include <memory>
#include <string>

#include "core/operators/pulse_operator.h"
#include "engine/aggregate.h"
#include "math/roots.h"
#include "model/piecewise.h"

namespace pulse {

/// Configuration shared by the continuous aggregates.
struct PulseAggregateOptions {
  AggFn fn = AggFn::kMin;
  std::string input_attribute;
  std::string output_attribute = "agg";
  /// Window size w (seconds).
  double window_seconds = 1.0;
  /// Window slide (seconds); determines the aggregate's implied output
  /// sampling rate (paper Section III-C: the slide parameter "indicates
  /// the periodicity with which a window closes, and thus the aggregate's
  /// output rate").
  double slide_seconds = 1.0;
  RootMethod method = RootMethod::kAuto;
  /// min/max only. By default the envelope aggregate emits every *changed*
  /// range eagerly, which gives downstream consumers an override protocol:
  /// a later segment replaces earlier coverage where their ranges overlap.
  /// Operators that drop segments (filters, i.e. HAVING) cannot express
  /// "this range was retracted", so stale passing slices of an overridden
  /// envelope piece would leak through. With `finalize` set the aggregate
  /// instead buffers changes and emits each envelope piece exactly once,
  /// append-only in time order, as soon as it can no longer change — i.e.
  /// once the input low-watermark (max range.lo seen; inputs must arrive
  /// ordered by range.lo) has passed the piece. The tail is emitted on
  /// Flush. Composed plans (BuildPulsePlan) always set this.
  bool finalize = false;
};

/// Continuous-time min/max aggregate (paper Section III-B, Fig. 3 row
/// "Aggregate min, max").
///
/// Internal state is a piecewise model s(t): the lower (min) or upper
/// (max) envelope of the input models, per Fig. 2. An arriving segment is
/// compared against the envelope with the difference equation
/// x(t) - s(t) R 0 — the equation system built exactly as for selective
/// operators — and the envelope is updated where the input wins. Output
/// segments cover the times where the aggregate's value changed, carrying
/// the new envelope model.
class PulseMinMaxAggregate : public PulseOperator {
 public:
  PulseMinMaxAggregate(std::string name, PulseAggregateOptions options);

  Status Process(size_t port, const Segment& segment,
                 SegmentBatch* out) override;

  Status Flush(SegmentBatch* out) override;

  Result<std::vector<AllocatedBound>> InvertBound(
      const Segment& output, const std::string& attribute, double margin,
      const SplitHeuristic& split) const override;

  /// Slack of the input segment against the current envelope: how far the
  /// segment is from updating the aggregate (for slack validation).
  Result<double> ComputeSlack(const Segment& segment) const;

  const PiecewiseModel& state() const { return state_; }

 private:
  /// One settled-envelope piece awaiting emission (finalize mode).
  struct FinalPiece {
    Interval range;
    Polynomial poly;
    Key arg_key = 0;
    Segment cause;  // causing input, for lineage
  };

  // Overrides pending_ coverage on `range` with the new piece.
  void OverrideInsert(FinalPiece piece);
  // Emits (and drops) pending pieces wholly before `watermark`.
  void EmitSettled(double watermark, SegmentBatch* out);
  Segment MakeOutput(const FinalPiece& piece);

  PulseAggregateOptions options_;
  bool is_min_;
  PiecewiseModel state_;
  double latest_time_ = 0.0;
  double last_expire_ = 0.0;
  /// finalize mode: settled-envelope track, time-ordered, non-overlapping.
  std::deque<FinalPiece> pending_;
};

/// Continuous-time sum/avg aggregate via *window functions* (paper
/// Section III-B, Eq. 2).
///
/// A window function is parameterized by the window's closing timestamp t
/// and returns the window's value: for sum, the integral of the modeled
/// attribute over [t-w, t]. For every emitted validity range the operator
/// assembles wf_sum(t) = tail integral + cached full-segment constants C
/// + head integral, where the tail's (t-w) terms are expanded by the
/// binomial theorem (Polynomial::Shift). The result is itself a piecewise
/// polynomial in t — window functions preserve continuity downstream.
/// wf_avg = wf_sum / w.
class PulseSumAvgAggregate : public PulseOperator {
 public:
  PulseSumAvgAggregate(std::string name, PulseAggregateOptions options);

  Status Process(size_t port, const Segment& segment,
                 SegmentBatch* out) override;

  Result<std::vector<AllocatedBound>> InvertBound(
      const Segment& output, const std::string& attribute, double margin,
      const SplitHeuristic& split) const override;

  size_t stored_segments() const { return stored_.size(); }

 private:
  /// Cached per-input-segment metadata (Section III-B: "for every input
  /// segment we compute and cache the segment integral C, in addition to
  /// a function for the tail integral").
  struct Stored {
    Interval range;
    Polynomial poly;
    Polynomial anti;     // antiderivative of poly
    double full = 0.0;   // definite integral over `range`
    uint64_t id = 0;
    Key key = 0;
    Segment snapshot;    // the causing input segment, for lineage
  };

  // Emits window-function segments for closes in [from, to).
  Status EmitWindows(double from, double to, SegmentBatch* out);
  // Index of the stored segment containing time `t` (coverage is
  // contiguous), or npos.
  size_t FindStored(double t) const;

  PulseAggregateOptions options_;
  std::deque<Stored> stored_;
  double coverage_start_ = 0.0;  // earliest contiguously covered time
  double last_emit_ = 0.0;       // all closes < last_emit_ are emitted
  bool have_any_ = false;
};

/// Factory dispatching on options.fn (min/max -> envelope aggregate,
/// sum/avg -> window functions). Count is rejected: frequency-based
/// aggregates have no continuous form (paper "Transformation
/// Limitations").
Result<std::unique_ptr<PulseOperator>> MakePulseAggregate(
    std::string name, PulseAggregateOptions options);

}  // namespace pulse

#endif  // PULSE_CORE_OPERATORS_AGGREGATE_H_
