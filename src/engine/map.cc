#include "engine/map.h"

#include "util/logging.h"

namespace pulse {

MapOperator::MapOperator(std::string name, std::vector<MapColumn> columns)
    : Operator(std::move(name)), columns_(std::move(columns)) {
  std::vector<Field> fields;
  fields.reserve(columns_.size());
  for (const MapColumn& c : columns_) fields.push_back(c.field);
  schema_ = Schema::Make(std::move(fields));
}

Status MapOperator::Process(size_t port, const Tuple& input,
                            std::vector<Tuple>* out) {
  PULSE_CHECK(port == 0);
  ++metrics_.invocations;
  ++metrics_.tuples_in;
  Tuple result;
  result.timestamp = input.timestamp;
  result.values.reserve(columns_.size());
  for (const MapColumn& c : columns_) {
    result.values.push_back(c.expr(input));
  }
  out->push_back(std::move(result));
  ++metrics_.tuples_out;
  return Status::OK();
}

}  // namespace pulse
