#include <cstdio>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "util/csv.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"

namespace pulse {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad arg");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad arg");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad arg");
}

TEST(Status, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument,
        StatusCode::kOutOfRange, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kFailedPrecondition,
        StatusCode::kUnimplemented, StatusCode::kNumericError,
        StatusCode::kCapacity, StatusCode::kIoError,
        StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status UsesReturnIfError(int x) {
  PULSE_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(Status, ReturnIfErrorMacro) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kOutOfRange);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> DoublePositive(int x) {
  PULSE_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(Result, ValueAndError) {
  Result<int> ok = ParsePositive(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 21);
  Result<int> bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.value_or(99), 99);
  EXPECT_EQ(ok.value_or(99), 21);
}

TEST(Result, AssignOrReturnMacro) {
  Result<int> r = DoublePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_FALSE(DoublePositive(0).ok());
}

TEST(Result, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(StringUtil, SplitJoin) {
  auto parts = SplitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(JoinStrings(parts, "|"), "a|b||c");
  EXPECT_EQ(SplitString("", ',').size(), 1u);
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(TrimWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_EQ(TrimWhitespace("x"), "x");
}

TEST(StringUtil, ParseDouble) {
  Result<double> r = ParseDouble(" 3.25 ");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(*r, 3.25);
  EXPECT_FALSE(ParseDouble("3.5abc").ok());
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_TRUE(ParseDouble("-1e10").ok());
}

TEST(StringUtil, ParseInt64) {
  Result<int64_t> r = ParseInt64("-42");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, -42);
  EXPECT_FALSE(ParseInt64("12.5").ok());
  EXPECT_FALSE(ParseInt64("").ok());
}

TEST(StringUtil, FormatDouble) {
  EXPECT_EQ(FormatDouble(2.0), "2");
  EXPECT_EQ(FormatDouble(0.5), "0.5");
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(0, 1), b.Uniform(0, 1));
  }
}

TEST(Rng, RangesRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
    const int64_t n = rng.UniformInt(-5, 5);
    EXPECT_GE(n, -5);
    EXPECT_LE(n, 5);
  }
}

TEST(Zipf, SkewPrefersLowRanks) {
  Rng rng(11);
  ZipfDistribution zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[50] * 5);
  // Uniform degenerate case.
  ZipfDistribution flat(10, 0.0);
  std::vector<int> fc(10, 0);
  for (int i = 0; i < 10000; ++i) ++fc[flat.Sample(rng)];
  for (int c : fc) EXPECT_GT(c, 700);
}

TEST(Csv, RoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "pulse_csv_test.csv")
          .string();
  {
    Result<CsvWriter> w = CsvWriter::Open(path);
    ASSERT_TRUE(w.ok());
    w->WriteRow({"a", "b", "c"});
    w->WriteRow({"1", "2.5", "x"});
    ASSERT_TRUE(w->Close().ok());
  }
  {
    Result<CsvReader> r = CsvReader::Open(path);
    ASSERT_TRUE(r.ok());
    std::vector<std::string> row;
    ASSERT_TRUE(r->Next(&row));
    EXPECT_EQ(row.size(), 3u);
    ASSERT_TRUE(r->Next(&row));
    EXPECT_EQ(row[1], "2.5");
    EXPECT_FALSE(r->Next(&row));
  }
  std::remove(path.c_str());
}

TEST(Csv, OpenMissingFileFails) {
  Result<CsvReader> r = CsvReader::Open("/nonexistent/path/file.csv");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace pulse
