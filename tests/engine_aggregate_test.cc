#include "engine/aggregate.h"

#include <cmath>

#include <gtest/gtest.h>

#include "engine/group_by.h"

namespace pulse {
namespace {

std::shared_ptr<const Schema> ValueSchema() {
  return Schema::Make(
      {{"id", ValueType::kInt64}, {"v", ValueType::kDouble}});
}

Tuple VTuple(double ts, int64_t id, double v) {
  return Tuple(ts, {Value(id), Value(v)});
}

TEST(AggState, UpdateAndFinalize) {
  AggState s;
  s.Update(3.0);
  s.Update(1.0);
  s.Update(2.0);
  EXPECT_DOUBLE_EQ(s.Finalize(AggFn::kMin), 1.0);
  EXPECT_DOUBLE_EQ(s.Finalize(AggFn::kMax), 3.0);
  EXPECT_DOUBLE_EQ(s.Finalize(AggFn::kSum), 6.0);
  EXPECT_DOUBLE_EQ(s.Finalize(AggFn::kAvg), 2.0);
  EXPECT_DOUBLE_EQ(s.Finalize(AggFn::kCount), 3.0);
}

TEST(AggState, EmptyAvgIsNan) {
  AggState s;
  EXPECT_TRUE(std::isnan(s.Finalize(AggFn::kAvg)));
  EXPECT_DOUBLE_EQ(s.Finalize(AggFn::kCount), 0.0);
}

TEST(WindowedAggregate, TumblingWindowSums) {
  // size == slide: tumbling windows [0,2), [2,4), ...
  WindowedAggregate agg("a", ValueSchema(), WindowSpec{2.0, 2.0},
                        AggFn::kSum, 1);
  std::vector<Tuple> out;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(agg.Process(0, VTuple(i * 0.5, 1, 1.0), &out).ok());
  }
  ASSERT_TRUE(agg.Flush(&out).ok());
  // 8 tuples at 0.5s spacing: windows [0,2) and [2,4) hold 4 each.
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0].at(0).as_double(), 4.0);
  EXPECT_DOUBLE_EQ(out[0].timestamp, 2.0);
  EXPECT_DOUBLE_EQ(out[1].at(0).as_double(), 4.0);
}

TEST(WindowedAggregate, SlidingWindowsOverlap) {
  // size 4, slide 1: steady state has 4 open windows per tuple.
  WindowedAggregate agg("a", ValueSchema(), WindowSpec{4.0, 1.0},
                        AggFn::kCount, 1);
  std::vector<Tuple> out;
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(agg.Process(0, VTuple(i * 0.1, 1, 1.0), &out).ok());
  }
  EXPECT_EQ(agg.open_windows(), 4u);
}

TEST(WindowedAggregate, MinOverSlidingWindow) {
  WindowedAggregate agg("a", ValueSchema(), WindowSpec{2.0, 1.0},
                        AggFn::kMin, 1);
  std::vector<Tuple> out;
  // Values dip to 0.5 at t in [2, 3).
  for (int i = 0; i < 60; ++i) {
    const double t = i * 0.1;
    const double v = (t >= 2.0 && t < 3.0) ? 0.5 : 2.0;
    ASSERT_TRUE(agg.Process(0, VTuple(t, 1, v), &out).ok());
  }
  ASSERT_TRUE(agg.Flush(&out).ok());
  bool saw_dip = false;
  for (const Tuple& t : out) {
    // Windows covering [2,3) must report 0.5.
    if (t.timestamp > 3.0 && t.timestamp <= 4.0) {
      EXPECT_DOUBLE_EQ(t.at(0).as_double(), 0.5);
      saw_dip = true;
    }
  }
  EXPECT_TRUE(saw_dip);
}

TEST(WindowedAggregate, PerTupleCostLinearInWindowCount) {
  // The paper's Fig. 7i driver: state increments per tuple == open
  // windows == size/slide.
  auto run = [](double size) {
    WindowedAggregate agg("a", ValueSchema(), WindowSpec{size, 1.0},
                          AggFn::kMin, 1);
    std::vector<Tuple> out;
    for (int i = 0; i < 1000; ++i) {
      EXPECT_TRUE(agg.Process(0, VTuple(i * 0.5, 1, 1.0), &out).ok());
    }
    return agg.metrics().comparisons;
  };
  const uint64_t c10 = run(10.0);
  const uint64_t c50 = run(50.0);
  // 5x window -> ~5x state increments (less edge effects).
  EXPECT_GT(c50, 3 * c10);
}

TEST(WindowedAggregate, AdvanceTimeClosesWindows) {
  WindowedAggregate agg("a", ValueSchema(), WindowSpec{1.0, 1.0},
                        AggFn::kSum, 1);
  std::vector<Tuple> out;
  ASSERT_TRUE(agg.Process(0, VTuple(0.0, 1, 5.0), &out).ok());
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(agg.AdvanceTime(10.0, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].at(0).as_double(), 5.0);
}

TEST(WindowedAggregate, EmptyWindowsNotEmitted) {
  WindowedAggregate agg("a", ValueSchema(), WindowSpec{1.0, 1.0},
                        AggFn::kSum, 1);
  std::vector<Tuple> out;
  ASSERT_TRUE(agg.Process(0, VTuple(0.0, 1, 1.0), &out).ok());
  // Long silence then one tuple: intermediate empty windows are skipped.
  ASSERT_TRUE(agg.Process(0, VTuple(10.0, 1, 2.0), &out).ok());
  ASSERT_TRUE(agg.Flush(&out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0].at(0).as_double(), 1.0);
  EXPECT_DOUBLE_EQ(out[1].at(0).as_double(), 2.0);
}

TEST(GroupedWindowedAggregate, PerGroupResults) {
  GroupedWindowedAggregate agg("g", ValueSchema(), WindowSpec{2.0, 2.0},
                               AggFn::kAvg, 1, 0);
  std::vector<Tuple> out;
  ASSERT_TRUE(agg.Process(0, VTuple(0.0, 1, 10.0), &out).ok());
  ASSERT_TRUE(agg.Process(0, VTuple(0.5, 2, 20.0), &out).ok());
  ASSERT_TRUE(agg.Process(0, VTuple(1.0, 1, 30.0), &out).ok());
  ASSERT_TRUE(agg.Flush(&out).ok());
  ASSERT_EQ(out.size(), 2u);
  // Ordered by group key (std::map).
  EXPECT_EQ(out[0].at(0).as_int64(), 1);
  EXPECT_DOUBLE_EQ(out[0].at(1).as_double(), 20.0);
  EXPECT_EQ(out[1].at(0).as_int64(), 2);
  EXPECT_DOUBLE_EQ(out[1].at(1).as_double(), 20.0);
}

TEST(GroupedWindowedAggregate, GroupsAreIndependent) {
  GroupedWindowedAggregate agg("g", ValueSchema(), WindowSpec{1.0, 1.0},
                               AggFn::kMin, 1, 0);
  std::vector<Tuple> out;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        agg.Process(0, VTuple(i * 0.1, i % 2, 100.0 - i), &out).ok());
  }
  ASSERT_TRUE(agg.Flush(&out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0].at(1).as_double(), 92.0);  // group 0: min(100,98,..,92)
  EXPECT_DOUBLE_EQ(out[1].at(1).as_double(), 91.0);  // group 1
}

TEST(AggFnToString, Names) {
  EXPECT_STREQ(AggFnToString(AggFn::kMin), "min");
  EXPECT_STREQ(AggFnToString(AggFn::kCount), "count");
}

// Parameterized: every aggregate function over one tumbling window equals
// the brute-force reference.
class AggFnSweep : public ::testing::TestWithParam<AggFn> {};

TEST_P(AggFnSweep, MatchesBruteForce) {
  const AggFn fn = GetParam();
  WindowedAggregate agg("a", ValueSchema(), WindowSpec{10.0, 10.0}, fn, 1);
  std::vector<Tuple> out;
  std::vector<double> values;
  for (int i = 0; i < 20; ++i) {
    const double v = std::sin(i * 0.7) * 10.0;
    values.push_back(v);
    ASSERT_TRUE(agg.Process(0, VTuple(i * 0.25, 1, v), &out).ok());
  }
  ASSERT_TRUE(agg.Flush(&out).ok());
  ASSERT_EQ(out.size(), 1u);
  AggState ref;
  for (double v : values) ref.Update(v);
  EXPECT_NEAR(out[0].at(0).as_double(), ref.Finalize(fn), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(AllFns, AggFnSweep,
                         ::testing::Values(AggFn::kMin, AggFn::kMax,
                                           AggFn::kSum, AggFn::kAvg,
                                           AggFn::kCount));

}  // namespace
}  // namespace pulse
