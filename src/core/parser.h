#ifndef PULSE_CORE_PARSER_H_
#define PULSE_CORE_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "core/query.h"
#include "util/result.h"

namespace pulse {

/// Parser for Pulse's StreamSQL-ish query language (the declarative
/// surface the paper uses throughout — Fig. 1's MODEL clause, the MACD
/// and "following" queries of Section V-B).
///
/// Supported grammar (case-insensitive keywords):
///
///   statement   := SELECT items FROM source
///                  (JOIN source ON '(' predicate ')')?
///                  (WHERE predicate)?
///                  (GROUP BY qualified)?
///                  (HAVING predicate)?
///   source      := stream (MODEL model (',' model)*)? window? (AS ident)?
///                | '(' statement ')' window? (AS ident)?
///   window      := '[' SIZE number (ADVANCE|SLIDE) number ']'
///   model       := qualified '=' poly_expr       e.g. A.x = A.x + A.v*t
///   items       := '*' | item (',' item)*
///   item        := qualified (AS ident)?
///                | aggfn '(' qualified ')' (AS ident)?
///                | qualified '-' qualified AS ident
///                | DIST '(' qualified{4} ')' (AS ident)?
///   predicate   := or_expr with AND / OR / NOT / parentheses; atoms are
///                  comparisons `operand (< <= = <> >= >) operand` and
///                  DIST(x1,y1,x2,y2) cmp constant
///   qualified   := ident | ident '.' ident
///
/// Streams referenced in FROM must already be declared on the QuerySpec
/// (AddStream) — the parser resolves attribute references against their
/// schemas. MODEL clauses in the text are checked for consistency against
/// the declared models.
///
/// The parse appends operator nodes to the QuerySpec and returns the sink
/// node id. Key-attribute equality in a join's ON clause becomes
/// match_keys; key inequality becomes require_distinct_keys (paper
/// Section II-B key handling). Join attribute prefixes are taken from the
/// source aliases, so "S.ap" in outer queries resolves naturally.
class QueryParser {
 public:
  /// Parses one statement, appending nodes to `spec`.
  static Result<QuerySpec::NodeId> Parse(QuerySpec* spec,
                                         std::string_view sql);

  /// Parses a standalone predicate against a single stream's attributes
  /// (`alias` optional). Exposed for tests and interactive tooling.
  static Result<Predicate> ParsePredicate(std::string_view text,
                                          std::string_view left_alias,
                                          std::string_view right_alias);

  /// Parses a MODEL definition, e.g. "A.x = A.x + A.v*t" with alias "A":
  /// returns the modeled attribute and its coefficient fields in degree
  /// order.
  static Result<ModelClause> ParseModel(std::string_view text,
                                        std::string_view alias);
};

namespace parser_internal {

/// Token kinds produced by the lexer (exposed for unit tests).
enum class TokenKind {
  kIdent,
  kNumber,
  kSymbol,  // punctuation and operators: ( ) [ ] , . * - + = < > <= >= <>
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // identifier (lower-cased) or symbol spelling
  double number = 0.0;
  size_t position = 0;  // offset in the input, for error messages
};

/// Splits `input` into tokens; fails on unexpected characters.
Result<std::vector<Token>> Tokenize(std::string_view input);

}  // namespace parser_internal

}  // namespace pulse

#endif  // PULSE_CORE_PARSER_H_
