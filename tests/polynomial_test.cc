#include "math/polynomial.h"

#include <cmath>

#include <gtest/gtest.h>

namespace pulse {
namespace {

TEST(Polynomial, DefaultIsZero) {
  Polynomial p;
  EXPECT_TRUE(p.IsZero());
  EXPECT_EQ(p.degree(), 0u);
  EXPECT_DOUBLE_EQ(p.Evaluate(12.3), 0.0);
}

TEST(Polynomial, TrimsTrailingZeros) {
  Polynomial p({1.0, 2.0, 0.0, 0.0});
  EXPECT_EQ(p.degree(), 1u);
  EXPECT_EQ(p.coeffs().size(), 2u);
}

TEST(Polynomial, TrimsToZeroPolynomial) {
  Polynomial p({0.0, 0.0});
  EXPECT_TRUE(p.IsZero());
}

TEST(Polynomial, EvaluateHorner) {
  // 2 - 3t + t^2 at t = 5: 2 - 15 + 25 = 12.
  Polynomial p({2.0, -3.0, 1.0});
  EXPECT_DOUBLE_EQ(p.Evaluate(5.0), 12.0);
  EXPECT_DOUBLE_EQ(p.Evaluate(0.0), 2.0);
}

TEST(Polynomial, ConstantAndMonomial) {
  EXPECT_DOUBLE_EQ(Polynomial::Constant(7.0).Evaluate(100.0), 7.0);
  Polynomial m = Polynomial::Monomial(3.0, 2);
  EXPECT_EQ(m.degree(), 2u);
  EXPECT_DOUBLE_EQ(m.Evaluate(4.0), 48.0);
}

TEST(Polynomial, Arithmetic) {
  Polynomial a({1.0, 2.0});        // 1 + 2t
  Polynomial b({3.0, 0.0, 1.0});   // 3 + t^2
  Polynomial sum = a + b;          // 4 + 2t + t^2
  EXPECT_DOUBLE_EQ(sum.Evaluate(2.0), 12.0);
  Polynomial diff = b - a;         // 2 - 2t + t^2
  EXPECT_DOUBLE_EQ(diff.Evaluate(3.0), 5.0);
  Polynomial prod = a * b;         // (1+2t)(3+t^2)
  EXPECT_DOUBLE_EQ(prod.Evaluate(2.0), (1 + 4) * (3 + 4));
  EXPECT_EQ(prod.degree(), 3u);
  Polynomial neg = -a;
  EXPECT_DOUBLE_EQ(neg.Evaluate(1.0), -3.0);
  Polynomial scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled.Evaluate(1.0), 6.0);
  EXPECT_DOUBLE_EQ((2.0 * a).Evaluate(1.0), 6.0);
}

TEST(Polynomial, SubtractionCancelsToZero) {
  Polynomial a({1.0, 2.0, 3.0});
  EXPECT_TRUE((a - a).IsZero());
}

TEST(Polynomial, CompoundAssignment) {
  Polynomial a({1.0});
  a += Polynomial({0.0, 1.0});
  EXPECT_DOUBLE_EQ(a.Evaluate(2.0), 3.0);
  a -= Polynomial({1.0});
  EXPECT_DOUBLE_EQ(a.Evaluate(2.0), 2.0);
}

TEST(Polynomial, Derivative) {
  // d/dt (1 + 2t + 3t^2) = 2 + 6t.
  Polynomial p({1.0, 2.0, 3.0});
  Polynomial d = p.Derivative();
  EXPECT_EQ(d.degree(), 1u);
  EXPECT_DOUBLE_EQ(d.Evaluate(2.0), 14.0);
  EXPECT_TRUE(Polynomial::Constant(5.0).Derivative().IsZero());
  EXPECT_TRUE(Polynomial().Derivative().IsZero());
}

TEST(Polynomial, AntiderivativeInvertsDerivative) {
  Polynomial p({4.0, -2.0, 9.0});
  Polynomial anti = p.Antiderivative();
  EXPECT_TRUE(anti.Derivative().AlmostEquals(p));
  EXPECT_DOUBLE_EQ(anti.Evaluate(0.0), 0.0);
}

TEST(Polynomial, DefiniteIntegral) {
  // Integral of 2t over [0, 3] is 9.
  Polynomial p({0.0, 2.0});
  EXPECT_NEAR(p.Integrate(0.0, 3.0), 9.0, 1e-12);
  // Reversed limits negate.
  EXPECT_NEAR(p.Integrate(3.0, 0.0), -9.0, 1e-12);
}

TEST(Polynomial, ShiftMatchesDirectEvaluation) {
  Polynomial p({1.0, -2.0, 0.5, 0.25});
  const double s = 1.75;
  Polynomial shifted = p.Shift(s);
  for (double t = -3.0; t <= 3.0; t += 0.5) {
    EXPECT_NEAR(shifted.Evaluate(t), p.Evaluate(t + s), 1e-9) << "t=" << t;
  }
}

TEST(Polynomial, ShiftByWindowExpandsBinomially) {
  // The sum-aggregate tail integral uses p(t - w); verify Shift(-w).
  Polynomial p({0.0, 0.0, 1.0});  // t^2
  Polynomial q = p.Shift(-2.0);   // (t-2)^2 = 4 - 4t + t^2
  EXPECT_NEAR(q.coeff(0), 4.0, 1e-12);
  EXPECT_NEAR(q.coeff(1), -4.0, 1e-12);
  EXPECT_NEAR(q.coeff(2), 1.0, 1e-12);
}

TEST(Polynomial, ScaleArgument) {
  Polynomial p({1.0, 1.0, 1.0});
  Polynomial q = p.ScaleArgument(2.0);
  for (double t = -2.0; t <= 2.0; t += 0.25) {
    EXPECT_NEAR(q.Evaluate(t), p.Evaluate(2.0 * t), 1e-12);
  }
}

TEST(Polynomial, MaxAbsDifferenceFindsInteriorExtremum) {
  // p - q = t^2 - 1 on [-2, 2]: max |.| is 3 at the endpoints; on [-1, 1]
  // the interior extremum at t=0 gives 1.
  Polynomial p({0.0, 0.0, 1.0});
  Polynomial q({1.0});
  EXPECT_NEAR(p.MaxAbsDifference(q, -2.0, 2.0), 3.0, 1e-9);
  EXPECT_NEAR(p.MaxAbsDifference(q, -1.0, 1.0), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(p.MaxAbsDifference(p, -5.0, 5.0), 0.0);
}

TEST(Polynomial, ToString) {
  EXPECT_EQ(Polynomial().ToString(), "0");
  EXPECT_EQ(Polynomial::Constant(3.0).ToString(), "3");
  Polynomial p({1.0, 2.0});
  EXPECT_EQ(p.ToString(), "1 + 2*t");
}

// Property-style sweep: (p*q)' == p'q + pq' for assorted polynomials.
class PolynomialProductRule
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(PolynomialProductRule, DerivativeOfProduct) {
  auto [da, db] = GetParam();
  std::vector<double> ca, cb;
  for (int i = 0; i <= da; ++i) ca.push_back(0.5 * i + 1.0);
  for (int i = 0; i <= db; ++i) cb.push_back(1.5 * i - 2.0);
  Polynomial a{std::vector<double>(ca)};
  Polynomial b{std::vector<double>(cb)};
  Polynomial lhs = (a * b).Derivative();
  Polynomial rhs = a.Derivative() * b + a * b.Derivative();
  EXPECT_TRUE(lhs.AlmostEquals(rhs, 1e-9))
      << lhs.ToString() << " vs " << rhs.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Degrees, PolynomialProductRule,
    ::testing::Values(std::make_pair(0, 0), std::make_pair(1, 1),
                      std::make_pair(2, 1), std::make_pair(3, 2),
                      std::make_pair(4, 4), std::make_pair(5, 3)));

}  // namespace
}  // namespace pulse
