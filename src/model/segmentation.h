#ifndef PULSE_MODEL_SEGMENTATION_H_
#define PULSE_MODEL_SEGMENTATION_H_

#include <optional>
#include <vector>

#include "math/interval_set.h"
#include "math/polynomial.h"
#include "model/fitting.h"
#include "util/result.h"

namespace pulse {

/// A fitted model piece produced by a segmentation algorithm.
struct FittedSegment {
  Interval range = Interval::ClosedOpen(0.0, 0.0);  // [first t, last t + dt)
  Polynomial poly;          // model in absolute time
  size_t num_points = 0;    // samples represented by this piece
  double max_error = 0.0;   // max abs residual over those samples
};

/// Segmentation configuration shared by all algorithms.
struct SegmentationOptions {
  /// Polynomial degree of each piece (1 = the paper's piecewise-linear
  /// historical models, Section V-A "online segmentation-based algorithm
  /// [13] to find a piecewise linear model").
  size_t degree = 1;
  /// A piece is closed when its max abs residual would exceed this bound.
  double max_error = 1.0;
  /// Upper bound on samples per piece (0 = unlimited).
  size_t max_points_per_segment = 0;
  /// Extends each emitted range's upper end by the trailing inter-arrival
  /// gap so consecutive pieces tile time without holes.
  bool extend_to_next = true;
};

/// Online sliding-window segmenter in the style of Keogh et al. (ICDM'01),
/// the algorithm the paper cites for historical model fitting. Samples are
/// fed one at a time; a FittedSegment is emitted whenever adding the next
/// sample would push the fit error beyond options.max_error.
///
/// Cost note: the fit is recomputed on the growing buffer, giving the
/// classic O(n * L) behaviour for mean piece length L; the paper's Fig. 8
/// "modeling throughput" bench measures exactly this operator.
class SlidingWindowSegmenter {
 public:
  explicit SlidingWindowSegmenter(SegmentationOptions options);

  /// Adds a sample. Returns a completed segment when one closes, else
  /// nullopt. Samples must arrive in non-decreasing time order.
  std::optional<FittedSegment> Add(const Sample& sample);

  /// Emits the final partial segment, if any.
  std::optional<FittedSegment> Flush();

  /// Samples buffered toward the current (unfinished) piece.
  size_t pending() const { return buffer_.size(); }

 private:
  // Builds a FittedSegment from buffer_ (must have >= 1 sample).
  FittedSegment MakeSegment(const std::vector<Sample>& pts) const;

  SegmentationOptions options_;
  std::vector<Sample> buffer_;
  double last_gap_ = 0.0;  // most recent inter-arrival spacing
};

/// Offline bottom-up segmentation: starts from finest pieces and greedily
/// merges the pair with the lowest merged error until no merge stays
/// within options.max_error. Better fits than sliding-window at higher
/// cost; part of ablation A3.
std::vector<FittedSegment> BottomUpSegmentation(
    const std::vector<Sample>& samples, const SegmentationOptions& options);

/// SWAB (Sliding Window And Bottom-up, Keogh et al.): bottom-up inside a
/// sliding buffer, giving online behaviour with near-offline quality.
std::vector<FittedSegment> SwabSegmentation(
    const std::vector<Sample>& samples, const SegmentationOptions& options,
    size_t buffer_size = 64);

/// Convenience: runs the online sliding-window segmenter over a full
/// sample vector.
std::vector<FittedSegment> SlidingWindowSegmentation(
    const std::vector<Sample>& samples, const SegmentationOptions& options);

}  // namespace pulse

#endif  // PULSE_MODEL_SEGMENTATION_H_
