#ifndef PULSE_STORE_CHECKPOINT_H_
#define PULSE_STORE_CHECKPOINT_H_

#include <cstdint>
#include <string>

#include "util/result.h"

namespace pulse {
namespace store {

/// Runtime checkpoint (docs/STORAGE.md). Solver caches, envelopes, and
/// segmenter state are all rebuildable by deterministic replay of the
/// log, so the checkpoint carries only what replay cannot reconstruct:
/// how much of the log had been applied and which outputs had already
/// been delivered downstream when the checkpoint was taken. Recovery
/// replays the whole consistent log prefix and suppresses the first
/// `delivered_outputs` outputs after verifying their canonical hash.
struct Checkpoint {
  /// Records of the log the checkpoint covers.
  uint64_t log_records = 0;
  /// Consistent log size in bytes at checkpoint time.
  uint64_t log_bytes = 0;
  /// Output segments already delivered downstream.
  uint64_t delivered_outputs = 0;
  /// Canonical FNV-1a hash of the delivered prefix (ids excluded; see
  /// store/recovery.h). kCanonicalHashSeed when nothing was delivered.
  uint64_t output_hash = 0;
  /// True when taken at a drain point: all inputs flushed through
  /// Finish(), outputs final (the serving drain-to-checkpoint path).
  bool finished = false;
};

/// Serialized image: 8-byte magic "PULSECKP", u32 version, u32 payload
/// length, u32 CRC-32C(payload), payload.
std::string EncodeCheckpoint(const Checkpoint& checkpoint);

/// Decodes a checkpoint image; any truncation, magic/version mismatch,
/// or checksum failure is an IoError (never a crash — this is the
/// second decoder the fuzz target drives).
Result<Checkpoint> DecodeCheckpoint(const char* data, size_t n);

/// Atomically replaces the checkpoint at `path`: writes `path`.tmp,
/// fsyncs it, renames over `path`, then fsyncs the directory. A crash
/// at any point leaves either the old or the new checkpoint intact,
/// never a torn mix.
Status WriteCheckpointFile(const std::string& path,
                           const Checkpoint& checkpoint);

/// Reads and decodes `path`. NotFound when no checkpoint exists.
Result<Checkpoint> ReadCheckpointFile(const std::string& path);

}  // namespace store
}  // namespace pulse

#endif  // PULSE_STORE_CHECKPOINT_H_
