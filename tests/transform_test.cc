#include "core/transform.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/operators/filter.h"
#include "core/operators/group_by.h"
#include "core/operators/join.h"
#include "engine/executor.h"
#include "workload/moving_object.h"

namespace pulse {
namespace {

QuerySpec SpecWithObjects() {
  QuerySpec spec;
  EXPECT_TRUE(
      spec.AddStream(MovingObjectGenerator::MakeStreamSpec("objects", 1.0))
          .ok());
  return spec;
}

Predicate XLessThan(double c) {
  return Predicate::Comparison(ComparisonTerm::Simple(
      AttrRef::Left("x"), CmpOp::kLt, Operand::Constant(c)));
}

TEST(QuerySpec, StreamValidation) {
  QuerySpec spec;
  StreamSpec bad;
  bad.name = "s";
  bad.schema = Schema::Make({{"a", ValueType::kDouble}});
  bad.key_field = "missing";
  EXPECT_FALSE(spec.AddStream(bad).ok());
  bad.key_field = "a";
  bad.models = {{"m", {"nope"}}};
  EXPECT_FALSE(spec.AddStream(bad).ok());
  bad.models = {};
  EXPECT_TRUE(spec.AddStream(bad).ok());
  EXPECT_FALSE(spec.AddStream(bad).ok());  // duplicate
  EXPECT_TRUE(spec.stream("s").ok());
  EXPECT_FALSE(spec.stream("zzz").ok());
}

TEST(QuerySpec, SinkNodes) {
  QuerySpec spec = SpecWithObjects();
  auto f1 = spec.AddFilter("f1", QuerySpec::Input::Stream("objects"),
                           FilterSpec{XLessThan(5.0)});
  auto f2 = spec.AddFilter("f2", QuerySpec::Input::Node(f1),
                           FilterSpec{XLessThan(3.0)});
  EXPECT_EQ(spec.SinkNodes(), std::vector<QuerySpec::NodeId>{f2});
}

TEST(BuildPulsePlan, FilterChain) {
  QuerySpec spec = SpecWithObjects();
  auto f1 = spec.AddFilter("f1", QuerySpec::Input::Stream("objects"),
                           FilterSpec{XLessThan(5.0)});
  spec.AddFilter("f2", QuerySpec::Input::Node(f1),
                 FilterSpec{XLessThan(3.0)});
  Result<TransformedPlan> plan = BuildPulsePlan(spec);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->plan.num_nodes(), 2u);
  EXPECT_NE(dynamic_cast<PulseFilter*>(plan->plan.node(0)), nullptr);
  EXPECT_EQ(plan->plan.source_bindings("objects").size(), 1u);
}

TEST(BuildPulsePlan, GroupedAggregateUsesGroupBy) {
  QuerySpec spec = SpecWithObjects();
  AggregateSpec agg;
  agg.fn = AggFn::kAvg;
  agg.attribute = "x";
  agg.window_seconds = 2.0;
  agg.slide_seconds = 1.0;
  agg.per_key = true;
  spec.AddAggregate("a", QuerySpec::Input::Stream("objects"), agg);
  Result<TransformedPlan> plan = BuildPulsePlan(spec);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(dynamic_cast<PulseGroupBy*>(plan->plan.node(0)), nullptr);
}

TEST(BuildPulsePlan, CountAggregateRejected) {
  QuerySpec spec = SpecWithObjects();
  AggregateSpec agg;
  agg.fn = AggFn::kCount;
  agg.attribute = "x";
  spec.AddAggregate("a", QuerySpec::Input::Stream("objects"), agg);
  EXPECT_FALSE(BuildPulsePlan(spec).ok());
}

TEST(BuildDiscretePlan, FilterMatchesPredicate) {
  QuerySpec spec = SpecWithObjects();
  spec.AddFilter("f", QuerySpec::Input::Stream("objects"),
                 FilterSpec{XLessThan(5.0)});
  Result<DiscretePlan> plan = BuildDiscretePlan(spec);
  ASSERT_TRUE(plan.ok());
  Result<Executor> exec = Executor::Make(std::move(plan->plan));
  ASSERT_TRUE(exec.ok());
  // x = 3 passes, x = 7 does not.
  Tuple pass(0.0, {Value(int64_t{1}), Value(3.0), Value(0.0), Value(0.0),
                   Value(0.0)});
  Tuple fail(0.1, {Value(int64_t{1}), Value(7.0), Value(0.0), Value(0.0),
                   Value(0.0)});
  ASSERT_TRUE(exec->PushTuple("objects", pass).ok());
  ASSERT_TRUE(exec->PushTuple("objects", fail).ok());
  EXPECT_EQ(exec->output().size(), 1u);
}

TEST(BuildDiscretePlan, JoinAddsPairKeyColumn) {
  QuerySpec spec = SpecWithObjects();
  JoinSpec join;
  join.predicate = Predicate::Comparison(ComparisonTerm::Simple(
      AttrRef::Left("x"), CmpOp::kLt,
      Operand::Attribute(AttrRef::Right("x"))));
  join.window_seconds = 10.0;
  join.require_distinct_keys = true;
  spec.AddJoin("j", QuerySpec::Input::Stream("objects"),
               QuerySpec::Input::Stream("objects"), join);
  Result<DiscretePlan> plan = BuildDiscretePlan(spec);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->sink_schemas.size(), 1u);
  EXPECT_TRUE(plan->sink_schemas[0]->HasField("pair_key"));
  EXPECT_TRUE(plan->sink_schemas[0]->HasField("left.x"));
}

TEST(BuildDiscretePlan, MapComputesDifference) {
  QuerySpec spec = SpecWithObjects();
  MapSpec map;
  map.outputs = {ComputedAttr::Difference("dx", AttrRef::Left("x"),
                                          AttrRef::Left("y"))};
  spec.AddMap("m", QuerySpec::Input::Stream("objects"), map);
  Result<DiscretePlan> plan = BuildDiscretePlan(spec);
  ASSERT_TRUE(plan.ok());
  Result<Executor> exec = Executor::Make(std::move(plan->plan));
  ASSERT_TRUE(exec.ok());
  Tuple t(0.0, {Value(int64_t{1}), Value(7.0), Value(3.0), Value(0.0),
                Value(0.0)});
  ASSERT_TRUE(exec->PushTuple("objects", t).ok());
  ASSERT_EQ(exec->output().size(), 1u);
  // Columns: passthrough (5) + dx.
  EXPECT_DOUBLE_EQ(exec->output()[0].values.back().as_double(), 4.0);
}

TEST(SegmentModelBuilder, BuildsSegmentFromModelClause) {
  StreamSpec stream = MovingObjectGenerator::MakeStreamSpec("objects", 2.0);
  Result<SegmentModelBuilder> builder = SegmentModelBuilder::Make(stream);
  ASSERT_TRUE(builder.ok());
  // Object 5 at position (100, 50) with velocity (2, -1) at t=10.
  Tuple t(10.0, {Value(int64_t{5}), Value(100.0), Value(50.0), Value(2.0),
                 Value(-1.0)});
  Result<Segment> seg = builder->BuildSegment(t);
  ASSERT_TRUE(seg.ok());
  EXPECT_EQ(seg->key, 5);
  EXPECT_DOUBLE_EQ(seg->range.lo, 10.0);
  EXPECT_DOUBLE_EQ(seg->range.hi, 12.0);
  // Models in absolute time: x(10) = 100, x(11) = 102; y(11) = 49.
  EXPECT_NEAR(seg->attribute("x")->Evaluate(10.0), 100.0, 1e-9);
  EXPECT_NEAR(seg->attribute("x")->Evaluate(11.0), 102.0, 1e-9);
  EXPECT_NEAR(seg->attribute("y")->Evaluate(11.0), 49.0, 1e-9);
}

TEST(SegmentModelBuilder, ObservedValueAndKey) {
  StreamSpec stream = MovingObjectGenerator::MakeStreamSpec("objects", 2.0);
  Result<SegmentModelBuilder> builder = SegmentModelBuilder::Make(stream);
  ASSERT_TRUE(builder.ok());
  Tuple t(10.0, {Value(int64_t{5}), Value(100.0), Value(50.0), Value(2.0),
                 Value(-1.0)});
  EXPECT_EQ(builder->KeyOf(t), 5);
  Result<double> x = builder->ObservedValue(t, "x");
  ASSERT_TRUE(x.ok());
  EXPECT_DOUBLE_EQ(*x, 100.0);
  EXPECT_FALSE(builder->ObservedValue(t, "zzz").ok());
}

TEST(SegmentModelBuilder, RejectsBadSpec) {
  StreamSpec stream = MovingObjectGenerator::MakeStreamSpec("objects", 0.0);
  EXPECT_FALSE(SegmentModelBuilder::Make(stream).ok());
}

// Cross-check: the discrete and Pulse filter plans agree on which times
// pass, for a linear trajectory sampled densely.
TEST(TransformAgreement, FilterDiscreteVsPulse) {
  QuerySpec spec = SpecWithObjects();
  spec.AddFilter("f", QuerySpec::Input::Stream("objects"),
                 FilterSpec{XLessThan(5.0)});

  Result<DiscretePlan> dplan = BuildDiscretePlan(spec);
  ASSERT_TRUE(dplan.ok());
  Result<Executor> dexec = Executor::Make(std::move(dplan->plan));
  ASSERT_TRUE(dexec.ok());

  Result<TransformedPlan> pplan = BuildPulsePlan(spec);
  ASSERT_TRUE(pplan.ok());
  Result<PulseExecutor> pexec = PulseExecutor::Make(std::move(pplan->plan));
  ASSERT_TRUE(pexec.ok());

  // Trajectory x(t) = t - 3 on [0, 20): x < 5 until t = 8.
  Segment seg(1, Interval::ClosedOpen(0.0, 20.0));
  seg.set_attribute("x", Polynomial({-3.0, 1.0}));
  seg.set_attribute("y", Polynomial());
  ASSERT_TRUE(pexec->PushSegment("objects", seg).ok());
  IntervalSet pulse_pass;
  for (const Segment& s : pexec->output()) pulse_pass.Add(s.range);

  for (double t = 0.05; t < 20.0; t += 0.1) {
    Tuple tuple(t, {Value(int64_t{1}), Value(t - 3.0), Value(0.0),
                    Value(1.0), Value(0.0)});
    ASSERT_TRUE(dexec->PushTuple("objects", tuple).ok());
  }
  // Count: discrete passes should equal the sampled measure of the pulse
  // solution ranges.
  size_t expected = 0;
  for (double t = 0.05; t < 20.0; t += 0.1) {
    if (pulse_pass.Contains(t)) ++expected;
  }
  EXPECT_EQ(dexec->output().size(), expected);
}

}  // namespace
}  // namespace pulse
