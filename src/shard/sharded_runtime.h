#ifndef PULSE_SHARD_SHARDED_RUNTIME_H_
#define PULSE_SHARD_SHARDED_RUNTIME_H_

#include <memory>
#include <string>
#include <vector>

#include "core/query.h"
#include "core/runtime.h"
#include "obs/metrics.h"
#include "shard/shard_pool.h"
#include "util/result.h"

namespace pulse {
namespace shard {

struct ShardedRuntimeOptions {
  /// Shard (worker thread) count; clamped to at least 1.
  size_t num_shards = 1;
  /// Per-shard exchange queue capacity.
  size_t exchange_capacity = 256;
  /// Template for the per-shard runtimes (see ShardPoolOptions).
  HistoricalRuntime::Options runtime;
  /// Pool-level registry (`shard/<i>/...` mirrors + rollups). nullptr:
  /// privately owned, reachable via metrics().
  obs::MetricsRegistry* metrics = nullptr;
};

/// Single-client convenience over ShardPool with the HistoricalRuntime
/// API: the differential oracle drives serial and sharded replays
/// through the same call shape and requires byte-identical outputs
/// (docs/SHARDING.md). All calls from one thread.
class ShardedRuntime {
 public:
  static Result<ShardedRuntime> Make(const QuerySpec& spec,
                                     ShardedRuntimeOptions options);

  ShardedRuntime(ShardedRuntime&&) = default;
  ShardedRuntime& operator=(ShardedRuntime&&) = default;

  Status ProcessTuple(const std::string& stream, const Tuple& tuple) {
    return client_->ProcessTuple(stream, tuple);
  }
  Status ProcessTuples(const std::string& stream, const Tuple* tuples,
                       size_t n) {
    return client_->ProcessTuples(stream, tuples, n);
  }
  Status ProcessSegment(const std::string& stream, Segment segment) {
    return client_->ProcessSegment(stream, std::move(segment));
  }

  /// Blocks until every shard has flushed; afterwards
  /// TakeOutputSegments holds the complete, canonically merged output.
  Status Finish() { return client_->Finish(); }

  /// Mid-run barrier (see ShardClient::Barrier): waits for everything
  /// routed so far without ending input; afterwards TakeOutputSegments
  /// holds the deterministic prefix for exactly those items.
  Status Barrier() { return client_->Barrier(); }

  std::vector<Segment> TakeOutputSegments() {
    return client_->TakeOutputSegments();
  }

  /// Summed over shards; refreshed rollups land in metrics().
  RuntimeStats stats() const { return client_->stats(); }

  /// Pool-level registry. Call SyncMetrics() first for fresh mirrors.
  obs::MetricsRegistry* metrics() const { return pool_->metrics(); }
  void SyncMetrics() { pool_->SyncMetrics(/*force=*/true); }

  size_t num_shards() const { return pool_->num_shards(); }
  bool partitionable() const { return pool_->partition().partitionable; }
  const ShardPool& pool() const { return *pool_; }

 private:
  ShardedRuntime() = default;

  // Destruction order matters: client before pool.
  std::unique_ptr<ShardPool> pool_;
  std::unique_ptr<ShardClient> client_;
};

}  // namespace shard
}  // namespace pulse

#endif  // PULSE_SHARD_SHARDED_RUNTIME_H_
