#include "engine/schema.h"

#include <sstream>

namespace pulse {

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  for (size_t i = 0; i < fields_.size(); ++i) {
    index_.emplace(fields_[i].name, i);
  }
}

Result<size_t> Schema::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("schema has no field '" + name + "'");
  }
  return it->second;
}

std::shared_ptr<const Schema> Schema::Concat(const Schema& left,
                                             const Schema& right,
                                             const std::string& left_prefix,
                                             const std::string& right_prefix) {
  std::vector<Field> fields;
  fields.reserve(left.num_fields() + right.num_fields());
  for (const Field& f : left.fields()) {
    fields.push_back({left_prefix + f.name, f.type});
  }
  for (const Field& f : right.fields()) {
    fields.push_back({right_prefix + f.name, f.type});
  }
  return Make(std::move(fields));
}

std::string Schema::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) os << ", ";
    os << fields_[i].name << ":" << ValueTypeToString(fields_[i].type);
  }
  os << ")";
  return os.str();
}

}  // namespace pulse
