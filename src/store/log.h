#ifndef PULSE_STORE_LOG_H_
#define PULSE_STORE_LOG_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "engine/tuple.h"
#include "model/segment.h"
#include "util/result.h"

namespace pulse {
namespace store {

/// Append-only segment log (docs/STORAGE.md). On-disk layout:
///
///   header:  8-byte magic "PULSELOG", u32 version (little-endian)
///   record:  u32 payload length | u32 CRC-32C(payload) | payload
///   payload: u8 record type, string stream name, body
///
/// Bodies reuse the serving wire codec (serve/wire.h), so a persisted
/// segment is byte-identical to one shipped over a socket. The log is
/// the system of record: everything else in the store (segment trees,
/// timelines, runtime state) is rebuilt from it on recovery.

enum class LogRecordType : uint8_t {
  /// A fitted input segment admitted on `stream`.
  kSegment = 1,
  /// A raw input tuple admitted on `stream` (segmented again on replay).
  kTuple = 2,
  /// A late-arriving correction: patches already-closed time on replay
  /// of the store's historical view (not fed to live runtimes).
  kBackfill = 3,
};

struct LogRecord {
  LogRecordType type = LogRecordType::kSegment;
  std::string stream;
  Segment segment;  // kSegment / kBackfill
  Tuple tuple;      // kTuple
};

struct LogLimits {
  /// Upper bound on a single record payload; mirrors the frame
  /// protocol's DecodeLimits so a corrupt length prefix cannot force a
  /// huge allocation.
  size_t max_record_bytes = 4 * 1024 * 1024;
};

/// Why a scan stopped before the end of the buffer. Everything after
/// the reported consistent prefix is a torn tail: recovery truncates
/// it and resumes appending from there.
enum class LogTailState : uint8_t {
  kClean = 0,        // scanned to the end, every record intact
  kBadHeader = 1,    // magic/version mismatch or file shorter than header
  kTornRecord = 2,   // trailing bytes shorter than the framed record
  kBadChecksum = 3,  // stored CRC does not match the payload
  kBadPayload = 4,   // CRC intact but the payload fails to decode
};

const char* LogTailStateToString(LogTailState state);

struct LogScan {
  std::vector<LogRecord> records;
  /// Header plus every intact record — the recovery truncation point.
  uint64_t consistent_bytes = 0;
  /// Total bytes scanned (the file/buffer size).
  uint64_t scanned_bytes = 0;
  LogTailState tail = LogTailState::kClean;
  /// Human-readable diagnosis of the tail (empty when clean).
  std::string detail;

  bool clean() const { return tail == LogTailState::kClean; }
};

/// The 12-byte file header.
std::string EncodeLogHeader();

/// Appends one framed record (length | crc | payload) to `out`.
void EncodeLogRecord(const LogRecord& record, std::string* out);

/// Decodes one record payload (the bytes the CRC covers).
Result<LogRecord> DecodeLogPayload(const char* data, size_t n);

/// Scans a whole log image. Never fails: corruption is reported via
/// `tail`/`detail` and the scan stops at the last consistent prefix.
/// This is the function the fuzz target drives with adversarial bytes.
LogScan ScanLog(const char* data, size_t n, const LogLimits& limits = {});

/// Reads and scans a log file. NotFound when the file does not exist.
Result<LogScan> ScanLogFile(const std::string& path,
                            const LogLimits& limits = {});

/// Truncates `path` to exactly `size` bytes (the torn-tail repair).
Status TruncateFile(const std::string& path, uint64_t size);

/// Appender. Creates the file (writing the header) or opens an
/// existing one for append; when appending, the caller must already
/// have truncated the file to a consistent prefix (recovery does).
class SegmentLogWriter {
 public:
  /// A closed writer (every operation fails); Open() builds live ones.
  SegmentLogWriter() = default;

  static Result<SegmentLogWriter> Open(const std::string& path);

  SegmentLogWriter(SegmentLogWriter&&) = default;
  SegmentLogWriter& operator=(SegmentLogWriter&&) = default;

  /// Appends one record; returns the file size after the append.
  Result<uint64_t> Append(const LogRecord& record);

  /// Flushes buffered writes and fsyncs to the device.
  Status Sync();

  uint64_t size_bytes() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  struct FileCloser {
    void operator()(std::FILE* f) const {
      if (f != nullptr) std::fclose(f);
    }
  };

  std::unique_ptr<std::FILE, FileCloser> file_;
  std::string path_;
  uint64_t size_ = 0;
  std::string scratch_;
};

}  // namespace store
}  // namespace pulse

#endif  // PULSE_STORE_LOG_H_
