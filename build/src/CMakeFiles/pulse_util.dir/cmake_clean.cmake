file(REMOVE_RECURSE
  "CMakeFiles/pulse_util.dir/util/csv.cc.o"
  "CMakeFiles/pulse_util.dir/util/csv.cc.o.d"
  "CMakeFiles/pulse_util.dir/util/logging.cc.o"
  "CMakeFiles/pulse_util.dir/util/logging.cc.o.d"
  "CMakeFiles/pulse_util.dir/util/rng.cc.o"
  "CMakeFiles/pulse_util.dir/util/rng.cc.o.d"
  "CMakeFiles/pulse_util.dir/util/status.cc.o"
  "CMakeFiles/pulse_util.dir/util/status.cc.o.d"
  "CMakeFiles/pulse_util.dir/util/string_util.cc.o"
  "CMakeFiles/pulse_util.dir/util/string_util.cc.o.d"
  "libpulse_util.a"
  "libpulse_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pulse_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
