#include "core/equation_system.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/thread_pool.h"

namespace pulse {

std::string DifferenceEquation::ToString() const {
  return diff.ToString() + " " + CmpOpToString(op) + " 0";
}

DifferenceEquation MakeDifferenceEquation(const Polynomial& lhs, CmpOp op,
                                          const Polynomial& rhs) {
  return DifferenceEquation{lhs - rhs, op};
}

size_t EquationSystem::Degree() const {
  size_t d = 0;
  for (const DifferenceEquation& row : rows_) {
    d = std::max(d, row.diff.degree());
  }
  return d;
}

Matrix EquationSystem::CoefficientMatrix() const {
  const size_t cols = Degree() + 1;
  Matrix d(rows_.size(), cols);
  for (size_t r = 0; r < rows_.size(); ++r) {
    for (size_t c = 0; c < cols; ++c) {
      d.At(r, c) = rows_[r].diff.coeff(c);
    }
  }
  return d;
}

IntervalSet EquationSystem::Solve(const Interval& domain,
                                  RootMethod method) const {
  if (domain.IsEmpty()) return IntervalSet();
  IntervalSet solution(domain);
  for (const DifferenceEquation& row : rows_) {
    solution = solution.Intersect(SolveComparison(row.diff, row.op, domain,
                                                  method));
    if (solution.IsEmpty()) break;
  }
  return solution;
}

bool EquationSystem::QualifiesForLinearEquality() const {
  if (rows_.empty()) return false;
  for (const DifferenceEquation& row : rows_) {
    if (row.op != CmpOp::kEq || row.diff.degree() > 1) return false;
  }
  return true;
}

Result<double> EquationSystem::SolveLinearEquality(
    const Interval& domain) const {
  if (!QualifiesForLinearEquality()) {
    return Status::FailedPrecondition(
        "system is not all-equality degree <= 1");
  }
  // Stack the rows as c1 * t = -c0 and solve by (trivial 1-unknown)
  // elimination; rows with c1 == 0 are pure consistency constraints.
  bool have_t = false;
  double t = 0.0;
  for (const DifferenceEquation& row : rows_) {
    const double c0 = row.diff.coeff(0);
    const double c1 = row.diff.coeff(1);
    if (std::abs(c1) <= Polynomial::kCoefficientEpsilon) {
      if (std::abs(c0) > kRootTolerance) {
        return Status::NotFound("inconsistent constant equality row");
      }
      continue;  // 0 = 0: no constraint
    }
    const double cand = -c0 / c1;
    if (!have_t) {
      t = cand;
      have_t = true;
    } else if (std::abs(cand - t) > kRootTolerance *
                                        std::max(1.0, std::abs(t))) {
      return Status::NotFound("equality rows have no common solution");
    }
  }
  if (!have_t) {
    // Every row was 0 = 0: any time in the domain works; pick its start.
    if (domain.IsEmpty()) return Status::NotFound("empty domain");
    return domain.lo;
  }
  if (!domain.Contains(t)) {
    return Status::NotFound("solution outside domain");
  }
  return t;
}

double EquationSystem::Slack(const Interval& domain) const {
  if (rows_.empty()) return 0.0;
  if (domain.IsEmpty()) return std::numeric_limits<double>::infinity();

  // Candidate minimizers of max_i |p_i(t)|: domain endpoints, roots and
  // derivative roots of each row, and pairwise crossings |p_i| = |p_j|
  // (roots of p_i - p_j and p_i + p_j).
  std::vector<double> candidates = {domain.lo, domain.hi};
  auto add_roots = [&](const Polynomial& p) {
    for (double r : FindRealRoots(p, domain.lo, domain.hi)) {
      candidates.push_back(r);
    }
  };
  for (const DifferenceEquation& row : rows_) {
    add_roots(row.diff);
    add_roots(row.diff.Derivative());
  }
  for (size_t i = 0; i < rows_.size(); ++i) {
    for (size_t j = i + 1; j < rows_.size(); ++j) {
      add_roots(rows_[i].diff - rows_[j].diff);
      add_roots(rows_[i].diff + rows_[j].diff);
    }
  }

  double best = std::numeric_limits<double>::infinity();
  for (double t : candidates) {
    if (t < domain.lo || t > domain.hi) continue;
    double max_row = 0.0;
    for (const DifferenceEquation& row : rows_) {
      max_row = std::max(max_row, std::abs(row.diff.Evaluate(t)));
    }
    best = std::min(best, max_row);
  }
  return best;
}

Result<std::vector<IntervalSet>> SolveSystems(
    const std::vector<EquationSystemTask>& tasks, RootMethod method,
    ThreadPool* pool) {
  std::vector<IntervalSet> solutions(tasks.size());
  auto solve_one = [&](size_t i) -> Status {
    solutions[i] = tasks[i].system.Solve(tasks[i].domain, method);
    return Status::OK();
  };
  if (pool != nullptr && pool->num_threads() > 1 && tasks.size() > 1) {
    PULSE_RETURN_IF_ERROR(pool->ParallelFor(tasks.size(), solve_one));
  } else {
    for (size_t i = 0; i < tasks.size(); ++i) {
      PULSE_RETURN_IF_ERROR(solve_one(i));
    }
  }
  return solutions;
}

std::string EquationSystem::ToString() const {
  std::ostringstream os;
  os << "EquationSystem{";
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (i > 0) os << "; ";
    os << rows_[i].ToString();
  }
  os << "}";
  return os.str();
}

}  // namespace pulse
