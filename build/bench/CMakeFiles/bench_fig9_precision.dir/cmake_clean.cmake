file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_precision.dir/bench_fig9_precision.cc.o"
  "CMakeFiles/bench_fig9_precision.dir/bench_fig9_precision.cc.o.d"
  "bench_fig9_precision"
  "bench_fig9_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
