file(REMOVE_RECURSE
  "libpulse_model.a"
)
