#include "engine/filter.h"

#include "util/logging.h"

namespace pulse {

bool EvaluateComparison(const Tuple& tuple, const FieldComparison& cmp) {
  const Value& lhs = tuple.at(cmp.lhs_field);
  const Value& rhs = cmp.rhs.Resolve(tuple);
  switch (cmp.op) {
    case CmpOp::kLt:
      return lhs < rhs;
    case CmpOp::kLe:
      return !(rhs < lhs);
    case CmpOp::kEq:
      return lhs == rhs;
    case CmpOp::kNe:
      return lhs != rhs;
    case CmpOp::kGe:
      return !(lhs < rhs);
    case CmpOp::kGt:
      return rhs < lhs;
  }
  return false;
}

ComparisonFilter::ComparisonFilter(std::string name,
                                   std::shared_ptr<const Schema> schema,
                                   std::vector<FieldComparison> predicate)
    : Operator(std::move(name)),
      schema_(std::move(schema)),
      predicate_(std::move(predicate)) {
  PULSE_CHECK(schema_ != nullptr);
}

Status ComparisonFilter::Process(size_t port, const Tuple& input,
                                 std::vector<Tuple>* out) {
  PULSE_CHECK(port == 0);
  ++metrics_.invocations;
  ++metrics_.tuples_in;
  bool pass = true;
  for (const FieldComparison& cmp : predicate_) {
    ++metrics_.comparisons;
    if (!EvaluateComparison(input, cmp)) {
      pass = false;
      break;
    }
  }
  if (pass) {
    out->push_back(input);
    ++metrics_.tuples_out;
  }
  return Status::OK();
}

LambdaFilter::LambdaFilter(std::string name,
                           std::shared_ptr<const Schema> schema,
                           std::function<bool(const Tuple&)> predicate)
    : Operator(std::move(name)),
      schema_(std::move(schema)),
      predicate_(std::move(predicate)) {
  PULSE_CHECK(schema_ != nullptr);
  PULSE_CHECK(predicate_ != nullptr);
}

Status LambdaFilter::Process(size_t port, const Tuple& input,
                             std::vector<Tuple>* out) {
  PULSE_CHECK(port == 0);
  ++metrics_.invocations;
  ++metrics_.tuples_in;
  ++metrics_.comparisons;
  if (predicate_(input)) {
    out->push_back(input);
    ++metrics_.tuples_out;
  }
  return Status::OK();
}

}  // namespace pulse
