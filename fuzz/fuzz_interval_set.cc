// Fuzz target: IntervalSet normalization and set algebra.
//
// Invariants exercised (violations abort):
//  - After any Add sequence the representation is normalized: sorted,
//    disjoint, no empty members.
//  - Pointwise membership matches a boolean reference computed from the
//    raw (pre-normalization) intervals, at endpoints and midpoints.
//  - Union / Intersect / Complement / Difference agree pointwise with
//    boolean algebra over the membership predicate.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "math/interval_set.h"

#include "fuzz_util.h"

namespace {

void Check(bool cond, const char* what) {
  if (!cond) {
    std::fprintf(stderr, "fuzz_interval_set invariant violated: %s\n", what);
    std::abort();
  }
}

pulse::Interval TakeInterval(pulse::fuzz::FuzzInput& in) {
  double lo = in.TakeDouble(100.0);
  double hi = in.TakeDouble(100.0);
  if (in.TakeBelow(4) == 0) hi = lo;  // bias toward degenerate intervals
  if (hi < lo) std::swap(lo, hi);
  pulse::Interval iv;
  iv.lo = lo;
  iv.hi = hi;
  iv.lo_open = in.TakeBelow(2) == 1;
  iv.hi_open = in.TakeBelow(2) == 1;
  return iv;
}

bool RawContains(const std::vector<pulse::Interval>& raw, double t) {
  for (const pulse::Interval& iv : raw) {
    if (iv.Contains(t)) return true;
  }
  return false;
}

void CheckNormalized(const pulse::IntervalSet& s) {
  const auto& ivs = s.intervals();
  for (size_t i = 0; i < ivs.size(); ++i) {
    Check(!ivs[i].IsEmpty(), "empty member after normalization");
    if (i > 0) {
      Check(ivs[i - 1].lo <= ivs[i].lo, "members out of order");
      Check(!ivs[i - 1].Intersects(ivs[i]), "members overlap");
    }
  }
}

// Probe points: all endpoints, their neighborhoods, and pair midpoints.
std::vector<double> ProbePoints(const std::vector<pulse::Interval>& raw) {
  std::vector<double> pts;
  for (const pulse::Interval& iv : raw) {
    for (double t : {iv.lo, iv.hi}) {
      pts.push_back(t);
      pts.push_back(t - 1e-9);
      pts.push_back(t + 1e-9);
    }
    if (iv.hi > iv.lo) pts.push_back(0.5 * (iv.lo + iv.hi));
  }
  return pts;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  pulse::fuzz::FuzzInput in(data, size);

  const size_t n_a = 1 + in.TakeBelow(8);
  const size_t n_b = in.TakeBelow(8);
  std::vector<pulse::Interval> raw_a, raw_b;
  pulse::IntervalSet a, b;
  for (size_t i = 0; i < n_a; ++i) {
    raw_a.push_back(TakeInterval(in));
    a.Add(raw_a.back());
    CheckNormalized(a);
  }
  for (size_t i = 0; i < n_b; ++i) {
    raw_b.push_back(TakeInterval(in));
    b.Add(raw_b.back());
  }
  CheckNormalized(b);

  const pulse::IntervalSet uni = a.Union(b);
  const pulse::IntervalSet inter = a.Intersect(b);
  const pulse::IntervalSet diff = a.Difference(b);
  const pulse::Interval domain = pulse::Interval::Closed(-200.0, 200.0);
  const pulse::IntervalSet comp = a.Complement(domain);
  CheckNormalized(uni);
  CheckNormalized(inter);
  CheckNormalized(diff);
  CheckNormalized(comp);

  std::vector<double> pts = ProbePoints(raw_a);
  const std::vector<double> pts_b = ProbePoints(raw_b);
  pts.insert(pts.end(), pts_b.begin(), pts_b.end());
  pts.push_back(0.0);

  for (double t : pts) {
    const bool in_a = RawContains(raw_a, t);
    const bool in_b = RawContains(raw_b, t);
    Check(a.Contains(t) == in_a, "membership != raw reference");
    Check(b.Contains(t) == in_b, "membership != raw reference (b)");
    Check(uni.Contains(t) == (in_a || in_b), "union algebra mismatch");
    Check(inter.Contains(t) == (in_a && in_b),
          "intersection algebra mismatch");
    Check(diff.Contains(t) == (in_a && !in_b),
          "difference algebra mismatch");
    if (domain.Contains(t)) {
      Check(comp.Contains(t) == !in_a, "complement algebra mismatch");
    }
  }
  return 0;
}
