#include "math/polynomial.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "math/roots.h"
#include "util/logging.h"

namespace pulse {

namespace {

// Binomial coefficient C(n, k) as double; n stays small (model degrees).
double Binomial(size_t n, size_t k) {
  double result = 1.0;
  for (size_t i = 0; i < k; ++i) {
    result *= static_cast<double>(n - i);
    result /= static_cast<double>(i + 1);
  }
  return result;
}

}  // namespace

Polynomial::Polynomial(std::initializer_list<double> coeffs)
    : coeffs_(coeffs) {
  Trim();
}

Polynomial::Polynomial(std::vector<double> coeffs)
    : coeffs_(std::move(coeffs)) {
  Trim();
}

Polynomial Polynomial::Constant(double c) { return Polynomial({c}); }

Polynomial Polynomial::Monomial(double c, size_t power) {
  std::vector<double> coeffs(power + 1, 0.0);
  coeffs[power] = c;
  return Polynomial(std::move(coeffs));
}

void Polynomial::Trim() {
  while (!coeffs_.empty() &&
         std::abs(coeffs_.back()) <= kCoefficientEpsilon) {
    coeffs_.pop_back();
  }
}

double Polynomial::Evaluate(double t) const {
  double acc = 0.0;
  for (size_t i = coeffs_.size(); i-- > 0;) {
    acc = acc * t + coeffs_[i];
  }
  return acc;
}

Polynomial Polynomial::Derivative() const {
  if (coeffs_.size() <= 1) return Polynomial();
  std::vector<double> d(coeffs_.size() - 1);
  for (size_t i = 1; i < coeffs_.size(); ++i) {
    d[i - 1] = coeffs_[i] * static_cast<double>(i);
  }
  return Polynomial(std::move(d));
}

Polynomial Polynomial::Antiderivative() const {
  if (coeffs_.empty()) return Polynomial();
  std::vector<double> a(coeffs_.size() + 1, 0.0);
  for (size_t i = 0; i < coeffs_.size(); ++i) {
    a[i + 1] = coeffs_[i] / static_cast<double>(i + 1);
  }
  return Polynomial(std::move(a));
}

double Polynomial::Integrate(double lo, double hi) const {
  Polynomial anti = Antiderivative();
  return anti.Evaluate(hi) - anti.Evaluate(lo);
}

Polynomial Polynomial::Shift(double shift) const {
  // p(t + s) = sum_i c_i (t + s)^i
  //          = sum_i c_i sum_{k<=i} C(i,k) s^{i-k} t^k.
  if (coeffs_.empty() || shift == 0.0) return *this;
  std::vector<double> out(coeffs_.size(), 0.0);
  for (size_t i = 0; i < coeffs_.size(); ++i) {
    double s_pow = 1.0;  // shift^{i-k}, built from k = i downward
    for (size_t k = i + 1; k-- > 0;) {
      out[k] += coeffs_[i] * Binomial(i, k) * s_pow;
      s_pow *= shift;
    }
  }
  return Polynomial(std::move(out));
}

Polynomial Polynomial::ScaleArgument(double s) const {
  std::vector<double> out(coeffs_.size());
  double s_pow = 1.0;
  for (size_t i = 0; i < coeffs_.size(); ++i) {
    out[i] = coeffs_[i] * s_pow;
    s_pow *= s;
  }
  return Polynomial(std::move(out));
}

Polynomial Polynomial::operator+(const Polynomial& other) const {
  std::vector<double> out(std::max(coeffs_.size(), other.coeffs_.size()),
                          0.0);
  for (size_t i = 0; i < coeffs_.size(); ++i) out[i] += coeffs_[i];
  for (size_t i = 0; i < other.coeffs_.size(); ++i) out[i] += other.coeffs_[i];
  return Polynomial(std::move(out));
}

Polynomial Polynomial::operator-(const Polynomial& other) const {
  std::vector<double> out(std::max(coeffs_.size(), other.coeffs_.size()),
                          0.0);
  for (size_t i = 0; i < coeffs_.size(); ++i) out[i] += coeffs_[i];
  for (size_t i = 0; i < other.coeffs_.size(); ++i) out[i] -= other.coeffs_[i];
  return Polynomial(std::move(out));
}

Polynomial Polynomial::operator*(const Polynomial& other) const {
  if (coeffs_.empty() || other.coeffs_.empty()) return Polynomial();
  std::vector<double> out(coeffs_.size() + other.coeffs_.size() - 1, 0.0);
  for (size_t i = 0; i < coeffs_.size(); ++i) {
    for (size_t j = 0; j < other.coeffs_.size(); ++j) {
      out[i + j] += coeffs_[i] * other.coeffs_[j];
    }
  }
  return Polynomial(std::move(out));
}

Polynomial Polynomial::operator*(double scalar) const {
  std::vector<double> out(coeffs_);
  for (double& c : out) c *= scalar;
  return Polynomial(std::move(out));
}

Polynomial Polynomial::operator-() const { return *this * -1.0; }

Polynomial& Polynomial::operator+=(const Polynomial& other) {
  *this = *this + other;
  return *this;
}

Polynomial& Polynomial::operator-=(const Polynomial& other) {
  *this = *this - other;
  return *this;
}

bool Polynomial::AlmostEquals(const Polynomial& other, double tol) const {
  size_t n = std::max(coeffs_.size(), other.coeffs_.size());
  for (size_t i = 0; i < n; ++i) {
    if (std::abs(coeff(i) - other.coeff(i)) > tol) return false;
  }
  return true;
}

double Polynomial::MaxAbsDifference(const Polynomial& other, double lo,
                                    double hi) const {
  PULSE_CHECK(lo <= hi);
  const Polynomial diff = *this - other;
  if (diff.IsZero()) return 0.0;
  double max_abs =
      std::max(std::abs(diff.Evaluate(lo)), std::abs(diff.Evaluate(hi)));
  // Interior extrema occur at roots of the derivative.
  const std::vector<double> critical =
      FindRealRoots(diff.Derivative(), lo, hi);
  for (double t : critical) {
    max_abs = std::max(max_abs, std::abs(diff.Evaluate(t)));
  }
  return max_abs;
}

std::string Polynomial::ToString() const {
  if (coeffs_.empty()) return "0";
  std::ostringstream os;
  bool first = true;
  for (size_t i = 0; i < coeffs_.size(); ++i) {
    double c = coeffs_[i];
    if (std::abs(c) <= kCoefficientEpsilon && coeffs_.size() > 1) continue;
    if (first) {
      if (c < 0) os << "-";
    } else {
      os << (c < 0 ? " - " : " + ");
    }
    double a = std::abs(c);
    if (i == 0) {
      os << a;
    } else {
      if (a != 1.0) os << a << "*";
      os << "t";
      if (i > 1) os << "^" << i;
    }
    first = false;
  }
  if (first) return "0";
  return os.str();
}

}  // namespace pulse
