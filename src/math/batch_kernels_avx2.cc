// AVX2 tier of the batched solver kernels. This is the only translation
// unit compiled with -mavx2 (see src/CMakeLists.txt); everything else in
// the binary stays at baseline flags so the dispatcher can safely fall
// back on non-AVX2 hosts. Deliberately no -mfma and no fused intrinsics:
// every operation here is a correctly-rounded IEEE-754 add/sub/mul/div/
// sqrt or a bit operation, in the exact order of the scalar closed forms
// in roots.cc, so results are bit-identical to the scalar tier.
// Remainder lanes delegate to the batch_internal::Scalar* entry points,
// which live in batch_kernels.cc and are compiled with baseline flags.

#include "math/batch_kernels.h"

#if defined(__AVX2__) && (defined(__x86_64__) || defined(_M_X64))

#include <immintrin.h>

#include <array>
#include <cstddef>

namespace pulse {
namespace batch_internal {
namespace {

inline __m256d Select4(__m256d mask, __m256d a, __m256d b) {
  return _mm256_blendv_pd(b, a, mask);
}

void Avx2Horner(const double* const* c, size_t degree, const double* t,
                double* out, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d ti = _mm256_loadu_pd(t + i);
    __m256d acc = _mm256_setzero_pd();
    for (size_t j = degree + 1; j-- > 0;) {
      // Separate mul + add; _mm256_fmadd_pd would fuse and break
      // bit-identity with Polynomial::Evaluate.
      acc = _mm256_add_pd(_mm256_mul_pd(acc, ti),
                          _mm256_loadu_pd(c[j] + i));
    }
    _mm256_storeu_pd(out + i, acc);
  }
  if (i < n) {
    std::array<const double*, 8> shifted;
    for (size_t j = 0; j <= degree; ++j) shifted[j] = c[j] + i;
    ScalarHorner(shifted.data(), degree, t + i, out + i, n - i);
  }
}

void Avx2LinearRoots(const double* c0, const double* c1, double* r0,
                     size_t n) {
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d neg_c0 = _mm256_xor_pd(_mm256_loadu_pd(c0 + i), sign_mask);
    _mm256_storeu_pd(r0 + i, _mm256_div_pd(neg_c0, _mm256_loadu_pd(c1 + i)));
  }
  if (i < n) ScalarLinearRoots(c0 + i, c1 + i, r0 + i, n - i);
}

void Avx2QuadraticRoots(const double* c0, const double* c1,
                        const double* c2, double* r0, double* r1,
                        uint8_t* count, size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d a = _mm256_loadu_pd(c2 + i);
    const __m256d b = _mm256_loadu_pd(c1 + i);
    const __m256d c = _mm256_loadu_pd(c0 + i);
    // disc = b * b - (4.0 * a) * c, in the scalar evaluation order.
    const __m256d disc = _mm256_sub_pd(
        _mm256_mul_pd(b, b),
        _mm256_mul_pd(_mm256_mul_pd(_mm256_set1_pd(4.0), a), c));
    // Ordered-quiet compares: false for NaN disc, exactly like the
    // scalar `disc < 0.0` / `disc == 0.0` branches.
    const __m256d m_neg = _mm256_cmp_pd(disc, zero, _CMP_LT_OQ);
    const __m256d m_eq = _mm256_cmp_pd(disc, zero, _CMP_EQ_OQ);
    // copysign(sqrt(disc), b) as bit ops (exact).
    const __m256d sq = _mm256_sqrt_pd(disc);
    const __m256d cs = _mm256_or_pd(_mm256_andnot_pd(sign_mask, sq),
                                    _mm256_and_pd(sign_mask, b));
    const __m256d q =
        _mm256_mul_pd(_mm256_set1_pd(-0.5), _mm256_add_pd(b, cs));
    const __m256d r0_gen = _mm256_div_pd(q, a);
    // q == 0.0 selects the scalar else-branch value 0.0; NaN q compares
    // false and keeps c / q, matching `q != 0.0`.
    const __m256d q_zero = _mm256_cmp_pd(q, zero, _CMP_EQ_OQ);
    const __m256d r1_gen = _mm256_andnot_pd(q_zero, _mm256_div_pd(c, q));
    const __m256d r0_eq =
        _mm256_div_pd(_mm256_xor_pd(b, sign_mask),
                      _mm256_mul_pd(_mm256_set1_pd(2.0), a));
    __m256d r0v = Select4(m_eq, r0_eq, r0_gen);
    r0v = _mm256_andnot_pd(m_neg, r0v);
    const __m256d r1v =
        _mm256_andnot_pd(_mm256_or_pd(m_neg, m_eq), r1_gen);
    _mm256_storeu_pd(r0 + i, r0v);
    _mm256_storeu_pd(r1 + i, r1v);
    const int neg_mask = _mm256_movemask_pd(m_neg);
    const int eq_mask = _mm256_movemask_pd(m_eq);
    for (int lane = 0; lane < 4; ++lane) {
      count[i + lane] = ((neg_mask >> lane) & 1)
                            ? 0
                            : (((eq_mask >> lane) & 1) ? 1 : 2);
    }
  }
  if (i < n) {
    ScalarQuadraticRoots(c0 + i, c1 + i, c2 + i, r0 + i, r1 + i, count + i,
                         n - i);
  }
}

const BatchKernels kAvx2Kernels = {
    "avx2",
    &Avx2Horner,
    &Avx2LinearRoots,
    &Avx2QuadraticRoots,
    &ScalarCubicRoots,  // lane-scalar: libm transcendentals
};

}  // namespace

const BatchKernels* Avx2BatchKernelsOrNull() { return &kAvx2Kernels; }

}  // namespace batch_internal
}  // namespace pulse

#else  // !(__AVX2__ && x86-64)

namespace pulse {
namespace batch_internal {

const BatchKernels* Avx2BatchKernelsOrNull() { return nullptr; }

}  // namespace batch_internal
}  // namespace pulse

#endif
