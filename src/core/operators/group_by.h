#ifndef PULSE_CORE_OPERATORS_GROUP_BY_H_
#define PULSE_CORE_OPERATORS_GROUP_BY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "core/operators/pulse_operator.h"

namespace pulse {

/// Per-group continuous aggregation (paper Fig. 3, row "Aggregate
/// group-by, function f"): hash-based group-by with one inner operator
/// instance (an "impl for f") per group. Segments route by their key;
/// inner outputs are re-keyed with the group key so downstream operators
/// (joins, filters, HAVING-style predicates) can keep grouping.
class PulseGroupBy : public PulseOperator {
 public:
  using InnerFactory =
      std::function<Result<std::unique_ptr<PulseOperator>>(Key group)>;

  PulseGroupBy(std::string name, InnerFactory factory);

  Status Process(size_t port, const Segment& segment,
                 SegmentBatch* out) override;
  Status Flush(SegmentBatch* out) override;

  /// Delegates to the inner operator of the output's group.
  Result<std::vector<AllocatedBound>> InvertBound(
      const Segment& output, const std::string& attribute, double margin,
      const SplitHeuristic& split) const override;

  size_t num_groups() const { return groups_.size(); }

  /// The inner operator for `group`, or nullptr when the group is unseen.
  PulseOperator* group_operator(Key group) const;

  /// Forwards the cache to the inner operators (existing and future).
  void set_solve_cache(SolveCache* cache) override;

 private:
  Result<PulseOperator*> GetOrCreate(Key group);

  InnerFactory factory_;
  std::map<Key, std::unique_ptr<PulseOperator>> groups_;
};

}  // namespace pulse

#endif  // PULSE_CORE_OPERATORS_GROUP_BY_H_
