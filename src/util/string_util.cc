#include "util/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace pulse {

std::vector<std::string> SplitString(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(delim);
    out.append(parts[i]);
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

Result<double> ParseDouble(std::string_view s) {
  s = TrimWhitespace(s);
  if (s.empty()) return Status::InvalidArgument("empty numeric field");
  // strtod needs a NUL-terminated buffer.
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("trailing characters in double: '" + buf +
                                   "'");
  }
  if (errno == ERANGE) {
    return Status::OutOfRange("double out of range: '" + buf + "'");
  }
  return v;
}

Result<int64_t> ParseInt64(std::string_view s) {
  s = TrimWhitespace(s);
  if (s.empty()) return Status::InvalidArgument("empty integer field");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("trailing characters in integer: '" + buf +
                                   "'");
  }
  if (errno == ERANGE) {
    return Status::OutOfRange("integer out of range: '" + buf + "'");
  }
  return static_cast<int64_t>(v);
}

std::string FormatDouble(double v) {
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

}  // namespace pulse
