#ifndef PULSE_WORKLOAD_MOVING_OBJECT_H_
#define PULSE_WORKLOAD_MOVING_OBJECT_H_

#include <memory>
#include <vector>

#include "core/query.h"
#include "engine/tuple.h"
#include "util/rng.h"

namespace pulse {

/// Synthetic moving-object workload (paper Section V-A): two-dimensional
/// position tuples with schema (id, x, y, vx, vy). Objects move with
/// piecewise-constant velocity; the number of samples between velocity
/// changes controls *model expressiveness* — "the number of tuples that
/// fit a single model segment", the x-axis of the paper's
/// microbenchmarks (Fig. 5).
struct MovingObjectOptions {
  size_t num_objects = 10;
  /// Aggregate tuple rate across all objects (tuples/second).
  double tuple_rate = 1000.0;
  /// Samples per object between velocity changes = tuples that fit one
  /// linear model segment.
  size_t tuples_per_segment = 100;
  /// Mean speed (units/second).
  double speed = 10.0;
  /// World is the square [0, area]^2 (objects reflect off walls).
  double area = 10000.0;
  /// Gaussian positional noise per emitted sample (0 = models are exact).
  double noise = 0.0;
  double start_time = 0.0;
  uint64_t seed = 42;
};

class MovingObjectGenerator {
 public:
  explicit MovingObjectGenerator(MovingObjectOptions options);

  /// Schema (id:int64, x:double, y:double, vx:double, vy:double).
  static std::shared_ptr<const Schema> TupleSchema();

  /// Stream declaration with MODEL clauses x = x + vx*t, y = y + vy*t
  /// (paper Fig. 1 style) and the given predictive horizon.
  static StreamSpec MakeStreamSpec(std::string name,
                                   double segment_horizon);

  /// Next sample, round-robin across objects, timestamps spaced at
  /// 1/tuple_rate.
  Tuple NextTuple();

  /// Convenience: the next n tuples.
  std::vector<Tuple> Generate(size_t n);

  /// Event time of the next tuple.
  double now() const { return now_; }

 private:
  struct ObjectState {
    double x = 0.0;
    double y = 0.0;
    double vx = 0.0;
    double vy = 0.0;
    double last_update = 0.0;
    size_t samples_since_turn = 0;
  };

  void AdvanceObject(ObjectState* obj, double t);
  void Retarget(ObjectState* obj);

  MovingObjectOptions options_;
  Rng rng_;
  std::vector<ObjectState> objects_;
  size_t next_object_ = 0;
  double now_ = 0.0;
};

}  // namespace pulse

#endif  // PULSE_WORKLOAD_MOVING_OBJECT_H_
