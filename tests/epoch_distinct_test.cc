// Unit tests for the epoch/distinct operator pair in both realizations:
// the discrete EpochMark/EpochDistinct (tuple-at-a-time) and the Pulse
// PulseEpoch/PulseDistinct (segment splitting / first-validity-run).
// Equivalence between the two is proved end-to-end by differential_test;
// this file pins the local semantics each realization promises.

#include <cmath>

#include <gtest/gtest.h>

#include "core/operators/distinct.h"
#include "core/operators/epoch.h"
#include "engine/distinct.h"
#include "engine/epoch.h"
#include "engine/schema.h"
#include "engine/tuple.h"

namespace pulse {
namespace {

std::shared_ptr<const Schema> IdXSchema() {
  return Schema::Make({{"id", ValueType::kInt64}, {"x", ValueType::kDouble}});
}

Tuple IdXTuple(double ts, int64_t id, double x) {
  return Tuple(ts, {Value(id), Value(x)});
}

Segment Seg(Key key, double lo, double hi, Polynomial x) {
  Segment s(key, Interval::ClosedOpen(lo, hi));
  s.id = NextSegmentId();
  s.set_attribute("x", std::move(x));
  return s;
}

TEST(EpochIndex, TumblingHalfOpenGrid) {
  EXPECT_EQ(EpochIndexOf(0.0, 1.0), 0);
  EXPECT_EQ(EpochIndexOf(0.999, 1.0), 0);
  // The boundary instant belongs to the *next* epoch.
  EXPECT_EQ(EpochIndexOf(1.0, 1.0), 1);
  EXPECT_EQ(EpochIndexOf(2.5, 1.0), 2);
  // Non-unit epoch lengths.
  EXPECT_EQ(EpochIndexOf(1.4, 0.75), 1);
  EXPECT_EQ(EpochIndexOf(1.5, 0.75), 2);
  EXPECT_EQ(EpochIndexOf(-0.25, 0.5), -1);
}

TEST(EpochMark, AppendsEpochColumn) {
  EpochMark mark("epoch", IdXSchema(), 0.5);
  ASSERT_EQ(mark.output_schema()->num_fields(), 3u);
  EXPECT_EQ(mark.output_schema()->field(2).name, "epoch");
  EXPECT_EQ(mark.output_schema()->field(2).type, ValueType::kInt64);

  std::vector<Tuple> out;
  ASSERT_TRUE(mark.Process(0, IdXTuple(1.3, 7, 2.0), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].timestamp, 1.3);
  EXPECT_EQ(out[0].at(0).as_int64(), 7);
  EXPECT_DOUBLE_EQ(out[0].at(1).as_double(), 2.0);
  EXPECT_EQ(out[0].at(2).as_int64(), EpochIndexOf(1.3, 0.5));
}

TEST(EpochMark, CustomAttributeName) {
  EpochMark mark("epoch", IdXSchema(), 1.0, "bucket");
  EXPECT_EQ(mark.output_schema()->field(2).name, "bucket");
}

TEST(EpochDistinct, FirstTuplePerEpochPerKey) {
  // Schema unchanged; key field at index 0.
  EpochDistinct distinct("distinct", IdXSchema(), 1.0, /*key_index=*/0);
  std::vector<Tuple> out;
  // Epoch 0: first tuple of key 1 passes, repeats are dropped; key 2 is
  // independent state.
  ASSERT_TRUE(distinct.Process(0, IdXTuple(0.1, 1, 5.0), &out).ok());
  ASSERT_TRUE(distinct.Process(0, IdXTuple(0.2, 1, 6.0), &out).ok());
  ASSERT_TRUE(distinct.Process(0, IdXTuple(0.2, 2, 7.0), &out).ok());
  ASSERT_TRUE(distinct.Process(0, IdXTuple(0.9, 1, 8.0), &out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0].timestamp, 0.1);
  EXPECT_EQ(out[0].at(0).as_int64(), 1);
  EXPECT_DOUBLE_EQ(out[1].timestamp, 0.2);
  EXPECT_EQ(out[1].at(0).as_int64(), 2);

  // Epoch 1 starts fresh: the same keys re-emit once each.
  ASSERT_TRUE(distinct.Process(0, IdXTuple(1.0, 1, 9.0), &out).ok());
  ASSERT_TRUE(distinct.Process(0, IdXTuple(1.1, 1, 9.5), &out).ok());
  ASSERT_TRUE(distinct.Process(0, IdXTuple(1.4, 2, 9.9), &out).ok());
  ASSERT_EQ(out.size(), 4u);
  EXPECT_DOUBLE_EQ(out[2].timestamp, 1.0);
  EXPECT_DOUBLE_EQ(out[3].timestamp, 1.4);

  // A key can skip an epoch entirely and still fire in a later one.
  ASSERT_TRUE(distinct.Process(0, IdXTuple(3.2, 2, 1.0), &out).ok());
  ASSERT_EQ(out.size(), 5u);
  EXPECT_DOUBLE_EQ(out[4].timestamp, 3.2);
}

TEST(PulseEpoch, SplitsSegmentsAtBoundaries) {
  PulseEpoch epoch("epoch", 1.0);
  SegmentBatch out;
  // [0.4, 2.5) crosses boundaries at 1.0 and 2.0 -> three pieces.
  ASSERT_TRUE(epoch.Process(0, Seg(1, 0.4, 2.5, Polynomial({1.0, 2.0})),
                            &out)
                  .ok());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0].range.lo, 0.4);
  EXPECT_DOUBLE_EQ(out[0].range.hi, 1.0);
  EXPECT_DOUBLE_EQ(out[1].range.lo, 1.0);
  EXPECT_DOUBLE_EQ(out[1].range.hi, 2.0);
  EXPECT_DOUBLE_EQ(out[2].range.lo, 2.0);
  EXPECT_DOUBLE_EQ(out[2].range.hi, 2.5);
  // Polynomials are in absolute time: splitting must not re-base them.
  for (const Segment& s : out) {
    ASSERT_TRUE(s.has_attribute("x"));
    const double mid = 0.5 * (s.range.lo + s.range.hi);
    EXPECT_DOUBLE_EQ(s.attribute("x")->Evaluate(mid), 1.0 + 2.0 * mid);
    EXPECT_EQ(s.key, 1);
  }
}

TEST(PulseEpoch, SegmentInsideOneEpochPassesThrough) {
  PulseEpoch epoch("epoch", 1.0);
  SegmentBatch out;
  ASSERT_TRUE(epoch.Process(0, Seg(3, 1.25, 1.75, Polynomial({2.0})), &out)
                  .ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].range.lo, 1.25);
  EXPECT_DOUBLE_EQ(out[0].range.hi, 1.75);
}

TEST(PulseEpoch, BoundaryAlignedSegmentIsNotSplit) {
  PulseEpoch epoch("epoch", 0.5);
  SegmentBatch out;
  // Exactly one epoch [1.0, 1.5): no empty slivers on either side.
  ASSERT_TRUE(epoch.Process(0, Seg(1, 1.0, 1.5, Polynomial({0.0})), &out)
                  .ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].range.lo, 1.0);
  EXPECT_DOUBLE_EQ(out[0].range.hi, 1.5);
}

TEST(PulseDistinct, FirstValidityRunPerEpochPerKey) {
  PulseDistinct distinct("distinct", 1.0);
  SegmentBatch out;
  // Key 1, epoch 0: two disjoint validity runs — only the first emits,
  // and its range.lo is the region-entry instant.
  ASSERT_TRUE(distinct.Process(0, Seg(1, 0.2, 0.4, Polynomial({1.0})), &out)
                  .ok());
  ASSERT_TRUE(distinct.Process(0, Seg(1, 0.6, 0.9, Polynomial({1.0})), &out)
                  .ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].range.lo, 0.2);
  EXPECT_DOUBLE_EQ(out[0].range.hi, 0.4);

  // Another key in the same epoch keeps its own state.
  ASSERT_TRUE(distinct.Process(0, Seg(2, 0.7, 0.8, Polynomial({1.0})), &out)
                  .ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1].key, 2);

  // Next epoch starts fresh for key 1.
  ASSERT_TRUE(distinct.Process(0, Seg(1, 1.3, 1.5, Polynomial({1.0})), &out)
                  .ok());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[2].range.lo, 1.3);
}

TEST(PulseDistinct, SelfSplitsEpochStraddlingRuns) {
  // No PulseEpoch upstream: a run crossing a boundary must still produce
  // one event per epoch, each clipped to its epoch.
  PulseDistinct distinct("distinct", 1.0);
  SegmentBatch out;
  ASSERT_TRUE(distinct.Process(0, Seg(1, 0.5, 2.25, Polynomial({1.0})), &out)
                  .ok());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0].range.lo, 0.5);
  EXPECT_DOUBLE_EQ(out[0].range.hi, 1.0);
  EXPECT_DOUBLE_EQ(out[1].range.lo, 1.0);
  EXPECT_DOUBLE_EQ(out[1].range.hi, 2.0);
  EXPECT_DOUBLE_EQ(out[2].range.lo, 2.0);
  EXPECT_DOUBLE_EQ(out[2].range.hi, 2.25);

  // The epochs are now consumed for key 1: later runs in them drop.
  ASSERT_TRUE(distinct.Process(0, Seg(1, 2.5, 2.75, Polynomial({1.0})), &out)
                  .ok());
  ASSERT_EQ(out.size(), 3u);
}

TEST(PulseDistinct, RunTouchingBoundaryDoesNotConsumeNextEpoch) {
  PulseDistinct distinct("distinct", 1.0);
  SegmentBatch out;
  // [0.2, 1.0) ends exactly at the boundary: epoch 1 must stay fresh.
  ASSERT_TRUE(distinct.Process(0, Seg(1, 0.2, 1.0, Polynomial({1.0})), &out)
                  .ok());
  ASSERT_EQ(out.size(), 1u);
  ASSERT_TRUE(distinct.Process(0, Seg(1, 1.7, 1.9, Polynomial({1.0})), &out)
                  .ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[1].range.lo, 1.7);
}

}  // namespace
}  // namespace pulse
