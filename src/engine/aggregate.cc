#include "engine/aggregate.h"

#include <cmath>

#include "util/logging.h"

namespace pulse {

const char* AggFnToString(AggFn fn) {
  switch (fn) {
    case AggFn::kMin:
      return "min";
    case AggFn::kMax:
      return "max";
    case AggFn::kSum:
      return "sum";
    case AggFn::kAvg:
      return "avg";
    case AggFn::kCount:
      return "count";
  }
  return "?";
}

double AggState::Finalize(AggFn fn) const {
  switch (fn) {
    case AggFn::kMin:
      return min;
    case AggFn::kMax:
      return max;
    case AggFn::kSum:
      return sum;
    case AggFn::kAvg:
      return count > 0 ? sum / static_cast<double>(count)
                       : std::nan("");
    case AggFn::kCount:
      return static_cast<double>(count);
  }
  return std::nan("");
}

WindowedAggregate::WindowedAggregate(
    std::string name, std::shared_ptr<const Schema> input_schema,
    WindowSpec window, AggFn fn, size_t value_field,
    std::string output_field)
    : Operator(std::move(name)),
      input_schema_(std::move(input_schema)),
      window_(window),
      fn_(fn),
      value_field_(value_field) {
  PULSE_CHECK(input_schema_ != nullptr);
  PULSE_CHECK(window_.size > 0.0 && window_.slide > 0.0);
  PULSE_CHECK(value_field_ < input_schema_->num_fields());
  output_schema_ =
      Schema::Make({{std::move(output_field), ValueType::kDouble}});
}

void WindowedAggregate::EnsureWindows(double t) {
  if (!have_origin_) {
    have_origin_ = true;
    // First full window spans [t, t + size).
    next_close_ = t + window_.size;
  }
  // Skip over closes that can no longer contain any tuple (silent gaps):
  // a window with close <= t excludes t, and every earlier tuple already
  // created the windows it belonged to.
  if (next_close_ <= t) {
    const double skips =
        std::floor((t - next_close_) / window_.slide) + 1.0;
    next_close_ += skips * window_.slide;
    while (next_close_ <= t) next_close_ += window_.slide;
  }
  // Create every window containing t: closes in (t, t + size].
  while (next_close_ <= t + window_.size) {
    windows_.push_back(OpenWindow{next_close_, AggState{}});
    next_close_ += window_.slide;
  }
}

void WindowedAggregate::CloseThrough(double t, std::vector<Tuple>* out) {
  while (!windows_.empty() && windows_.front().close <= t) {
    EmitWindow(windows_.front(), out);
    windows_.pop_front();
  }
}

void WindowedAggregate::EmitWindow(const OpenWindow& w,
                                   std::vector<Tuple>* out) {
  if (w.state.count == 0) return;  // empty windows produce no result
  Tuple result;
  result.timestamp = w.close;
  result.values.push_back(Value(w.state.Finalize(fn_)));
  out->push_back(std::move(result));
  ++metrics_.tuples_out;
}

Status WindowedAggregate::Process(size_t port, const Tuple& input,
                                  std::vector<Tuple>* out) {
  PULSE_CHECK(port == 0);
  ++metrics_.invocations;
  ++metrics_.tuples_in;
  const double t = input.timestamp;
  CloseThrough(t, out);
  EnsureWindows(t);
  const double v = input.at(value_field_).as_double();
  // Every remaining window contains t (see EnsureWindows invariant); the
  // state-increment count per tuple is size/slide, the discrete cost the
  // paper measures against window size.
  for (OpenWindow& w : windows_) {
    w.state.Update(v);
    ++metrics_.comparisons;
  }
  return Status::OK();
}

Status WindowedAggregate::AdvanceTime(double t, std::vector<Tuple>* out) {
  CloseThrough(t, out);
  return Status::OK();
}

Status WindowedAggregate::Flush(std::vector<Tuple>* out) {
  for (const OpenWindow& w : windows_) EmitWindow(w, out);
  windows_.clear();
  return Status::OK();
}

}  // namespace pulse
