# Empty dependencies file for pulse_cli.
# This may be replaced when dependencies are built.
