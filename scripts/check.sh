#!/usr/bin/env bash
# Tier-1 verification plus a ThreadSanitizer pass over the threaded code.
#
#   scripts/check.sh            # full build + ctest + TSan thread tests
#   SKIP_TSAN=1 scripts/check.sh  # tier-1 only
#
# Run from anywhere; build trees land in <repo>/build and <repo>/build-tsan.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 2)"

echo "== tier-1: configure + build + ctest =="
cmake -B "$repo/build" -S "$repo"
cmake --build "$repo/build" -j "$jobs"
ctest --test-dir "$repo/build" --output-on-failure -j "$jobs"

if [[ "${SKIP_TSAN:-0}" == "1" ]]; then
  echo "== SKIP_TSAN=1: done =="
  exit 0
fi

echo "== TSan: thread_pool_test + runtime_test (-DPULSE_TSAN=ON) =="
cmake -B "$repo/build-tsan" -S "$repo" -DPULSE_TSAN=ON
cmake --build "$repo/build-tsan" -j "$jobs" --target thread_pool_test runtime_test

# halt_on_error makes a race fail the script, not just print a warning.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
"$repo/build-tsan/tests/thread_pool_test"
"$repo/build-tsan/tests/runtime_test"

echo "== all checks passed =="
