#include "core/runtime.h"

#include <cmath>

#include <gtest/gtest.h>

#include "workload/moving_object.h"
#include "workload/nyse.h"

namespace pulse {
namespace {

QuerySpec FilterQuerySpec(double threshold, double horizon = 5.0) {
  QuerySpec spec;
  EXPECT_TRUE(spec.AddStream(MovingObjectGenerator::MakeStreamSpec(
                                 "objects", horizon))
                  .ok());
  FilterSpec filter;
  filter.predicate = Predicate::Comparison(ComparisonTerm::Simple(
      AttrRef::Left("x"), CmpOp::kLt, Operand::Constant(threshold)));
  spec.AddFilter("f", QuerySpec::Input::Stream("objects"), filter);
  return spec;
}

Tuple ObjectTuple(double ts, int64_t id, double x, double vx) {
  return Tuple(ts,
               {Value(id), Value(x), Value(0.0), Value(vx), Value(0.0)});
}

TEST(PredictiveRuntime, FirstTupleBuildsModelAndSolves) {
  PredictiveRuntime::Options opts;
  opts.bounds = {BoundSpec::Absolute("x", 0.5)};
  Result<PredictiveRuntime> rt =
      PredictiveRuntime::Make(FilterQuerySpec(100.0), std::move(opts));
  ASSERT_TRUE(rt.ok());
  ASSERT_TRUE(rt->ProcessTuple("objects", ObjectTuple(0.0, 1, 0.0, 1.0))
                  .ok());
  EXPECT_EQ(rt->stats().tuples_in, 1u);
  EXPECT_EQ(rt->stats().segments_pushed, 1u);
  // x < 100 always holds: one output segment, bound inverted.
  EXPECT_EQ(rt->stats().output_segments, 1u);
  EXPECT_GE(rt->stats().inversions, 1u);
}

TEST(PredictiveRuntime, AccurateTuplesAreValidatedNotReprocessed) {
  PredictiveRuntime::Options opts;
  opts.bounds = {BoundSpec::Absolute("x", 0.5)};
  Result<PredictiveRuntime> rt =
      PredictiveRuntime::Make(FilterQuerySpec(100.0), std::move(opts));
  ASSERT_TRUE(rt.ok());
  // Model: x = t (from x=0, vx=1 at t=0).
  ASSERT_TRUE(rt->ProcessTuple("objects", ObjectTuple(0.0, 1, 0.0, 1.0))
                  .ok());
  // Tuples exactly on the model: validated, no new segments.
  for (double t = 0.5; t < 4.5; t += 0.5) {
    ASSERT_TRUE(rt->ProcessTuple("objects", ObjectTuple(t, 1, t, 1.0))
                    .ok());
  }
  EXPECT_EQ(rt->stats().segments_pushed, 1u);
  EXPECT_EQ(rt->stats().tuples_validated, 8u);
  EXPECT_EQ(rt->stats().violations, 0u);
}

TEST(PredictiveRuntime, DeviationTriggersReprocessing) {
  PredictiveRuntime::Options opts;
  opts.bounds = {BoundSpec::Absolute("x", 0.5)};
  Result<PredictiveRuntime> rt =
      PredictiveRuntime::Make(FilterQuerySpec(100.0), std::move(opts));
  ASSERT_TRUE(rt.ok());
  ASSERT_TRUE(rt->ProcessTuple("objects", ObjectTuple(0.0, 1, 0.0, 1.0))
                  .ok());
  // Actual x deviates from the model prediction by 3 > margin.
  ASSERT_TRUE(rt->ProcessTuple("objects", ObjectTuple(1.0, 1, 4.0, 1.0))
                  .ok());
  EXPECT_EQ(rt->stats().violations, 1u);
  EXPECT_EQ(rt->stats().segments_pushed, 2u);
}

TEST(PredictiveRuntime, ExpiredHorizonRebuildsWithoutViolation) {
  PredictiveRuntime::Options opts;
  opts.bounds = {BoundSpec::Absolute("x", 0.5)};
  Result<PredictiveRuntime> rt = PredictiveRuntime::Make(
      FilterQuerySpec(100.0, /*horizon=*/1.0), std::move(opts));
  ASSERT_TRUE(rt.ok());
  ASSERT_TRUE(rt->ProcessTuple("objects", ObjectTuple(0.0, 1, 0.0, 1.0))
                  .ok());
  // t=2 is past the horizon [0,1): new segment, not a violation.
  ASSERT_TRUE(rt->ProcessTuple("objects", ObjectTuple(2.0, 1, 2.0, 1.0))
                  .ok());
  EXPECT_EQ(rt->stats().violations, 0u);
  EXPECT_EQ(rt->stats().segments_pushed, 2u);
}

TEST(PredictiveRuntime, PerKeyModels) {
  PredictiveRuntime::Options opts;
  opts.bounds = {BoundSpec::Absolute("x", 0.5)};
  Result<PredictiveRuntime> rt =
      PredictiveRuntime::Make(FilterQuerySpec(100.0), std::move(opts));
  ASSERT_TRUE(rt.ok());
  ASSERT_TRUE(rt->ProcessTuple("objects", ObjectTuple(0.0, 1, 0.0, 1.0))
                  .ok());
  ASSERT_TRUE(rt->ProcessTuple("objects", ObjectTuple(0.1, 2, 50.0, -1.0))
                  .ok());
  EXPECT_EQ(rt->stats().segments_pushed, 2u);
  // Each follows its own model.
  ASSERT_TRUE(rt->ProcessTuple("objects", ObjectTuple(1.0, 1, 1.0, 1.0))
                  .ok());
  ASSERT_TRUE(rt->ProcessTuple("objects", ObjectTuple(1.1, 2, 49.0, -1.0))
                  .ok());
  EXPECT_EQ(rt->stats().tuples_validated, 2u);
}

TEST(PredictiveRuntime, SlackModeSuppressesNearMisses) {
  // Filter x < 10 with a model far above the threshold: null result with
  // large slack; subsequent small deviations are ignored via slack
  // validation even though they exceed the accuracy bound.
  PredictiveRuntime::Options opts;
  opts.bounds = {BoundSpec::Absolute("x", 0.01)};
  Result<PredictiveRuntime> rt =
      PredictiveRuntime::Make(FilterQuerySpec(10.0), std::move(opts));
  ASSERT_TRUE(rt.ok());
  // Model x = 50 (constant): filter never fires; slack = 40.
  ASSERT_TRUE(rt->ProcessTuple("objects", ObjectTuple(0.0, 1, 50.0, 0.0))
                  .ok());
  EXPECT_EQ(rt->stats().output_segments, 0u);
  EXPECT_EQ(rt->validator().mode(1), ValidationMode::kSlack);
  // Deviation 5 < slack 40: ignored.
  ASSERT_TRUE(rt->ProcessTuple("objects", ObjectTuple(1.0, 1, 45.0, 0.0))
                  .ok());
  EXPECT_EQ(rt->stats().tuples_validated, 1u);
  EXPECT_EQ(rt->stats().segments_pushed, 1u);
}

TEST(PredictiveRuntime, SampledTupleOutputs) {
  PredictiveRuntime::Options opts;
  opts.bounds = {BoundSpec::Absolute("x", 0.5)};
  opts.sample_rate = 10.0;
  Result<PredictiveRuntime> rt =
      PredictiveRuntime::Make(FilterQuerySpec(100.0), std::move(opts));
  ASSERT_TRUE(rt.ok());
  ASSERT_TRUE(rt->ProcessTuple("objects", ObjectTuple(0.0, 1, 0.0, 1.0))
                  .ok());
  // Output segment [0, 5) sampled at 10 Hz: 50 tuples.
  std::vector<Tuple> tuples = rt->TakeOutputTuples();
  EXPECT_EQ(tuples.size(), 50u);
  EXPECT_EQ(rt->stats().output_tuples, 50u);
}

TEST(MultiAttributeSegmenter, JointBreakOnAnyAttribute) {
  StreamSpec stream = MovingObjectGenerator::MakeStreamSpec("objects", 1.0);
  SegmentationOptions opts;
  opts.degree = 1;
  opts.max_error = 0.1;
  MultiAttributeSegmenter seg(stream, opts);
  // x linear throughout; y kinks at t = 5.
  std::optional<Segment> emitted;
  for (int i = 0; i < 100; ++i) {
    const double t = i * 0.1;
    const double y = t < 5.0 ? t : 10.0 - t;
    Tuple tuple(t, {Value(int64_t{1}), Value(t), Value(y), Value(1.0),
                    Value(0.0)});
    Result<std::optional<Segment>> r = seg.Add(tuple);
    ASSERT_TRUE(r.ok());
    if (r->has_value() && !emitted.has_value()) emitted = **r;
  }
  ASSERT_TRUE(emitted.has_value());
  // First segment ends near the kink at t = 5.
  EXPECT_NEAR(emitted->range.hi, 5.0, 0.6);
  EXPECT_TRUE(emitted->has_attribute("x"));
  EXPECT_TRUE(emitted->has_attribute("y"));
}

TEST(MultiAttributeSegmenter, FlushEmitsResiduals) {
  StreamSpec stream = MovingObjectGenerator::MakeStreamSpec("objects", 1.0);
  SegmentationOptions opts;
  opts.degree = 1;
  opts.max_error = 10.0;
  MultiAttributeSegmenter seg(stream, opts);
  for (int i = 0; i < 10; ++i) {
    Tuple tuple(i * 0.1, {Value(int64_t{1}), Value(1.0 * i), Value(0.0),
                          Value(1.0), Value(0.0)});
    ASSERT_TRUE(seg.Add(tuple).ok());
  }
  Result<std::vector<Segment>> rest = seg.Flush();
  ASSERT_TRUE(rest.ok());
  ASSERT_EQ(rest->size(), 1u);
  EXPECT_EQ((*rest)[0].key, 1);
}

TEST(HistoricalRuntime, SegmentsFlowThroughQuery) {
  HistoricalRuntime::Options opts;
  opts.segmentation.degree = 1;
  opts.segmentation.max_error = 0.05;
  Result<HistoricalRuntime> rt =
      HistoricalRuntime::Make(FilterQuerySpec(100.0), std::move(opts));
  ASSERT_TRUE(rt.ok());
  // A piecewise-linear x trace: sliding-window fitting emits segments
  // which pass the (always-true) filter.
  for (int i = 0; i < 300; ++i) {
    const double t = i * 0.05;
    const double x = t < 7.5 ? 2.0 * t : 30.0 - 2.0 * t;
    ASSERT_TRUE(
        rt->ProcessTuple("objects", ObjectTuple(t, 1, x, 0.0)).ok());
  }
  ASSERT_TRUE(rt->Finish().ok());
  EXPECT_EQ(rt->stats().tuples_in, 300u);
  EXPECT_GE(rt->stats().segments_pushed, 2u);
  EXPECT_GE(rt->stats().output_segments, rt->stats().segments_pushed);
  std::vector<Segment> outputs = rt->TakeOutputSegments();
  EXPECT_FALSE(outputs.empty());
}

TEST(HistoricalRuntime, DirectSegmentReplay) {
  HistoricalRuntime::Options opts;
  Result<HistoricalRuntime> rt =
      HistoricalRuntime::Make(FilterQuerySpec(5.0), std::move(opts));
  ASSERT_TRUE(rt.ok());
  Segment seg(1, Interval::ClosedOpen(0.0, 10.0));
  seg.set_attribute("x", Polynomial({0.0, 1.0}));
  seg.set_attribute("y", Polynomial());
  ASSERT_TRUE(rt->ProcessSegment("objects", seg).ok());
  std::vector<Segment> outputs = rt->TakeOutputSegments();
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_NEAR(outputs[0].range.hi, 5.0, 1e-9);
}

TEST(HistoricalRuntime, UnknownStreamFails) {
  HistoricalRuntime::Options opts;
  Result<HistoricalRuntime> rt =
      HistoricalRuntime::Make(FilterQuerySpec(5.0), std::move(opts));
  ASSERT_TRUE(rt.ok());
  EXPECT_FALSE(
      rt->ProcessTuple("zzz", ObjectTuple(0.0, 1, 0.0, 0.0)).ok());
}

}  // namespace
}  // namespace pulse
