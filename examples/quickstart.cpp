// Quickstart: the smallest end-to-end Pulse program.
//
// A stream of moving objects declares a MODEL clause (x = x + vx*t); a
// continuous filter "x < 500" is planned as a simultaneous equation
// system; arriving tuples either validate against the current model
// (cheap) or rebuild it and re-solve. Results come out as segments — time
// ranges during which the predicate provably holds — and are sampled into
// discrete tuples at 10 Hz.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/parser.h"
#include "core/runtime.h"
#include "workload/moving_object.h"

using namespace pulse;

int main() {
  // 1. Declare the stream: schema (id, x, y, vx, vy), key "id", MODEL
  //    clauses x = x + vx*t and y = y + vy*t, predictive horizon 5 s.
  QuerySpec spec;
  Status st = spec.AddStream(
      MovingObjectGenerator::MakeStreamSpec("objects", /*horizon=*/5.0));
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // 2. A continuous filter, written in the paper's StreamSQL dialect and
  //    planned as a simultaneous equation system. (The MODEL clause is
  //    validated against the stream declaration — paper Fig. 1.)
  Result<QuerySpec::NodeId> query = QueryParser::Parse(
      &spec,
      "select * from objects model objects.x = objects.x + objects.vx t "
      "where x < 500");
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }

  // 3. Predictive runtime with a 1% accuracy bound on x, sampling query
  //    results at 10 Hz.
  PredictiveRuntime::Options options;
  options.bounds = {BoundSpec::Relative("x", 0.01)};
  options.sample_rate = 10.0;
  Result<PredictiveRuntime> runtime =
      PredictiveRuntime::Make(spec, options);
  if (!runtime.ok()) {
    std::fprintf(stderr, "%s\n", runtime.status().ToString().c_str());
    return 1;
  }

  // 4. Feed a synthetic object stream.
  MovingObjectOptions gen_options;
  gen_options.num_objects = 5;
  gen_options.tuple_rate = 100.0;
  gen_options.tuples_per_segment = 50;
  gen_options.area = 1000.0;
  MovingObjectGenerator generator(gen_options);
  for (int i = 0; i < 2000; ++i) {
    st = runtime->ProcessTuple("objects", generator.NextTuple());
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }
  st = runtime->Finish();
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // 5. Inspect what happened.
  const RuntimeStats& stats = runtime->stats();
  std::printf("tuples in            : %llu\n",
              (unsigned long long)stats.tuples_in);
  std::printf("validated (skipped)  : %llu\n",
              (unsigned long long)stats.tuples_validated);
  std::printf("model rebuilds       : %llu\n",
              (unsigned long long)stats.segments_pushed);
  std::printf("bound violations     : %llu\n",
              (unsigned long long)stats.violations);
  std::printf("result segments      : %llu\n",
              (unsigned long long)stats.output_segments);
  std::printf("sampled result tuples: %llu\n",
              (unsigned long long)stats.output_tuples);

  std::vector<Segment> segments = runtime->TakeOutputSegments();
  std::printf("\nfirst result segments (time ranges where x < 500):\n");
  for (size_t i = 0; i < segments.size() && i < 5; ++i) {
    std::printf("  %s\n", segments[i].ToString().c_str());
  }
  return 0;
}
