// Differential suite: replays a fixed battery of generated cases through
// the discrete executor (ground truth on densely sampled tuples) and the
// Pulse runtime (fitted models, metamorphic variants), and requires zero
// divergences. Every failure message carries the seed; replay locally with
//   pulse::testing::RunDifferentialSeed(seed)
// or by running the single named test case again (cases are seed-indexed
// and fully deterministic).

#include "testing/differential.h"

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "testing/plan_gen.h"

namespace pulse {
namespace testing {
namespace {

// Runs one seed and fails with the full report (first divergences, replay
// instructions) on any mismatch.
void RunSeed(uint64_t seed) {
  Result<DiffReport> report = RunDifferentialSeed(seed);
  ASSERT_TRUE(report.ok()) << "seed " << seed << ": "
                           << report.status().message();
  EXPECT_TRUE(report->ok()) << report->ToString();
  // A case that produces no output on either side exercises nothing; the
  // generator is tuned so this stays rare, but it must not be silent.
  if (report->discrete_output_tuples == 0 &&
      report->pulse_output_segments == 0) {
    GTEST_LOG_(INFO) << "seed " << seed << " produced empty outputs ("
                     << report->description << ")";
  }
}

class DifferentialSuite : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialSuite, DiscreteAndPulseAgree) { RunSeed(GetParam()); }

// 200 fixed seeds. The base offset is arbitrary but frozen: changing it
// invalidates triaged history (a seed is a bug report identifier).
std::vector<uint64_t> FixedSeeds() {
  std::vector<uint64_t> seeds;
  seeds.reserve(200);
  for (uint64_t i = 0; i < 200; ++i) seeds.push_back(1000 + i);
  return seeds;
}

INSTANTIATE_TEST_SUITE_P(Fixed, DifferentialSuite,
                         ::testing::ValuesIn(FixedSeeds()),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

// Epoch/distinct battery: 200 more frozen seeds restricted to the
// telemetry archetypes (stream -> epoch, and the Sonata detection shape
// stream -> epoch -> filter -> distinct over bursty telemetry-mode
// workloads). Kept separate from the Fixed battery so its seed -> case
// mapping stays frozen too, and so every seed here exercises the new
// operators across the full metamorphic grid (threads x cache x shards
// x forced-scalar x serving) rather than a 2-in-7 slice of a mixed run.
void RunTelemetrySeed(uint64_t seed) {
  PlanGenOptions gen;
  gen.archetypes = {PlanArchetype::kEpochMark,
                    PlanArchetype::kEpochDistinct};
  Result<DiffReport> report = RunDifferentialSeed(seed, gen);
  ASSERT_TRUE(report.ok()) << "seed " << seed << ": "
                           << report.status().message();
  EXPECT_TRUE(report->ok()) << report->ToString();
}

class TelemetryDifferentialSuite
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TelemetryDifferentialSuite, EpochDistinctAgree) {
  RunTelemetrySeed(GetParam());
}

// Base offset 3000: disjoint from the Fixed battery (1000+) and the
// env-gated sweep (10000+), and frozen for the same reason.
std::vector<uint64_t> TelemetrySeeds() {
  std::vector<uint64_t> seeds;
  seeds.reserve(200);
  for (uint64_t i = 0; i < 200; ++i) seeds.push_back(3000 + i);
  return seeds;
}

INSTANTIATE_TEST_SUITE_P(Telemetry, TelemetryDifferentialSuite,
                         ::testing::ValuesIn(TelemetrySeeds()),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

// Guards the distinct oracle against passing vacuously: across the
// first slice of the telemetry battery, detection events must actually
// flow on both sides (the generator's burst probability and threshold
// band are tuned so epoch_distinct cases fire routinely).
TEST(TelemetryDifferential, DetectionEventsAreNotVacuous) {
  PlanGenOptions gen;
  gen.archetypes = {PlanArchetype::kEpochDistinct};
  size_t with_events = 0;
  for (uint64_t seed = 3000; seed < 3020; ++seed) {
    Result<DiffReport> report = RunDifferentialSeed(seed, gen);
    ASSERT_TRUE(report.ok()) << report.status().message();
    EXPECT_TRUE(report->ok()) << report->ToString();
    if (report->discrete_output_tuples > 0 &&
        report->pulse_output_segments > 0) {
      ++with_events;
    }
  }
  EXPECT_GE(with_events, 10u)
      << "most epoch_distinct cases should produce detection events";
}

// Regression: HAVING after min/max leaked stale envelope slices. The
// eager changed-range protocol gives aggregate output streams override
// semantics (a later segment replaces earlier coverage where ranges
// overlap), but a downstream filter cannot retract a passing slice of a
// piece that was later overridden by one that fails the predicate. Found
// by this harness at the seeds below; fixed by the finalize emission
// mode of PulseMinMaxAggregate (settled, append-only pieces), which
// BuildPulsePlan now always enables.
TEST(Regression, EnvelopeHavingStaleOverride) {
  for (uint64_t seed : {1034u, 1084u, 1185u, 1191u}) RunSeed(seed);
}

// Regression territory the random generator deliberately avoids: kEq
// predicates (plan_gen.cc uses inequalities only). An equality join over
// the *same* attribute of matched keys makes the difference polynomial
// identically zero — the solver's everywhere-zero special case — and
// both engines must report the pair everywhere, not nowhere.
TEST(Regression, ZeroDifferenceEqualityJoin) {
  GeneratedCase kase;
  kase.seed = 0;
  kase.archetype = PlanArchetype::kJoin;
  kase.sample_dt = 0.05;
  Rng rng(424242);
  StreamWorkload ws = GenerateStreamWorkload(rng, "s", {"x", "y"}, 2);

  StreamSpec stream;
  stream.name = ws.name;
  stream.schema = ws.MakeSchema();
  stream.key_field = "id";
  for (const std::string& attr : ws.attributes) {
    stream.models.push_back(ModelClause{attr, {attr}});
  }
  stream.segment_horizon = ws.t_end - ws.t_begin;
  ASSERT_TRUE(kase.spec.AddStream(std::move(stream)).ok());

  JoinSpec js;
  js.window_seconds = 0.5 * kase.sample_dt;
  js.match_keys = true;
  js.predicate = Predicate::Comparison(ComparisonTerm::Simple(
      AttrRef::Left("x"), CmpOp::kEq,
      Operand::Attribute(AttrRef::Right("x"))));
  kase.spec.AddJoin("join", QuerySpec::Input::Stream("s"),
                    QuerySpec::Input::Stream("s"), std::move(js));
  kase.workloads.push_back(std::move(ws));
  kase.sink.kind = SinkInfo::Kind::kPointwise;
  kase.sink.key_field = "pair_key";
  kase.description = "regression: zero-difference equality self-join";

  Result<DiffReport> report = RunDifferential(kase);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_TRUE(report->ok()) << report->ToString();
  // The whole point: the pair must exist (x == x holds everywhere).
  EXPECT_GT(report->discrete_output_tuples, 0u);
  EXPECT_GT(report->pulse_output_segments, 0u);
}

// The harness checks the docs/OBSERVABILITY.md metrics invariants on
// every seed (op-name parity across realizations, the solve-cache
// accounting identity, tasks_spawned == 0 when serial, wall <= cpu on
// the parallel variant). This pins that those checks actually ran —
// metrics_checks counts evaluated invariants, and a plan with at least
// one operator must evaluate the four invariant families plus one
// name-parity check per operator.
TEST(MetricsInvariants, ChecksAreEvaluatedPerSeed) {
  Result<DiffReport> report = RunDifferentialSeed(1000);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_TRUE(report->ok()) << report->ToString();
  EXPECT_GE(report->metrics_checks, 5u) << "metrics invariants were "
                                           "vacuous for seed 1000";
}

// Optional extended sweep for soak runs: PULSE_DIFF_EXTRA=N runs N more
// seeds past the fixed battery. Not part of tier-1 (env-gated).
TEST(DifferentialExtra, EnvGatedSweep) {
  const char* extra = std::getenv("PULSE_DIFF_EXTRA");
  if (extra == nullptr) GTEST_SKIP() << "set PULSE_DIFF_EXTRA=N to enable";
  const uint64_t n = std::strtoull(extra, nullptr, 10);
  for (uint64_t i = 0; i < n; ++i) RunSeed(10000 + i);
}

}  // namespace
}  // namespace testing
}  // namespace pulse
