# Empty compiler generated dependencies file for bench_fig9_ais.
# This may be replaced when dependencies are built.
