file(REMOVE_RECURSE
  "CMakeFiles/pulse_math.dir/math/interval_set.cc.o"
  "CMakeFiles/pulse_math.dir/math/interval_set.cc.o.d"
  "CMakeFiles/pulse_math.dir/math/linear_system.cc.o"
  "CMakeFiles/pulse_math.dir/math/linear_system.cc.o.d"
  "CMakeFiles/pulse_math.dir/math/matrix.cc.o"
  "CMakeFiles/pulse_math.dir/math/matrix.cc.o.d"
  "CMakeFiles/pulse_math.dir/math/polynomial.cc.o"
  "CMakeFiles/pulse_math.dir/math/polynomial.cc.o.d"
  "CMakeFiles/pulse_math.dir/math/roots.cc.o"
  "CMakeFiles/pulse_math.dir/math/roots.cc.o.d"
  "libpulse_math.a"
  "libpulse_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pulse_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
