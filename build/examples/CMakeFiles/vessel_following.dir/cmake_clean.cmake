file(REMOVE_RECURSE
  "CMakeFiles/vessel_following.dir/vessel_following.cpp.o"
  "CMakeFiles/vessel_following.dir/vessel_following.cpp.o.d"
  "vessel_following"
  "vessel_following.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vessel_following.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
