#include "model/fitting.h"

#include <cmath>

#include <gtest/gtest.h>

namespace pulse {
namespace {

std::vector<Sample> SamplePoly(const Polynomial& p, double lo, double hi,
                               size_t n) {
  std::vector<Sample> out;
  for (size_t i = 0; i < n; ++i) {
    const double t = lo + (hi - lo) * static_cast<double>(i) /
                              static_cast<double>(n - 1);
    out.push_back(Sample{t, p.Evaluate(t)});
  }
  return out;
}

TEST(FitPolynomial, RecoversExactLine) {
  Polynomial truth({2.0, -1.5});
  Result<Polynomial> fit = FitPolynomial(SamplePoly(truth, 0, 10, 20), 1);
  ASSERT_TRUE(fit.ok());
  EXPECT_TRUE(fit->AlmostEquals(truth, 1e-8));
}

TEST(FitPolynomial, RecoversExactQuadratic) {
  Polynomial truth({1.0, 0.5, -0.25});
  Result<Polynomial> fit = FitPolynomial(SamplePoly(truth, -5, 5, 30), 2);
  ASSERT_TRUE(fit.ok());
  EXPECT_TRUE(fit->AlmostEquals(truth, 1e-7));
}

TEST(FitPolynomial, NeedsEnoughSamples) {
  std::vector<Sample> two = {{0.0, 1.0}, {1.0, 2.0}};
  EXPECT_FALSE(FitPolynomial(two, 2).ok());
  EXPECT_TRUE(FitPolynomial(two, 1).ok());
}

TEST(FitPolynomial, LeastSquaresMinimizesResiduals) {
  // Points off a line by symmetric offsets: best line is the middle one.
  std::vector<Sample> pts = {{0.0, 0.0 + 1.0},
                             {1.0, 2.0 - 1.0},
                             {2.0, 4.0 + 1.0},
                             {3.0, 6.0 - 1.0}};
  Result<Polynomial> fit = FitPolynomial(pts, 1);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->coeff(1), 2.0, 0.45);
  const double rms = RmsResidual(*fit, pts);
  // Any other line must not beat the least-squares RMS.
  Polynomial alt({0.0, 2.0});
  EXPECT_LE(rms, RmsResidual(alt, pts) + 1e-12);
}

TEST(Residuals, MaxAndRms) {
  Polynomial p({0.0});
  std::vector<Sample> pts = {{0.0, 3.0}, {1.0, -4.0}};
  EXPECT_DOUBLE_EQ(MaxAbsResidual(p, pts), 4.0);
  EXPECT_NEAR(RmsResidual(p, pts), std::sqrt(12.5), 1e-12);
  EXPECT_DOUBLE_EQ(RmsResidual(p, {}), 0.0);
}

TEST(FitConvenience, ConstantIsMean) {
  std::vector<Sample> pts = {{0.0, 1.0}, {1.0, 3.0}, {2.0, 5.0}};
  Result<Polynomial> c = FitConstant(pts);
  ASSERT_TRUE(c.ok());
  EXPECT_NEAR(c->coeff(0), 3.0, 1e-10);
  Result<Polynomial> l = FitLine(pts);
  ASSERT_TRUE(l.ok());
  EXPECT_NEAR(l->coeff(1), 2.0, 1e-10);
}

// Degree sweep: exact recovery for degrees 0..5.
class FitDegreeSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(FitDegreeSweep, ExactRecovery) {
  const size_t d = GetParam();
  std::vector<double> coeffs;
  for (size_t i = 0; i <= d; ++i) {
    coeffs.push_back(((i % 2 == 0) ? 1.0 : -1.0) * (0.3 + 0.1 * i));
  }
  Polynomial truth{std::vector<double>(coeffs)};
  Result<Polynomial> fit =
      FitPolynomial(SamplePoly(truth, -2.0, 2.0, 3 * (d + 2)), d);
  ASSERT_TRUE(fit.ok());
  EXPECT_TRUE(fit->AlmostEquals(truth, 1e-6))
      << fit->ToString() << " vs " << truth.ToString();
}

INSTANTIATE_TEST_SUITE_P(Degrees, FitDegreeSweep,
                         ::testing::Values(0, 1, 2, 3, 4, 5));

}  // namespace
}  // namespace pulse
