#ifndef PULSE_ENGINE_JOIN_H_
#define PULSE_ENGINE_JOIN_H_

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/operator.h"
#include "math/roots.h"

namespace pulse {

/// A structured join predicate term comparing a left field to a right
/// field: left.lhs_field R right.rhs_field.
struct JoinComparison {
  size_t lhs_field = 0;
  CmpOp op = CmpOp::kEq;
  size_t rhs_field = 0;
};

/// Nested-loops sliding-window join: the paper's discrete baseline
/// (Section V-A, Fig. 5iii / 7ii). Each side buffers tuples for
/// `window_seconds`; an arrival on one side probes the other side's whole
/// buffer, giving the quadratic comparison count the paper observes.
///
/// The predicate has a structured conjunction plus an optional extra
/// lambda (for e.g. "R.id <> S.id" guards combined with distance terms).
class SlidingWindowJoin : public Operator {
 public:
  SlidingWindowJoin(std::string name,
                    std::shared_ptr<const Schema> left_schema,
                    std::shared_ptr<const Schema> right_schema,
                    double window_seconds,
                    std::vector<JoinComparison> predicate,
                    std::function<bool(const Tuple&, const Tuple&)>
                        extra_predicate = nullptr,
                    const std::string& left_prefix = "left.",
                    const std::string& right_prefix = "right.");

  size_t num_inputs() const override { return 2; }

  std::shared_ptr<const Schema> output_schema() const override {
    return output_schema_;
  }

  Status Process(size_t port, const Tuple& input,
                 std::vector<Tuple>* out) override;

  Status AdvanceTime(double t, std::vector<Tuple>* out) override;

  size_t left_buffer_size() const { return left_.size(); }
  size_t right_buffer_size() const { return right_.size(); }

 private:
  bool Matches(const Tuple& left, const Tuple& right);
  void Expire(double now);

  std::shared_ptr<const Schema> left_schema_;
  std::shared_ptr<const Schema> right_schema_;
  std::shared_ptr<const Schema> output_schema_;
  double window_seconds_;
  std::vector<JoinComparison> predicate_;
  std::function<bool(const Tuple&, const Tuple&)> extra_predicate_;
  std::deque<Tuple> left_;
  std::deque<Tuple> right_;
};

}  // namespace pulse

#endif  // PULSE_ENGINE_JOIN_H_
