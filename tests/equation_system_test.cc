#include "core/equation_system.h"

#include <cmath>

#include <gtest/gtest.h>

namespace pulse {
namespace {

TEST(DifferenceEquation, FromAttributePair) {
  // Paper Fig. 1: A.x + A.v t  vs  B.v t + B.a t^2 under '<'.
  Polynomial ax({1.0, 2.0});        // A.x = 1 + 2t
  Polynomial by({0.0, 1.0, 0.5});   // B.y = t + 0.5 t^2
  DifferenceEquation row = MakeDifferenceEquation(ax, CmpOp::kLt, by);
  // (x - y)(t) = 1 + t - 0.5 t^2.
  EXPECT_NEAR(row.diff.coeff(0), 1.0, 1e-12);
  EXPECT_NEAR(row.diff.coeff(1), 1.0, 1e-12);
  EXPECT_NEAR(row.diff.coeff(2), -0.5, 1e-12);
  EXPECT_EQ(row.op, CmpOp::kLt);
  EXPECT_NE(row.ToString().find("< 0"), std::string::npos);
}

TEST(EquationSystem, CoefficientMatrixShape) {
  // Paper Eq. 1: D is (#rows) x (degree + 1), constant term first.
  EquationSystem sys;
  sys.AddRow(DifferenceEquation{Polynomial({1.0, 2.0}), CmpOp::kLt});
  sys.AddRow(DifferenceEquation{Polynomial({3.0, 0.0, 4.0}), CmpOp::kEq});
  Matrix d = sys.CoefficientMatrix();
  EXPECT_EQ(d.rows(), 2u);
  EXPECT_EQ(d.cols(), 3u);
  EXPECT_DOUBLE_EQ(d(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(d(0, 2), 0.0);  // padded
  EXPECT_DOUBLE_EQ(d(1, 2), 4.0);
  EXPECT_EQ(sys.Degree(), 2u);
}

TEST(EquationSystem, SolveSingleRow) {
  // t - 5 < 0 over [0, 10).
  EquationSystem sys;
  sys.AddRow(DifferenceEquation{Polynomial({-5.0, 1.0}), CmpOp::kLt});
  IntervalSet sol = sys.Solve(Interval::ClosedOpen(0.0, 10.0));
  EXPECT_TRUE(sol.Contains(2.0));
  EXPECT_FALSE(sol.Contains(6.0));
}

TEST(EquationSystem, SolveConjunctionIntersects) {
  // t > 2 AND t < 7 -> (2, 7).
  EquationSystem sys;
  sys.AddRow(DifferenceEquation{Polynomial({-2.0, 1.0}), CmpOp::kGt});
  sys.AddRow(DifferenceEquation{Polynomial({-7.0, 1.0}), CmpOp::kLt});
  IntervalSet sol = sys.Solve(Interval::Closed(0.0, 10.0));
  ASSERT_EQ(sol.size(), 1u);
  EXPECT_FALSE(sol.Contains(2.0));
  EXPECT_TRUE(sol.Contains(5.0));
  EXPECT_FALSE(sol.Contains(7.0));
}

TEST(EquationSystem, UnsatisfiableSystemEmpty) {
  // t < 2 AND t > 7: no solution — the operator emits nothing.
  EquationSystem sys;
  sys.AddRow(DifferenceEquation{Polynomial({-2.0, 1.0}), CmpOp::kLt});
  sys.AddRow(DifferenceEquation{Polynomial({-7.0, 1.0}), CmpOp::kGt});
  EXPECT_TRUE(sys.Solve(Interval::Closed(0.0, 10.0)).IsEmpty());
}

TEST(EquationSystem, EmptySystemIsWholeDomain) {
  EquationSystem sys;
  IntervalSet sol = sys.Solve(Interval::Closed(0.0, 1.0));
  EXPECT_DOUBLE_EQ(sol.TotalLength(), 1.0);
}

TEST(EquationSystem, LinearEqualityFastPath) {
  // 2t - 6 = 0 and t - 3 = 0: common solution t = 3.
  EquationSystem sys;
  sys.AddRow(DifferenceEquation{Polynomial({-6.0, 2.0}), CmpOp::kEq});
  sys.AddRow(DifferenceEquation{Polynomial({-3.0, 1.0}), CmpOp::kEq});
  EXPECT_TRUE(sys.QualifiesForLinearEquality());
  Result<double> t = sys.SolveLinearEquality(Interval::Closed(0.0, 10.0));
  ASSERT_TRUE(t.ok());
  EXPECT_NEAR(*t, 3.0, 1e-12);
}

TEST(EquationSystem, LinearEqualityInconsistentRows) {
  EquationSystem sys;
  sys.AddRow(DifferenceEquation{Polynomial({-6.0, 2.0}), CmpOp::kEq});
  sys.AddRow(DifferenceEquation{Polynomial({-8.0, 1.0}), CmpOp::kEq});
  Result<double> t = sys.SolveLinearEquality(Interval::Closed(0.0, 10.0));
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kNotFound);
}

TEST(EquationSystem, LinearEqualityOutsideDomain) {
  EquationSystem sys;
  sys.AddRow(DifferenceEquation{Polynomial({-30.0, 2.0}), CmpOp::kEq});
  EXPECT_FALSE(sys.SolveLinearEquality(Interval::Closed(0.0, 10.0)).ok());
}

TEST(EquationSystem, LinearEqualityRejectsNonQualifying) {
  EquationSystem ineq;
  ineq.AddRow(DifferenceEquation{Polynomial({-1.0, 1.0}), CmpOp::kLt});
  EXPECT_FALSE(ineq.QualifiesForLinearEquality());
  EXPECT_EQ(ineq.SolveLinearEquality(Interval::Closed(0.0, 1.0))
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
  EquationSystem quad;
  quad.AddRow(DifferenceEquation{Polynomial({0.0, 0.0, 1.0}), CmpOp::kEq});
  EXPECT_FALSE(quad.QualifiesForLinearEquality());
}

TEST(EquationSystem, LinearEqualityDegenerateRows) {
  // 0 = 0 rows constrain nothing; an inconsistent constant row fails.
  EquationSystem sys;
  sys.AddRow(DifferenceEquation{Polynomial(), CmpOp::kEq});
  sys.AddRow(DifferenceEquation{Polynomial({-4.0, 2.0}), CmpOp::kEq});
  Result<double> t = sys.SolveLinearEquality(Interval::Closed(0.0, 10.0));
  ASSERT_TRUE(t.ok());
  EXPECT_NEAR(*t, 2.0, 1e-12);

  EquationSystem bad;
  bad.AddRow(DifferenceEquation{Polynomial({5.0}), CmpOp::kEq});
  EXPECT_FALSE(bad.SolveLinearEquality(Interval::Closed(0.0, 10.0)).ok());
}

TEST(EquationSystem, FastPathAgreesWithGeneralSolve) {
  EquationSystem sys;
  sys.AddRow(DifferenceEquation{Polynomial({-7.5, 3.0}), CmpOp::kEq});
  const Interval dom = Interval::Closed(0.0, 10.0);
  Result<double> fast = sys.SolveLinearEquality(dom);
  ASSERT_TRUE(fast.ok());
  IntervalSet general = sys.Solve(dom);
  ASSERT_EQ(general.size(), 1u);
  EXPECT_TRUE(general.intervals()[0].IsPoint());
  EXPECT_NEAR(general.intervals()[0].lo, *fast, 1e-9);
}

TEST(EquationSystem, SlackSingleRowLinear) {
  // |t - 5| over [0, 4]: minimum 1 at t = 4 (predicate t - 5 = 0 nearly
  // fires at the domain edge).
  EquationSystem sys;
  sys.AddRow(DifferenceEquation{Polynomial({-5.0, 1.0}), CmpOp::kEq});
  EXPECT_NEAR(sys.Slack(Interval::Closed(0.0, 4.0)), 1.0, 1e-9);
  // Domain containing the root: slack 0.
  EXPECT_NEAR(sys.Slack(Interval::Closed(0.0, 10.0)), 0.0, 1e-9);
}

TEST(EquationSystem, SlackUsesMaxNormAcrossRows) {
  // Rows t - 5 and t + 5 over [-1, 1]: ||Dt||_inf = max(|t-5|, |t+5|),
  // minimized at t = 0 with value 5.
  EquationSystem sys;
  sys.AddRow(DifferenceEquation{Polynomial({-5.0, 1.0}), CmpOp::kEq});
  sys.AddRow(DifferenceEquation{Polynomial({5.0, 1.0}), CmpOp::kEq});
  EXPECT_NEAR(sys.Slack(Interval::Closed(-1.0, 1.0)), 5.0, 1e-9);
}

TEST(EquationSystem, SlackQuadraticInteriorMinimum) {
  // (t-3)^2 + 2 over [0, 10]: minimum 2 at t = 3 (derivative root).
  EquationSystem sys;
  sys.AddRow(
      DifferenceEquation{Polynomial({11.0, -6.0, 1.0}), CmpOp::kLt});
  EXPECT_NEAR(sys.Slack(Interval::Closed(0.0, 10.0)), 2.0, 1e-9);
}

TEST(EquationSystem, SlackEdgeCases) {
  EquationSystem empty;
  EXPECT_DOUBLE_EQ(empty.Slack(Interval::Closed(0.0, 1.0)), 0.0);
  EquationSystem sys;
  sys.AddRow(DifferenceEquation{Polynomial({1.0}), CmpOp::kEq});
  EXPECT_TRUE(std::isinf(sys.Slack(Interval::Closed(1.0, 0.0))));
}

TEST(EquationSystem, ToStringListsRows) {
  EquationSystem sys;
  sys.AddRow(DifferenceEquation{Polynomial({-5.0, 1.0}), CmpOp::kLt});
  EXPECT_NE(sys.ToString().find("<"), std::string::npos);
}

// Property sweep: slack is a true lower bound on every row's magnitude at
// any domain point.
class SlackSweep : public ::testing::TestWithParam<double> {};

TEST_P(SlackSweep, LowerBoundsRowMagnitudes) {
  const double shift = GetParam();
  EquationSystem sys;
  sys.AddRow(
      DifferenceEquation{Polynomial({shift, -1.0, 0.25}), CmpOp::kLt});
  sys.AddRow(DifferenceEquation{Polynomial({-shift, 0.5}), CmpOp::kGt});
  const Interval dom = Interval::Closed(0.0, 8.0);
  const double slack = sys.Slack(dom);
  for (double t = 0.0; t <= 8.0; t += 0.05) {
    double max_row = 0.0;
    for (const DifferenceEquation& row : sys.rows()) {
      max_row = std::max(max_row, std::abs(row.diff.Evaluate(t)));
    }
    EXPECT_GE(max_row + 1e-9, slack) << "t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Shifts, SlackSweep,
                         ::testing::Values(-3.0, -1.0, 0.0, 0.5, 2.0, 10.0));

}  // namespace
}  // namespace pulse
