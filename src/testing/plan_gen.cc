#include "testing/plan_gen.h"

#include <sstream>

#include "util/logging.h"

namespace pulse {
namespace testing {

const char* PlanArchetypeToString(PlanArchetype a) {
  switch (a) {
    case PlanArchetype::kFilterChain:
      return "filter_chain";
    case PlanArchetype::kJoin:
      return "join";
    case PlanArchetype::kSelfJoin:
      return "self_join";
    case PlanArchetype::kAggregate:
      return "aggregate";
    case PlanArchetype::kGroupBy:
      return "group_by";
    case PlanArchetype::kEpochMark:
      return "epoch_mark";
    case PlanArchetype::kEpochDistinct:
      return "epoch_distinct";
  }
  return "unknown";
}

namespace {

// Inequality comparison ops only: equality predicates hold on isolated
// points of continuous trajectories (paper Section IV-A discusses the
// resulting discrete/continuous mismatch), so the random generator sticks
// to ops where both engines answer over full-measure time ranges. The
// kEq case is covered by dedicated regression tests.
CmpOp RandomIneqOp(Rng& rng) {
  static const CmpOp kOps[] = {CmpOp::kLt, CmpOp::kLe, CmpOp::kGt,
                               CmpOp::kGe};
  return kOps[rng.UniformInt(0, 3)];
}

const std::string& Pick(Rng& rng, const std::vector<std::string>& v) {
  return v[static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(v.size()) - 1))];
}

// Random comparison atom. `right_attrs` empty => unary predicate (all
// references on side kLeft); otherwise binary (join) predicates may
// reference both sides, including the proximity dist^2 form when both
// sides expose x and y.
Predicate RandomAtom(Rng& rng, const std::vector<std::string>& left_attrs,
                     const std::vector<std::string>& right_attrs,
                     double scale) {
  const bool binary = !right_attrs.empty();
  if (binary) {
    const bool has_xy = [&] {
      auto has = [](const std::vector<std::string>& v,
                    const char* n) {
        for (const std::string& s : v) {
          if (s == n) return true;
        }
        return false;
      };
      return has(left_attrs, "x") && has(left_attrs, "y") &&
             has(right_attrs, "x") && has(right_attrs, "y");
    }();
    const int64_t roll = rng.UniformInt(0, has_xy ? 3 : 2);
    if (roll == 3) {
      // dist((L.x, L.y), (R.x, R.y)) R threshold.
      return Predicate::Comparison(ComparisonTerm::Distance2(
          AttrRef::Left("x"), AttrRef::Left("y"), AttrRef::Right("x"),
          AttrRef::Right("y"), RandomIneqOp(rng),
          rng.Uniform(0.3, 1.5) * scale));
    }
    if (roll == 2) {
      // L.a R constant.
      return Predicate::Comparison(ComparisonTerm::Simple(
          AttrRef::Left(Pick(rng, left_attrs)), RandomIneqOp(rng),
          Operand::Constant(rng.Uniform(-0.8, 0.8) * scale)));
    }
    // L.a R R.b (roll 0/1 biases toward cross-side comparisons).
    return Predicate::Comparison(ComparisonTerm::Simple(
        AttrRef::Left(Pick(rng, left_attrs)), RandomIneqOp(rng),
        Operand::Attribute(AttrRef::Right(Pick(rng, right_attrs)))));
  }
  if (left_attrs.size() >= 2 && rng.Bernoulli(0.3)) {
    // a R b across two attributes of the one input.
    const std::string& a = Pick(rng, left_attrs);
    std::string b = Pick(rng, left_attrs);
    while (b == a) b = Pick(rng, left_attrs);
    return Predicate::Comparison(ComparisonTerm::Simple(
        AttrRef::Left(a), RandomIneqOp(rng),
        Operand::Attribute(AttrRef::Left(std::move(b)))));
  }
  return Predicate::Comparison(ComparisonTerm::Simple(
      AttrRef::Left(Pick(rng, left_attrs)), RandomIneqOp(rng),
      Operand::Constant(rng.Uniform(-0.8, 0.8) * scale)));
}

// Random boolean tree of depth <= `depth` over comparison atoms.
Predicate RandomPredicate(Rng& rng, int depth,
                          const std::vector<std::string>& left_attrs,
                          const std::vector<std::string>& right_attrs,
                          double scale) {
  if (depth <= 0 || rng.Bernoulli(0.4)) {
    return RandomAtom(rng, left_attrs, right_attrs, scale);
  }
  const int64_t roll = rng.UniformInt(0, 9);
  if (roll < 4) {
    std::vector<Predicate> kids;
    kids.push_back(
        RandomPredicate(rng, depth - 1, left_attrs, right_attrs, scale));
    kids.push_back(
        RandomPredicate(rng, depth - 1, left_attrs, right_attrs, scale));
    return Predicate::And(std::move(kids));
  }
  if (roll < 8) {
    std::vector<Predicate> kids;
    kids.push_back(
        RandomPredicate(rng, depth - 1, left_attrs, right_attrs, scale));
    kids.push_back(
        RandomPredicate(rng, depth - 1, left_attrs, right_attrs, scale));
    return Predicate::Or(std::move(kids));
  }
  return Predicate::Not(
      RandomPredicate(rng, depth - 1, left_attrs, right_attrs, scale));
}

// StreamSpec for a generated workload. Replay pushes fitted segments
// directly, so the MODEL clauses are the trivial degree-0 self-models —
// present for spec completeness (segmenter construction), unused.
StreamSpec MakeStreamSpec(const StreamWorkload& ws) {
  StreamSpec spec;
  spec.name = ws.name;
  spec.schema = ws.MakeSchema();
  spec.key_field = "id";
  for (const std::string& attr : ws.attributes) {
    spec.models.push_back(ModelClause{attr, {attr}});
  }
  spec.segment_horizon = ws.t_end - ws.t_begin;
  return spec;
}

size_t RandomKeys(Rng& rng, const WorkloadGenOptions& o, size_t lo_floor) {
  const size_t lo = std::max(o.min_keys, lo_floor);
  const size_t hi = std::max(o.max_keys, lo);
  return static_cast<size_t>(rng.UniformInt(static_cast<int64_t>(lo),
                                            static_cast<int64_t>(hi)));
}

double PickWindow(Rng& rng) {
  static const double kW[] = {1.0, 1.5, 2.0};
  return kW[rng.UniformInt(0, 2)];
}

double PickSlide(Rng& rng) {
  static const double kS[] = {0.25, 0.5, 1.0};
  return kS[rng.UniformInt(0, 2)];
}

// Epoch lengths deliberately include values that are and are not
// multiples of sample_dt, so epoch boundaries land both on and between
// grid instants.
double PickEpoch(Rng& rng) {
  static const double kE[] = {0.5, 0.75, 1.0, 1.5};
  return kE[rng.UniformInt(0, 3)];
}

}  // namespace

Result<GeneratedCase> GenerateCase(uint64_t seed,
                                   const PlanGenOptions& options) {
  Rng rng(seed);
  GeneratedCase out;
  out.seed = seed;
  out.sample_dt = options.sample_dt;
  const double scale = options.workload.value_scale;
  // The discrete sliding-window join is a band join in time; on the
  // shared sample grid a sub-grid window keeps exactly the co-temporal
  // pairs, which is what the continuous join's time-alignment computes
  // (docs/TESTING.md, "Join window").
  const double join_window = 0.5 * options.sample_dt;

  if (options.archetypes.empty()) {
    // Frozen default mix: seeds are bug-report identifiers (see
    // differential_test.cc), so this list must never be reordered or
    // extended — the historical seed -> case mapping would silently
    // change. Later archetypes (kEpochMark, kEpochDistinct) run in
    // their own frozen batteries via options.archetypes.
    static const PlanArchetype kAll[] = {
        PlanArchetype::kFilterChain, PlanArchetype::kJoin,
        PlanArchetype::kSelfJoin, PlanArchetype::kAggregate,
        PlanArchetype::kGroupBy};
    out.archetype = kAll[rng.UniformInt(0, 4)];
  } else {
    out.archetype = options.archetypes[static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(options.archetypes.size()) - 1))];
  }

  std::ostringstream desc;
  desc << "seed=" << seed << " " << PlanArchetypeToString(out.archetype);

  switch (out.archetype) {
    case PlanArchetype::kFilterChain: {
      StreamWorkload ws = GenerateStreamWorkload(
          rng, "s", {"x", "y"}, RandomKeys(rng, options.workload, 1),
          options.workload);
      PULSE_RETURN_IF_ERROR(out.spec.AddStream(MakeStreamSpec(ws)));
      const int n_filters = rng.Bernoulli(0.4) ? 2 : 1;
      QuerySpec::Input in = QuerySpec::Input::Stream("s");
      for (int i = 0; i < n_filters; ++i) {
        FilterSpec fs{RandomPredicate(rng, 2, ws.attributes, {}, scale)};
        desc << " filter[" << fs.predicate.ToString() << "]";
        in = QuerySpec::Input::Node(
            out.spec.AddFilter("f" + std::to_string(i), in, std::move(fs)));
      }
      out.workloads.push_back(std::move(ws));
      out.sink.kind = SinkInfo::Kind::kPointwise;
      out.sink.key_field = "id";
      break;
    }

    case PlanArchetype::kJoin:
    case PlanArchetype::kSelfJoin: {
      const bool self = out.archetype == PlanArchetype::kSelfJoin;
      JoinSpec js;
      js.window_seconds = join_window;
      QuerySpec::Input left = QuerySpec::Input::Stream("a");
      QuerySpec::Input right = QuerySpec::Input::Stream("b");
      std::vector<std::string> attrs = {"x", "y"};
      if (self) {
        StreamWorkload ws = GenerateStreamWorkload(
            rng, "s", attrs, RandomKeys(rng, options.workload, 2),
            options.workload);
        PULSE_RETURN_IF_ERROR(out.spec.AddStream(MakeStreamSpec(ws)));
        out.workloads.push_back(std::move(ws));
        left = right = QuerySpec::Input::Stream("s");
        js.require_distinct_keys = true;
        js.predicate =
            rng.Bernoulli(0.6)
                ? Predicate::Comparison(ComparisonTerm::Distance2(
                      AttrRef::Left("x"), AttrRef::Left("y"),
                      AttrRef::Right("x"), AttrRef::Right("y"),
                      RandomIneqOp(rng), rng.Uniform(0.3, 1.5) * scale))
                : RandomPredicate(rng, 1, attrs, attrs, scale);
      } else {
        StreamWorkload wa = GenerateStreamWorkload(
            rng, "a", attrs, RandomKeys(rng, options.workload, 1),
            options.workload);
        StreamWorkload wb = GenerateStreamWorkload(
            rng, "b", attrs, RandomKeys(rng, options.workload, 1),
            options.workload);
        PULSE_RETURN_IF_ERROR(out.spec.AddStream(MakeStreamSpec(wa)));
        PULSE_RETURN_IF_ERROR(out.spec.AddStream(MakeStreamSpec(wb)));
        out.workloads.push_back(std::move(wa));
        out.workloads.push_back(std::move(wb));
        js.match_keys = rng.Bernoulli(0.5);
        js.predicate = RandomPredicate(rng, 2, attrs, attrs, scale);
      }
      desc << (js.match_keys ? " match_keys" : "") << " on ["
           << js.predicate.ToString() << "]";
      QuerySpec::Input cur = QuerySpec::Input::Node(
          out.spec.AddJoin("join", left, right, std::move(js)));
      // Optional post-join stages over the prefixed joined attributes.
      const std::vector<std::string> joined = {"left.x", "left.y",
                                               "right.x", "right.y"};
      if (rng.Bernoulli(0.4)) {
        FilterSpec fs{RandomPredicate(rng, 1, joined, {}, scale)};
        desc << " post_filter[" << fs.predicate.ToString() << "]";
        cur = QuerySpec::Input::Node(
            out.spec.AddFilter("post", cur, std::move(fs)));
      }
      if (rng.Bernoulli(0.4)) {
        MapSpec ms;
        ms.outputs.push_back(ComputedAttr::Difference(
            "diff", AttrRef::Left("left.x"), AttrRef::Left("right.x")));
        ms.keep_inputs = true;
        desc << " map[diff]";
        cur = QuerySpec::Input::Node(
            out.spec.AddMap("proj", cur, std::move(ms)));
      }
      out.sink.kind = SinkInfo::Kind::kPointwise;
      out.sink.key_field = "pair_key";
      break;
    }

    case PlanArchetype::kAggregate:
    case PlanArchetype::kGroupBy: {
      const bool grouped = out.archetype == PlanArchetype::kGroupBy;
      static const AggFn kFns[] = {AggFn::kMin, AggFn::kMax, AggFn::kSum,
                                   AggFn::kAvg};
      const AggFn fn = kFns[rng.UniformInt(0, 3)];
      // The non-grouped continuous sum/avg models one contiguous track
      // (overlapping keys would truncate each other's stored pieces), so
      // those cases generate a single-key stream.
      size_t keys;
      if (grouped) {
        keys = RandomKeys(rng, options.workload, 2);
      } else if (fn == AggFn::kSum || fn == AggFn::kAvg) {
        keys = 1;
      } else {
        keys = RandomKeys(rng, options.workload, 1);
      }
      StreamWorkload ws = GenerateStreamWorkload(rng, "s", {"x"}, keys,
                                                 options.workload);
      AggregateSpec as;
      as.fn = fn;
      as.attribute = "x";
      as.window_seconds = PickWindow(rng);
      as.slide_seconds = PickSlide(rng);
      as.per_key = grouped;
      desc << " " << AggFnToString(fn) << "(x) w=" << as.window_seconds
           << " slide=" << as.slide_seconds << " keys=" << keys;
      out.sink.kind = SinkInfo::Kind::kAggregateSeries;
      out.sink.fn = fn;
      out.sink.window_seconds = as.window_seconds;
      out.sink.slide_seconds = as.slide_seconds;
      out.sink.per_key = grouped;
      out.sink.value_attribute = as.output_attribute;
      out.sink.key_field = grouped ? "group" : "";
      PULSE_RETURN_IF_ERROR(out.spec.AddStream(MakeStreamSpec(ws)));
      QuerySpec::Input cur = QuerySpec::Input::Node(out.spec.AddAggregate(
          "agg", QuerySpec::Input::Stream("s"), std::move(as)));
      out.workloads.push_back(std::move(ws));
      // HAVING over the aggregate. Excluded for sum: the discrete sum
      // (sample count scaled) and continuous sum (time integral) live on
      // different scales, so a shared threshold is meaningless there.
      if (fn != AggFn::kSum && rng.Bernoulli(0.4)) {
        out.sink.having = true;
        out.sink.having_op = RandomIneqOp(rng);
        out.sink.having_threshold = rng.Uniform(-0.6, 0.6) * scale;
        FilterSpec fs{Predicate::Comparison(ComparisonTerm::Simple(
            AttrRef::Left(out.sink.value_attribute), out.sink.having_op,
            Operand::Constant(out.sink.having_threshold)))};
        desc << " having[" << fs.predicate.ToString() << "]";
        out.spec.AddFilter("having", cur, std::move(fs));
      }
      break;
    }

    case PlanArchetype::kEpochMark: {
      // Boundary splitting must be answer-invariant: the discrete plan
      // gains an epoch column (ignored by the matcher), the Pulse plan
      // splits segments at epoch boundaries — sampled values must be
      // byte-identical to the unsplit stream's.
      WorkloadGenOptions wo = options.workload;
      wo.telemetry = true;
      StreamWorkload ws = GenerateStreamWorkload(
          rng, "s", {"x", "y"}, RandomKeys(rng, options.workload, 1), wo);
      PULSE_RETURN_IF_ERROR(out.spec.AddStream(MakeStreamSpec(ws)));
      EpochSpec es;
      es.epoch_seconds = PickEpoch(rng);
      desc << " epoch=" << es.epoch_seconds;
      out.spec.AddEpoch("epoch", QuerySpec::Input::Stream("s"), es);
      out.workloads.push_back(std::move(ws));
      out.sink.kind = SinkInfo::Kind::kPointwise;
      out.sink.key_field = "id";
      break;
    }

    case PlanArchetype::kEpochDistinct: {
      // The Sonata detection shape: epoch -> filter -> distinct over a
      // bursty telemetry stream. The filter is a single atom (attr cmp
      // const) so the matcher can derive ground-truth region entries
      // from the workload tracks directly.
      WorkloadGenOptions wo = options.workload;
      wo.telemetry = true;
      StreamWorkload ws = GenerateStreamWorkload(
          rng, "s", {"x", "y"}, RandomKeys(rng, options.workload, 2), wo);
      PULSE_RETURN_IF_ERROR(out.spec.AddStream(MakeStreamSpec(ws)));

      EpochSpec es;
      es.epoch_seconds = PickEpoch(rng);
      const QuerySpec::NodeId en =
          out.spec.AddEpoch("epoch", QuerySpec::Input::Stream("s"), es);

      out.sink.kind = SinkInfo::Kind::kDistinctSeries;
      out.sink.key_field = "id";
      out.sink.epoch_seconds = es.epoch_seconds;
      out.sink.distinct_attribute = Pick(rng, ws.attributes);
      out.sink.distinct_op = RandomIneqOp(rng);
      // Between the telemetry baseline (< 0.15 * scale) and burst
      // (> 0.5 * scale) bands: kGt/kGe detect bursts, kLt/kLe detect
      // quiet keys — both directions have non-trivial region entries.
      out.sink.distinct_threshold = rng.Uniform(0.2, 0.45) * scale;
      FilterSpec fs{Predicate::Comparison(ComparisonTerm::Simple(
          AttrRef::Left(out.sink.distinct_attribute), out.sink.distinct_op,
          Operand::Constant(out.sink.distinct_threshold)))};
      desc << " epoch=" << es.epoch_seconds << " detect["
           << fs.predicate.ToString() << "]";
      const QuerySpec::NodeId fn = out.spec.AddFilter(
          "detect", QuerySpec::Input::Node(en), std::move(fs));

      DistinctSpec ds;
      ds.epoch_seconds = es.epoch_seconds;
      out.spec.AddDistinct("distinct", QuerySpec::Input::Node(fn), ds);
      out.workloads.push_back(std::move(ws));
      break;
    }
  }

  out.description = desc.str();
  return out;
}

}  // namespace testing
}  // namespace pulse
