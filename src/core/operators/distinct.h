#ifndef PULSE_CORE_OPERATORS_DISTINCT_H_
#define PULSE_CORE_OPERATORS_DISTINCT_H_

#include <map>
#include <string>

#include "core/operators/pulse_operator.h"

namespace pulse {

/// Continuous-time realization of the per-epoch `distinct` operator, a
/// new equation form over models: for each (epoch, key) it emits the
/// *first* validity run of the key's model inside that epoch and
/// suppresses the rest. Its input is typically a PulseFilter output, so
/// a validity run means "the key's model satisfies the predicate"; the
/// emitted segment's range.lo is then the first instant the model enters
/// the predicate region during the epoch — the continuous analogue of
/// the first passing tuple the discrete EpochDistinct forwards.
///
/// Epoch splitting is self-contained (same tumbling [k*E, (k+1)*E)
/// grid as PulseEpoch) so the operator is correct whether or not a
/// PulseEpoch ran upstream. State is the latest emitted epoch per key:
/// segments arrive per key in range.lo order, so "first in epoch" is
/// exactly "epoch greater than the last emitted one" and memory stays
/// O(keys).
class PulseDistinct : public PulseOperator {
 public:
  PulseDistinct(std::string name, double epoch_seconds);

  Status Process(size_t port, const Segment& segment,
                 SegmentBatch* out) override;

  double epoch_seconds() const { return epoch_seconds_; }

 private:
  double epoch_seconds_;
  // Latest epoch a segment was emitted for, per key.
  std::map<Key, int64_t> last_emitted_;
};

}  // namespace pulse

#endif  // PULSE_CORE_OPERATORS_DISTINCT_H_
