# Empty compiler generated dependencies file for historical_whatif.
# This may be replaced when dependencies are built.
