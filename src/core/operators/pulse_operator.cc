#include "core/operators/pulse_operator.h"

namespace pulse {

Status PulseOperator::Flush(SegmentBatch* /*out*/) { return Status::OK(); }

Result<std::vector<AllocatedBound>> PulseOperator::InvertBound(
    const Segment& /*output*/, const std::string& /*attribute*/,
    double /*margin*/, const SplitHeuristic& /*split*/) const {
  return Status::Unimplemented("operator '" + name() +
                               "' does not support bound inversion");
}

}  // namespace pulse
