#include "math/batch_kernels.h"

#include <array>

#include "math/roots_internal.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <emmintrin.h>  // SSE2: x86-64 baseline, no extra flags needed
#define PULSE_BATCH_HAVE_SSE2 1
#endif

#if defined(__aarch64__)
#include <arm_neon.h>
#define PULSE_BATCH_HAVE_NEON 1
#endif

namespace pulse {
namespace batch_internal {

// ---------------------------------------------------------------------------
// Scalar reference tier: thin SoA loops over the roots.cc closed forms.
// Every vector tier must match these bit for bit; the unit contract for
// unused root slots (zeroed) lives here too.
// ---------------------------------------------------------------------------

void ScalarHorner(const double* const* c, size_t degree, const double* t,
                  double* out, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    // Pinned to Polynomial::Evaluate: acc starts at 0.0 so the top
    // coefficient passes through one acc * t + c step (matters at ±inf).
    double acc = 0.0;
    const double ti = t[i];
    for (size_t j = degree + 1; j-- > 0;) {
      acc = acc * ti + c[j][i];
    }
    out[i] = acc;
  }
}

void ScalarLinearRoots(const double* c0, const double* c1, double* r0,
                       size_t n) {
  for (size_t i = 0; i < n; ++i) {
    double r[1];
    roots_internal::LinearRoot(c0[i], c1[i], r);
    r0[i] = r[0];
  }
}

void ScalarQuadraticRoots(const double* c0, const double* c1,
                          const double* c2, double* r0, double* r1,
                          uint8_t* count, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    double r[2] = {0.0, 0.0};
    const int m = roots_internal::QuadraticRoots(c0[i], c1[i], c2[i], r);
    r0[i] = r[0];
    r1[i] = r[1];
    count[i] = static_cast<uint8_t>(m);
  }
}

void ScalarCubicRoots(const double* c0, const double* c1, const double* c2,
                      const double* c3, double* r0, double* r1, double* r2,
                      uint8_t* count, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    double r[3] = {0.0, 0.0, 0.0};
    const int m =
        roots_internal::CubicRoots(c0[i], c1[i], c2[i], c3[i], r);
    r0[i] = r[0];
    r1[i] = r[1];
    r2[i] = r[2];
    count[i] = static_cast<uint8_t>(m);
  }
}

namespace {

// Delegates the trailing lanes a vector kernel cannot fill to the scalar
// reference. `i` is the first unprocessed lane.
void HornerTail(const double* const* c, size_t degree, const double* t,
                double* out, size_t i, size_t n) {
  if (i >= n) return;
  std::array<const double*, 8> shifted;
  for (size_t j = 0; j <= degree; ++j) shifted[j] = c[j] + i;
  ScalarHorner(shifted.data(), degree, t + i, out + i, n - i);
}

}  // namespace

// ---------------------------------------------------------------------------
// SSE2 tier (x86-64 baseline, 2 lanes).
// ---------------------------------------------------------------------------

#if defined(PULSE_BATCH_HAVE_SSE2)
namespace {

inline __m128d Select2(__m128d mask, __m128d a, __m128d b) {
  return _mm_or_pd(_mm_and_pd(mask, a), _mm_andnot_pd(mask, b));
}

void Sse2Horner(const double* const* c, size_t degree, const double* t,
                double* out, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d ti = _mm_loadu_pd(t + i);
    __m128d acc = _mm_setzero_pd();
    for (size_t j = degree + 1; j-- > 0;) {
      acc = _mm_add_pd(_mm_mul_pd(acc, ti), _mm_loadu_pd(c[j] + i));
    }
    _mm_storeu_pd(out + i, acc);
  }
  HornerTail(c, degree, t, out, i, n);
}

void Sse2LinearRoots(const double* c0, const double* c1, double* r0,
                     size_t n) {
  const __m128d sign_mask = _mm_set1_pd(-0.0);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d neg_c0 = _mm_xor_pd(_mm_loadu_pd(c0 + i), sign_mask);
    _mm_storeu_pd(r0 + i, _mm_div_pd(neg_c0, _mm_loadu_pd(c1 + i)));
  }
  if (i < n) ScalarLinearRoots(c0 + i, c1 + i, r0 + i, n - i);
}

void Sse2QuadraticRoots(const double* c0, const double* c1,
                        const double* c2, double* r0, double* r1,
                        uint8_t* count, size_t n) {
  const __m128d zero = _mm_setzero_pd();
  const __m128d sign_mask = _mm_set1_pd(-0.0);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d a = _mm_loadu_pd(c2 + i);
    const __m128d b = _mm_loadu_pd(c1 + i);
    const __m128d c = _mm_loadu_pd(c0 + i);
    // disc = b * b - (4.0 * a) * c, in the scalar evaluation order.
    const __m128d disc = _mm_sub_pd(
        _mm_mul_pd(b, b),
        _mm_mul_pd(_mm_mul_pd(_mm_set1_pd(4.0), a), c));
    // Ordered compares: both masks false for NaN disc, exactly like the
    // scalar `disc < 0.0` / `disc == 0.0` branches.
    const __m128d m_neg = _mm_cmplt_pd(disc, zero);
    const __m128d m_eq = _mm_cmpeq_pd(disc, zero);
    // copysign(sqrt(disc), b) as bit ops (exact).
    const __m128d sq = _mm_sqrt_pd(disc);
    const __m128d cs =
        _mm_or_pd(_mm_andnot_pd(sign_mask, sq), _mm_and_pd(sign_mask, b));
    const __m128d q = _mm_mul_pd(_mm_set1_pd(-0.5), _mm_add_pd(b, cs));
    const __m128d r0_gen = _mm_div_pd(q, a);
    // q == 0.0 selects the scalar else-branch value 0.0 (andnot zeroes
    // the lane); NaN q compares false and keeps c / q, like `q != 0.0`.
    const __m128d q_zero = _mm_cmpeq_pd(q, zero);
    const __m128d r1_gen = _mm_andnot_pd(q_zero, _mm_div_pd(c, q));
    const __m128d r0_eq =
        _mm_div_pd(_mm_xor_pd(b, sign_mask),
                   _mm_mul_pd(_mm_set1_pd(2.0), a));
    __m128d r0v = Select2(m_eq, r0_eq, r0_gen);
    r0v = _mm_andnot_pd(m_neg, r0v);
    const __m128d r1v = _mm_andnot_pd(_mm_or_pd(m_neg, m_eq), r1_gen);
    _mm_storeu_pd(r0 + i, r0v);
    _mm_storeu_pd(r1 + i, r1v);
    const int neg_mask = _mm_movemask_pd(m_neg);
    const int eq_mask = _mm_movemask_pd(m_eq);
    for (int lane = 0; lane < 2; ++lane) {
      count[i + lane] = ((neg_mask >> lane) & 1)
                            ? 0
                            : (((eq_mask >> lane) & 1) ? 1 : 2);
    }
  }
  if (i < n) {
    ScalarQuadraticRoots(c0 + i, c1 + i, c2 + i, r0 + i, r1 + i, count + i,
                         n - i);
  }
}

}  // namespace
#endif  // PULSE_BATCH_HAVE_SSE2

// ---------------------------------------------------------------------------
// NEON tier (aarch64 baseline, 2 lanes).
// ---------------------------------------------------------------------------

#if defined(PULSE_BATCH_HAVE_NEON)
namespace {

inline float64x2_t AndNotF64(uint64x2_t mask, float64x2_t v) {
  return vreinterpretq_f64_u64(vbicq_u64(vreinterpretq_u64_f64(v), mask));
}

void NeonHorner(const double* const* c, size_t degree, const double* t,
                double* out, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t ti = vld1q_f64(t + i);
    float64x2_t acc = vdupq_n_f64(0.0);
    for (size_t j = degree + 1; j-- > 0;) {
      // Separate mul + add; vfmaq would fuse and break bit-identity.
      acc = vaddq_f64(vmulq_f64(acc, ti), vld1q_f64(c[j] + i));
    }
    vst1q_f64(out + i, acc);
  }
  HornerTail(c, degree, t, out, i, n);
}

void NeonLinearRoots(const double* c0, const double* c1, double* r0,
                     size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(r0 + i,
              vdivq_f64(vnegq_f64(vld1q_f64(c0 + i)), vld1q_f64(c1 + i)));
  }
  if (i < n) ScalarLinearRoots(c0 + i, c1 + i, r0 + i, n - i);
}

void NeonQuadraticRoots(const double* c0, const double* c1,
                        const double* c2, double* r0, double* r1,
                        uint8_t* count, size_t n) {
  const float64x2_t zero = vdupq_n_f64(0.0);
  const uint64x2_t sign_mask = vdupq_n_u64(0x8000000000000000ull);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t a = vld1q_f64(c2 + i);
    const float64x2_t b = vld1q_f64(c1 + i);
    const float64x2_t c = vld1q_f64(c0 + i);
    const float64x2_t disc = vsubq_f64(
        vmulq_f64(b, b), vmulq_f64(vmulq_f64(vdupq_n_f64(4.0), a), c));
    const uint64x2_t m_neg = vcltq_f64(disc, zero);
    const uint64x2_t m_eq = vceqq_f64(disc, zero);
    const float64x2_t sq = vsqrtq_f64(disc);
    // copysign via bit-select of the sign bit from b.
    const float64x2_t cs = vbslq_f64(sign_mask, b, sq);
    const float64x2_t q = vmulq_f64(vdupq_n_f64(-0.5), vaddq_f64(b, cs));
    const float64x2_t r0_gen = vdivq_f64(q, a);
    const uint64x2_t q_zero = vceqq_f64(q, zero);
    const float64x2_t r1_gen = AndNotF64(q_zero, vdivq_f64(c, q));
    const float64x2_t r0_eq =
        vdivq_f64(vnegq_f64(b), vmulq_f64(vdupq_n_f64(2.0), a));
    float64x2_t r0v = vbslq_f64(m_eq, r0_eq, r0_gen);
    r0v = AndNotF64(m_neg, r0v);
    const float64x2_t r1v = AndNotF64(vorrq_u64(m_neg, m_eq), r1_gen);
    vst1q_f64(r0 + i, r0v);
    vst1q_f64(r1 + i, r1v);
    const uint64_t neg0 = vgetq_lane_u64(m_neg, 0);
    const uint64_t neg1 = vgetq_lane_u64(m_neg, 1);
    const uint64_t eq0 = vgetq_lane_u64(m_eq, 0);
    const uint64_t eq1 = vgetq_lane_u64(m_eq, 1);
    count[i] = neg0 ? 0 : (eq0 ? 1 : 2);
    count[i + 1] = neg1 ? 0 : (eq1 ? 1 : 2);
  }
  if (i < n) {
    ScalarQuadraticRoots(c0 + i, c1 + i, c2 + i, r0 + i, r1 + i, count + i,
                         n - i);
  }
}

}  // namespace
#endif  // PULSE_BATCH_HAVE_NEON

}  // namespace batch_internal

namespace {

const BatchKernels kScalarKernels = {
    "scalar",
    &batch_internal::ScalarHorner,
    &batch_internal::ScalarLinearRoots,
    &batch_internal::ScalarQuadraticRoots,
    &batch_internal::ScalarCubicRoots,
};

#if defined(PULSE_BATCH_HAVE_SSE2)
const BatchKernels kSse2Kernels = {
    "sse2",
    &batch_internal::Sse2Horner,
    &batch_internal::Sse2LinearRoots,
    &batch_internal::Sse2QuadraticRoots,
    &batch_internal::ScalarCubicRoots,  // lane-scalar: libm transcendentals
};
#endif

#if defined(PULSE_BATCH_HAVE_NEON)
const BatchKernels kNeonKernels = {
    "neon",
    &batch_internal::NeonHorner,
    &batch_internal::NeonLinearRoots,
    &batch_internal::NeonQuadraticRoots,
    &batch_internal::ScalarCubicRoots,  // lane-scalar: libm transcendentals
};
#endif

}  // namespace

const BatchKernels& ScalarBatchKernels() { return kScalarKernels; }

const BatchKernels& BatchKernelsFor(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx2: {
      const BatchKernels* avx2 = batch_internal::Avx2BatchKernelsOrNull();
      if (avx2 != nullptr) return *avx2;
      return BatchKernelsFor(SimdLevel::kSse2);
    }
    case SimdLevel::kSse2:
#if defined(PULSE_BATCH_HAVE_SSE2)
      return kSse2Kernels;
#else
      return kScalarKernels;
#endif
    case SimdLevel::kNeon:
#if defined(PULSE_BATCH_HAVE_NEON)
      return kNeonKernels;
#else
      return kScalarKernels;
#endif
    case SimdLevel::kScalar:
      return kScalarKernels;
  }
  return kScalarKernels;
}

const BatchKernels& ActiveBatchKernels() {
  return BatchKernelsFor(ActiveSimdLevel());
}

}  // namespace pulse
