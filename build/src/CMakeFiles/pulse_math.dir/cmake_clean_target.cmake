file(REMOVE_RECURSE
  "libpulse_math.a"
)
