#ifndef PULSE_CORE_QUERY_H_
#define PULSE_CORE_QUERY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/operators/map.h"
#include "core/predicate.h"
#include "engine/aggregate.h"
#include "engine/schema.h"
#include "util/result.h"

namespace pulse {

/// Declarative model specification attached to a stream (the paper's
/// MODEL clause, Section II-B): a modeled attribute is a polynomial in t
/// whose coefficients come from other attributes of the same tuple. E.g.
///   MODEL A.x = A.x + A.v t   =>   {"x", {"x", "v"}}
/// (the self-reference is fine: numerical models are built from actual
/// input tuples where all coefficient attributes are known).
struct ModelClause {
  std::string modeled_attribute;
  /// Tuple fields providing coefficients c0, c1, ... (degree = size - 1).
  std::vector<std::string> coefficient_fields;
};

/// An input stream's declaration: schema, key attribute, and models.
struct StreamSpec {
  std::string name;
  std::shared_ptr<const Schema> schema;
  /// The key attribute (discrete entity id; int64 field).
  std::string key_field;
  std::vector<ModelClause> models;
  /// Predictive segment validity horizon (seconds): a model built from a
  /// tuple at time t is assumed valid on [t, t + horizon).
  double segment_horizon = 1.0;
};

/// Logical operators of a continuous query. One spec drives both plan
/// builders: the discrete baseline and the transformed Pulse plan
/// (Section III-C: operator-by-operator transformation).
struct FilterSpec {
  Predicate predicate;
};

struct JoinSpec {
  Predicate predicate;
  double window_seconds = 1.0;
  /// Equi-join on the key attribute (e.g. "S.Symbol = L.Symbol").
  bool match_keys = false;
  /// Self-join guard (e.g. "R.id <> S.id").
  bool require_distinct_keys = false;
  std::string left_prefix = "left.";
  std::string right_prefix = "right.";
};

/// Derived-attribute projection (paper's select-list expressions, e.g.
/// "S.ap - L.ap as diff").
struct MapSpec {
  std::vector<ComputedAttr> outputs;
  /// Keep the input attributes alongside the computed ones.
  bool keep_inputs = true;
};

struct AggregateSpec {
  AggFn fn = AggFn::kAvg;
  /// Input attribute aggregated.
  std::string attribute;
  std::string output_attribute = "agg";
  double window_seconds = 1.0;
  double slide_seconds = 1.0;
  /// Aggregate per entity key (GROUP BY key) rather than across keys.
  bool per_key = false;
};

/// Tumbling epoch marker (the Sonata-style `epoch` operator): time is
/// partitioned into half-open epochs [k*E, (k+1)*E) with origin 0. The
/// discrete realization appends an int64 `epoch` column (floor(t / E));
/// the Pulse realization splits every segment at epoch boundaries so no
/// output validity range straddles an epoch — downstream per-epoch state
/// (distinct) then resets exactly at the boundary instant, which belongs
/// to the *next* epoch.
struct EpochSpec {
  double epoch_seconds = 1.0;
  /// Name of the appended discrete epoch-index column.
  std::string output_attribute = "epoch";
};

/// Per-epoch key dedup (the Sonata-style `distinct` operator). The
/// discrete realization emits the first tuple per (epoch, key) and drops
/// the rest. The Pulse realization is a new equation form: per (epoch,
/// key) it emits the first validity run of the key's model — the output
/// segment's range.lo is the first instant the model enters the upstream
/// predicate region within that epoch — and suppresses every later run.
struct DistinctSpec {
  double epoch_seconds = 1.0;
};

/// A logical query: a DAG whose leaves are named streams. Node ids are
/// dense indices.
class QuerySpec {
 public:
  using NodeId = size_t;

  enum class OpKind { kFilter, kJoin, kAggregate, kMap, kEpoch, kDistinct };

  /// Reference to a node input: either an external stream or another node.
  struct Input {
    bool is_stream = false;
    std::string stream;
    NodeId node = 0;

    static Input Stream(std::string name) {
      Input in;
      in.is_stream = true;
      in.stream = std::move(name);
      return in;
    }
    static Input Node(NodeId id) {
      Input in;
      in.is_stream = false;
      in.node = id;
      return in;
    }
  };

  struct Node {
    OpKind kind = OpKind::kFilter;
    std::string name;
    std::vector<Input> inputs;
    // Exactly one of these is meaningful, per kind.
    std::shared_ptr<FilterSpec> filter;
    std::shared_ptr<JoinSpec> join;
    std::shared_ptr<AggregateSpec> aggregate;
    std::shared_ptr<MapSpec> map;
    std::shared_ptr<EpochSpec> epoch;
    std::shared_ptr<DistinctSpec> distinct;
  };

  /// Registers a source stream; name must be unique.
  Status AddStream(StreamSpec spec);

  NodeId AddFilter(std::string name, Input input, FilterSpec spec);
  NodeId AddJoin(std::string name, Input left, Input right, JoinSpec spec);
  NodeId AddAggregate(std::string name, Input input, AggregateSpec spec);
  NodeId AddMap(std::string name, Input input, MapSpec spec);
  NodeId AddEpoch(std::string name, Input input, EpochSpec spec);
  NodeId AddDistinct(std::string name, Input input, DistinctSpec spec);

  size_t num_nodes() const { return nodes_.size(); }
  const Node& node(NodeId id) const { return nodes_[id]; }
  const std::vector<Node>& nodes() const { return nodes_; }

  /// Stream declaration by name; NotFound when unknown.
  Result<StreamSpec> stream(const std::string& name) const;
  const std::map<std::string, StreamSpec>& streams() const {
    return streams_;
  }

  /// Nodes no other node consumes (query outputs).
  std::vector<NodeId> SinkNodes() const;

 private:
  std::vector<Node> nodes_;
  std::map<std::string, StreamSpec> streams_;
};

}  // namespace pulse

#endif  // PULSE_CORE_QUERY_H_
