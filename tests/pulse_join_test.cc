#include "core/operators/join.h"

#include <cmath>

#include <gtest/gtest.h>

namespace pulse {
namespace {

Segment LinearSegment(Key key, double lo, double hi, double c0, double c1,
                      const std::string& attr = "x") {
  Segment s(key, Interval::ClosedOpen(lo, hi));
  s.id = NextSegmentId();
  s.set_attribute(attr, Polynomial({c0, c1}));
  return s;
}

Predicate CrossPredicate(CmpOp op) {
  // left.x R right.x.
  return Predicate::Comparison(ComparisonTerm::Simple(
      AttrRef::Left("x"), op, Operand::Attribute(AttrRef::Right("x"))));
}

PulseJoinOptions Opts(double window = 100.0) {
  PulseJoinOptions o;
  o.window_seconds = window;
  return o;
}

TEST(CombineKeys, RoundTrip) {
  Key combined = CombineKeys(12345, 67890);
  Key l = 0, r = 0;
  SplitKeys(combined, &l, &r);
  EXPECT_EQ(l, 12345);
  EXPECT_EQ(r, 67890);
}

TEST(PulseJoin, EqualityIntersectionPoint) {
  // left.x = t, right.x = 10 - t: equal at t = 5 (paper's equi-join
  // intersection-point semantics).
  PulseJoin j("j", CrossPredicate(CmpOp::kEq), Opts());
  SegmentBatch out;
  ASSERT_TRUE(
      j.Process(0, LinearSegment(1, 0.0, 10.0, 0.0, 1.0), &out).ok());
  EXPECT_TRUE(out.empty());  // nothing on the other side yet
  ASSERT_TRUE(
      j.Process(1, LinearSegment(2, 0.0, 10.0, 10.0, -1.0), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].range.IsPoint());
  EXPECT_NEAR(out[0].range.lo, 5.0, 1e-9);
  // Joined segment carries both sides' models, prefixed.
  EXPECT_TRUE(out[0].has_attribute("left.x"));
  EXPECT_TRUE(out[0].has_attribute("right.x"));
  EXPECT_EQ(out[0].key, CombineKeys(1, 2));
}

TEST(PulseJoin, InequalityRangeOutput) {
  // left.x < right.x: t < 10 - t -> t < 5.
  PulseJoin j("j", CrossPredicate(CmpOp::kLt), Opts());
  SegmentBatch out;
  ASSERT_TRUE(
      j.Process(0, LinearSegment(1, 0.0, 10.0, 0.0, 1.0), &out).ok());
  ASSERT_TRUE(
      j.Process(1, LinearSegment(2, 0.0, 10.0, 10.0, -1.0), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].range.lo, 0.0);
  EXPECT_NEAR(out[0].range.hi, 5.0, 1e-9);
}

TEST(PulseJoin, OnlyOverlappingSegmentsSolve) {
  // Segments that do not overlap in time never produce output (equi-join
  // along the time dimension).
  PulseJoin j("j", CrossPredicate(CmpOp::kLt), Opts());
  SegmentBatch out;
  ASSERT_TRUE(
      j.Process(0, LinearSegment(1, 0.0, 5.0, 0.0, 0.0), &out).ok());
  ASSERT_TRUE(
      j.Process(1, LinearSegment(2, 5.0, 10.0, 100.0, 0.0), &out).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(j.metrics().solves, 0u);
}

TEST(PulseJoin, SolutionClippedToOverlap) {
  // Overlap is [4, 6); predicate holds on t < 5: output [4, 5).
  PulseJoin j("j", CrossPredicate(CmpOp::kLt), Opts());
  SegmentBatch out;
  ASSERT_TRUE(
      j.Process(0, LinearSegment(1, 0.0, 6.0, 0.0, 1.0), &out).ok());
  ASSERT_TRUE(
      j.Process(1, LinearSegment(2, 4.0, 10.0, 10.0, -1.0), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].range.lo, 4.0);
  EXPECT_NEAR(out[0].range.hi, 5.0, 1e-9);
}

TEST(PulseJoin, MatchKeysOnlyJoinsSameKey) {
  PulseJoinOptions o = Opts();
  o.match_keys = true;
  PulseJoin j("j", CrossPredicate(CmpOp::kLe), o);
  SegmentBatch out;
  ASSERT_TRUE(
      j.Process(0, LinearSegment(1, 0.0, 10.0, 0.0, 0.0), &out).ok());
  ASSERT_TRUE(
      j.Process(1, LinearSegment(2, 0.0, 10.0, 1.0, 0.0), &out).ok());
  EXPECT_TRUE(out.empty());  // different keys
  ASSERT_TRUE(
      j.Process(1, LinearSegment(1, 0.0, 10.0, 1.0, 0.0), &out).ok());
  EXPECT_EQ(out.size(), 1u);
}

TEST(PulseJoin, DistinctKeysGuardsSelfJoin) {
  PulseJoinOptions o = Opts();
  o.require_distinct_keys = true;
  PulseJoin j("j", CrossPredicate(CmpOp::kLe), o);
  SegmentBatch out;
  ASSERT_TRUE(
      j.Process(0, LinearSegment(7, 0.0, 10.0, 0.0, 0.0), &out).ok());
  ASSERT_TRUE(
      j.Process(1, LinearSegment(7, 0.0, 10.0, 1.0, 0.0), &out).ok());
  EXPECT_TRUE(out.empty());  // same entity
}

TEST(PulseJoin, WindowExpiresOldSegments) {
  PulseJoin j("j", CrossPredicate(CmpOp::kLe), Opts(1.0));
  SegmentBatch out;
  ASSERT_TRUE(
      j.Process(0, LinearSegment(1, 0.0, 0.5, 0.0, 0.0), &out).ok());
  EXPECT_EQ(j.left_buffer_size(), 1u);
  // A much later arrival expires the stale left segment.
  ASSERT_TRUE(
      j.Process(1, LinearSegment(2, 10.0, 10.5, 1.0, 0.0), &out).ok());
  EXPECT_EQ(j.left_buffer_size(), 0u);
  EXPECT_TRUE(out.empty());
}

TEST(PulseJoin, UnmodeledAndKeysCarriedThrough) {
  PulseJoin j("j", CrossPredicate(CmpOp::kLe), Opts());
  Segment l = LinearSegment(3, 0.0, 10.0, 0.0, 0.0);
  l.unmodeled["flag"] = 1.0;
  SegmentBatch out;
  ASSERT_TRUE(j.Process(0, l, &out).ok());
  ASSERT_TRUE(
      j.Process(1, LinearSegment(4, 0.0, 10.0, 1.0, 0.0), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].unmodeled.at("left.flag"), 1.0);
  EXPECT_DOUBLE_EQ(out[0].unmodeled.at("left.key"), 3.0);
  EXPECT_DOUBLE_EQ(out[0].unmodeled.at("right.key"), 4.0);
}

TEST(PulseJoin, LineageRecordsBothSides) {
  PulseJoin j("j", CrossPredicate(CmpOp::kLe), Opts());
  Segment l = LinearSegment(1, 0.0, 10.0, 0.0, 0.0);
  Segment r = LinearSegment(2, 0.0, 10.0, 1.0, 0.0);
  SegmentBatch out;
  ASSERT_TRUE(j.Process(0, l, &out).ok());
  ASSERT_TRUE(j.Process(1, r, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  const std::vector<LineageEntry>* causes = j.lineage().Lookup(out[0].id);
  ASSERT_NE(causes, nullptr);
  ASSERT_EQ(causes->size(), 2u);
  EXPECT_EQ((*causes)[0].port, 0u);
  EXPECT_EQ((*causes)[0].input.id, l.id);
  EXPECT_EQ((*causes)[1].port, 1u);
  EXPECT_EQ((*causes)[1].input.id, r.id);
}

TEST(PulseJoin, InvertBoundTranslatesPrefixedAttribute) {
  PulseJoin j("j", CrossPredicate(CmpOp::kLe), Opts());
  SegmentBatch out;
  ASSERT_TRUE(
      j.Process(0, LinearSegment(1, 0.0, 10.0, 0.0, 1.0), &out).ok());
  ASSERT_TRUE(
      j.Process(1, LinearSegment(2, 0.0, 10.0, 20.0, -1.0), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EquiSplit split;
  Result<std::vector<AllocatedBound>> allocs =
      j.InvertBound(out[0], "left.x", 0.4, split);
  ASSERT_TRUE(allocs.ok());
  // Dependencies: (0, x) translation and (0, x), (1, x) inferences ->
  // deduped {(0,x), (1,x)}: both sides receive margins summing <= 0.4.
  double total = 0.0;
  bool saw_left = false, saw_right = false;
  for (const AllocatedBound& ab : *allocs) {
    total += ab.margin;
    if (ab.port == 0) saw_left = true;
    if (ab.port == 1) saw_right = true;
    EXPECT_EQ(ab.attribute, "x");
  }
  EXPECT_TRUE(saw_left);
  EXPECT_TRUE(saw_right);
  EXPECT_LE(total, 0.4 + 1e-12);
}

TEST(PulseJoin, InvertBoundRejectsUnprefixedAttribute) {
  PulseJoin j("j", CrossPredicate(CmpOp::kLe), Opts());
  SegmentBatch out;
  ASSERT_TRUE(
      j.Process(0, LinearSegment(1, 0.0, 10.0, 0.0, 0.0), &out).ok());
  ASSERT_TRUE(
      j.Process(1, LinearSegment(2, 0.0, 10.0, 1.0, 0.0), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EquiSplit split;
  EXPECT_FALSE(j.InvertBound(out[0], "x", 0.1, split).ok());
}

TEST(PulseJoin, ComputeSlackNearestPartner) {
  // Stored right segment at constant 3; probing left at constant 1 with
  // predicate left.x = right.x: slack = 2.
  PulseJoin j("j", CrossPredicate(CmpOp::kEq), Opts());
  SegmentBatch out;
  ASSERT_TRUE(
      j.Process(1, LinearSegment(2, 0.0, 10.0, 3.0, 0.0), &out).ok());
  Result<double> slack =
      j.ComputeSlack(0, LinearSegment(1, 0.0, 10.0, 1.0, 0.0));
  ASSERT_TRUE(slack.ok());
  EXPECT_NEAR(*slack, 2.0, 1e-9);
}

TEST(PulseJoin, ComputeSlackInfiniteWithoutPartners) {
  PulseJoin j("j", CrossPredicate(CmpOp::kEq), Opts());
  Result<double> slack =
      j.ComputeSlack(0, LinearSegment(1, 0.0, 10.0, 1.0, 0.0));
  ASSERT_TRUE(slack.ok());
  EXPECT_TRUE(std::isinf(*slack));
}

TEST(PulseJoin, DistanceJoinCollisionQuery) {
  // The paper's motivating collision query: two objects approach and
  // cross within distance c on a computable interval.
  Predicate prox = Predicate::Comparison(ComparisonTerm::Distance2(
      AttrRef::Left("x"), AttrRef::Left("y"), AttrRef::Right("x"),
      AttrRef::Right("y"), CmpOp::kLt, 2.0));
  PulseJoinOptions o = Opts();
  o.require_distinct_keys = true;
  PulseJoin j("j", prox, o);
  // Object 1 moves right along y=0: x = t. Object 2 moves left: x = 10-t.
  Segment a(1, Interval::ClosedOpen(0.0, 10.0));
  a.id = NextSegmentId();
  a.set_attribute("x", Polynomial({0.0, 1.0}));
  a.set_attribute("y", Polynomial());
  Segment b(2, Interval::ClosedOpen(0.0, 10.0));
  b.id = NextSegmentId();
  b.set_attribute("x", Polynomial({10.0, -1.0}));
  b.set_attribute("y", Polynomial());
  SegmentBatch out;
  ASSERT_TRUE(j.Process(0, a, &out).ok());
  ASSERT_TRUE(j.Process(1, b, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  // |2t - 10| < 2 -> t in (4, 6).
  EXPECT_NEAR(out[0].range.lo, 4.0, 1e-8);
  EXPECT_NEAR(out[0].range.hi, 6.0, 1e-8);
}

}  // namespace
}  // namespace pulse
