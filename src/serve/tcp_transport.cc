#include "serve/tcp_transport.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

namespace pulse {
namespace serve {
namespace {

Status Errno(const char* what) {
  return Status::IoError(std::string(what) + ": " +
                         std::strerror(errno));
}

class TcpTransport : public Transport {
 public:
  explicit TcpTransport(int fd) : fd_(fd) {}
  ~TcpTransport() override {
    Close();
    // The descriptor is released only here: the owner destroys the
    // transport after joining every thread that calls Read()/Write(),
    // so nothing can race the close or land on a recycled fd.
    ::close(fd_);
  }

  Result<size_t> Read(char* buf, size_t n) override {
    for (;;) {
      const ssize_t r = ::recv(fd_, buf, n, 0);
      if (r >= 0) return static_cast<size_t>(r);
      if (errno == EINTR) continue;
      // A concurrent Close() makes the fd invalid mid-recv; report it
      // as a clean EOF rather than a spurious error.
      if (closed_.load()) return size_t{0};
      return Errno("recv");
    }
  }

  Status Write(const char* data, size_t n) override {
    size_t sent = 0;
    while (sent < n) {
      const ssize_t w = ::send(fd_, data + sent, n - sent, MSG_NOSIGNAL);
      if (w >= 0) {
        sent += static_cast<size_t>(w);
        continue;
      }
      if (errno == EINTR) continue;
      if (closed_.load()) return Status::IoError("transport closed");
      return Errno("send");
    }
    return Status::OK();
  }

  void Close() override {
    if (closed_.exchange(true)) return;
    // shutdown() wakes a reader blocked in recv() with EOF and makes
    // later send()s fail; the fd stays open until the destructor so a
    // concurrent Read()/Write() never touches a closed (and possibly
    // recycled) descriptor.
    ::shutdown(fd_, SHUT_RDWR);
  }

 private:
  const int fd_;
  std::atomic<bool> closed_{false};
};

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

Result<std::unique_ptr<TcpListener>> TcpListener::Listen(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status s = Errno("bind");
    ::close(fd);
    return s;
  }
  if (::listen(fd, 64) != 0) {
    const Status s = Errno("listen");
    ::close(fd);
    return s;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const Status s = Errno("getsockname");
    ::close(fd);
    return s;
  }
  return std::unique_ptr<TcpListener>(
      new TcpListener(fd, ntohs(addr.sin_port)));
}

TcpListener::~TcpListener() {
  Close();
  ::close(fd_);
}

Result<std::unique_ptr<Transport>> TcpListener::Accept() {
  for (;;) {
    const int cfd = ::accept(fd_, nullptr, nullptr);
    if (cfd >= 0) {
      SetNoDelay(cfd);
      return std::unique_ptr<Transport>(new TcpTransport(cfd));
    }
    if (errno == EINTR) continue;
    return Errno("accept");
  }
}

void TcpListener::Close() {
  if (closed_.exchange(true)) return;
  // Wakes a blocked accept() (it fails with EINVAL); the fd is
  // released in the destructor, after the accept thread is joined.
  ::shutdown(fd_, SHUT_RDWR);
}

Result<std::unique_ptr<Transport>> TcpConnect(const std::string& host,
                                              uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &res);
  if (rc != 0) {
    return Status::IoError("getaddrinfo " + host + ": " +
                           gai_strerror(rc));
  }
  Status last = Status::IoError("no addresses for " + host);
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      SetNoDelay(fd);
      ::freeaddrinfo(res);
      return std::unique_ptr<Transport>(new TcpTransport(fd));
    }
    last = Errno("connect");
    ::close(fd);
  }
  ::freeaddrinfo(res);
  return last;
}

}  // namespace serve
}  // namespace pulse
