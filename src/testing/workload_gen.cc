#include "testing/workload_gen.h"

#include <algorithm>
#include <cmath>

#include "core/validation/lineage.h"
#include "util/logging.h"

namespace pulse {
namespace testing {

namespace {

// Random polynomial in piece-local time: constant term O(value_scale),
// higher orders damped by 1/k^2 so values stay bounded over the piece
// (same shape the hand-rolled equivalence trials used).
Polynomial RandomPiecePolynomial(Rng& rng, size_t degree, double scale) {
  std::vector<double> coeffs;
  coeffs.push_back(rng.Uniform(-scale, scale));
  for (size_t k = 1; k <= degree; ++k) {
    const double damp = static_cast<double>(k * k);
    coeffs.push_back(rng.Uniform(-0.4 * scale, 0.4 * scale) / damp);
  }
  Polynomial p(std::move(coeffs));
  p.TrimInPlace();
  return p;
}

// Telemetry-mode piece polynomial (piece-local time): a near-zero
// baseline or a burst near value_scale, with a bounded linear drift.
// The two bands are separated by design (baseline < 0.15 * scale,
// burst > 0.5 * scale over typical piece lengths), so thresholds in
// between give clean region entries for epoch/distinct plans.
Polynomial TelemetryPiecePolynomial(Rng& rng, double scale,
                                    double burst_probability) {
  const bool burst = rng.Bernoulli(burst_probability);
  std::vector<double> coeffs;
  if (burst) {
    coeffs.push_back(rng.Uniform(0.6 * scale, scale));
    coeffs.push_back(rng.Uniform(-0.05 * scale, 0.05 * scale));
  } else {
    coeffs.push_back(rng.Uniform(0.0, 0.08 * scale));
    coeffs.push_back(rng.Uniform(-0.01 * scale, 0.01 * scale));
  }
  Polynomial p(std::move(coeffs));
  p.TrimInPlace();
  return p;
}

}  // namespace

const TrackPiece* KeyTrack::PieceAt(double t) const {
  for (const TrackPiece& piece : pieces) {
    if (piece.range.Contains(t)) return &piece;
  }
  return nullptr;
}

std::optional<double> KeyTrack::Value(const std::string& attr,
                                     double t) const {
  const TrackPiece* piece = PieceAt(t);
  if (piece == nullptr) return std::nullopt;
  auto it = piece->attrs.find(attr);
  if (it == piece->attrs.end()) return std::nullopt;
  return it->second.Evaluate(t);
}

std::vector<Segment> StreamWorkload::ToSegments() const {
  // (range.lo, key) order so replay pushes interleave the keys the way
  // a live stream would.
  std::vector<std::pair<const KeyTrack*, const TrackPiece*>> flat;
  for (const KeyTrack& track : tracks) {
    for (const TrackPiece& piece : track.pieces) {
      flat.push_back({&track, &piece});
    }
  }
  std::sort(flat.begin(), flat.end(), [](const auto& a, const auto& b) {
    if (a.second->range.lo != b.second->range.lo) {
      return a.second->range.lo < b.second->range.lo;
    }
    return a.first->key < b.first->key;
  });
  std::vector<Segment> out;
  out.reserve(flat.size());
  for (const auto& [track, piece] : flat) {
    Segment s(track->key, piece->range);
    s.id = NextSegmentId();
    for (const auto& [attr, poly] : piece->attrs) {
      s.set_attribute(attr, poly);
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<Tuple> StreamWorkload::ToTuples(double dt) const {
  PULSE_CHECK(dt > 0.0);
  std::vector<Tuple> out;
  for (double t = t_begin; t < t_end - 1e-12; t += dt) {
    for (const KeyTrack& track : tracks) {
      const TrackPiece* piece = track.PieceAt(t);
      if (piece == nullptr) continue;
      std::vector<pulse::Value> values;
      values.reserve(attributes.size() + 1);
      values.push_back(pulse::Value(static_cast<int64_t>(track.key)));
      bool complete = true;
      for (const std::string& attr : attributes) {
        auto it = piece->attrs.find(attr);
        if (it == piece->attrs.end()) {
          complete = false;
          break;
        }
        values.push_back(pulse::Value(it->second.Evaluate(t)));
      }
      if (complete) out.emplace_back(t, std::move(values));
    }
  }
  return out;
}

std::shared_ptr<const Schema> StreamWorkload::MakeSchema() const {
  std::vector<Field> fields;
  fields.push_back({"id", ValueType::kInt64});
  for (const std::string& attr : attributes) {
    fields.push_back({attr, ValueType::kDouble});
  }
  return Schema::Make(std::move(fields));
}

std::optional<double> StreamWorkload::Value(Key key, const std::string& attr,
                                           double t) const {
  for (const KeyTrack& track : tracks) {
    if (track.key == key) return track.Value(attr, t);
  }
  return std::nullopt;
}

std::optional<double> StreamWorkload::Envelope(const std::string& attr,
                                              double t, bool is_min) const {
  std::optional<double> best;
  for (const KeyTrack& track : tracks) {
    std::optional<double> v = track.Value(attr, t);
    if (!v.has_value()) continue;
    if (!best.has_value() || (is_min ? *v < *best : *v > *best)) best = v;
  }
  return best;
}

std::optional<double> StreamWorkload::Integral(Key key,
                                              const std::string& attr,
                                              double lo, double hi) const {
  if (hi <= lo) return 0.0;
  const KeyTrack* track = nullptr;
  for (const KeyTrack& t : tracks) {
    if (t.key == key) {
      track = &t;
      break;
    }
  }
  if (track == nullptr) return std::nullopt;
  double total = 0.0;
  bool any = false;
  for (const TrackPiece& piece : track->pieces) {
    const double a = std::max(lo, piece.range.lo);
    const double b = std::min(hi, piece.range.hi);
    if (b <= a) continue;
    auto it = piece.attrs.find(attr);
    if (it == piece.attrs.end()) return std::nullopt;
    const Polynomial anti = it->second.Antiderivative();
    total += anti.Evaluate(b) - anti.Evaluate(a);
    any = true;
  }
  if (!any) return std::nullopt;
  return total;
}

StreamWorkload GenerateStreamWorkload(Rng& rng, std::string name,
                                      std::vector<std::string> attributes,
                                      size_t num_keys,
                                      const WorkloadGenOptions& options) {
  PULSE_CHECK(num_keys >= 1);
  PULSE_CHECK(options.duration > 0.0);
  StreamWorkload ws;
  ws.name = std::move(name);
  ws.attributes = std::move(attributes);
  ws.t_begin = 0.0;
  ws.t_end = options.duration;
  for (size_t k = 0; k < num_keys; ++k) {
    KeyTrack track;
    track.key = static_cast<Key>(k + 1);
    const size_t pieces = static_cast<size_t>(rng.UniformInt(
        static_cast<int64_t>(options.min_pieces),
        static_cast<int64_t>(options.max_pieces)));
    // Random interior breakpoints partitioning [0, duration).
    std::vector<double> cuts{0.0, options.duration};
    for (size_t i = 1; i < pieces; ++i) {
      cuts.push_back(rng.Uniform(0.1 * options.duration,
                                 0.9 * options.duration));
    }
    std::sort(cuts.begin(), cuts.end());
    for (size_t i = 0; i + 1 < cuts.size(); ++i) {
      if (cuts[i + 1] - cuts[i] < 1e-9) continue;  // degenerate cut
      TrackPiece piece;
      piece.range = Interval::ClosedOpen(cuts[i], cuts[i + 1]);
      for (const std::string& attr : ws.attributes) {
        // Generate in piece-local time, then shift to absolute time
        // (exactly how SegmentModelBuilder publishes MODEL clauses).
        if (options.telemetry) {
          piece.attrs[attr] =
              TelemetryPiecePolynomial(rng, options.value_scale,
                                       options.burst_probability)
                  .Shift(-cuts[i]);
        } else {
          const size_t degree = static_cast<size_t>(rng.UniformInt(
              0, static_cast<int64_t>(options.max_degree)));
          piece.attrs[attr] =
              RandomPiecePolynomial(rng, degree, options.value_scale)
                  .Shift(-cuts[i]);
        }
      }
      track.pieces.push_back(std::move(piece));
    }
    ws.tracks.push_back(std::move(track));
  }
  // Sampled value/derivative bounds for the matcher's discretization
  // tolerances (exact sup not needed; a dense sample on a fixed lattice
  // is deterministic and close enough with headroom applied by callers).
  double vmax = 0.0;
  double dmax = 0.0;
  for (const KeyTrack& track : ws.tracks) {
    for (const TrackPiece& piece : track.pieces) {
      for (const auto& [attr, poly] : piece.attrs) {
        const Polynomial deriv = poly.Derivative();
        const double step =
            std::max(piece.range.Length() / 64.0, 1e-6);
        for (double t = piece.range.lo; t <= piece.range.hi;
             t += step) {
          vmax = std::max(vmax, std::fabs(poly.Evaluate(t)));
          dmax = std::max(dmax, std::fabs(deriv.Evaluate(t)));
        }
      }
    }
  }
  ws.value_bound = vmax;
  ws.derivative_bound = dmax;
  return ws;
}

}  // namespace testing
}  // namespace pulse
