#ifndef PULSE_UTIL_THREAD_POOL_H_
#define PULSE_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"

namespace pulse {

/// Fixed-size worker pool used to fan equation-system solving out across
/// cores (see docs/CONCURRENCY.md for the threading model).
///
/// `num_threads` is the *total* parallelism of a ParallelFor, counting the
/// calling thread: ThreadPool(1) spawns no workers and runs everything
/// inline, so a pool-equipped runtime with one thread behaves
/// byte-identically to the serial engine.
///
/// The pool never lets an exception escape a task: bodies are wrapped and
/// any throw is converted to Status::Internal (this library is
/// exception-free by convention, see util/status.h).
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism: worker threads plus the calling thread.
  size_t num_threads() const { return workers_.size() + 1; }

  /// Hands `fn` to a worker (runs inline when the pool has no workers).
  /// A thrown exception surfaces as Status::Internal in the future.
  std::future<Status> Submit(std::function<Status()> fn);

  /// Runs fn(i) for every i in [0, n), sharding index chunks across the
  /// workers with the caller participating. Blocks until every claimed
  /// chunk finished. Safe to call from inside a pool task: the caller
  /// helps drain the queue while waiting, so nested fan-outs cannot
  /// deadlock. The first error (lowest index among failing chunks that
  /// ran) is returned and stops further chunks from being claimed;
  /// chunks already running complete. fn must be safe to invoke
  /// concurrently from several threads for distinct i.
  Status ParallelFor(size_t n, const std::function<Status(size_t)>& fn);

  /// Cumulative count of tasks handed to workers (Submit calls plus
  /// ParallelFor helper shards). Feeds RuntimeStats::tasks_spawned.
  uint64_t tasks_spawned() const {
    return tasks_spawned_.load(std::memory_order_relaxed);
  }

  /// Cumulative nanoseconds summed over every ParallelFor call's full
  /// duration (serial fallbacks included). Nested or concurrent calls
  /// each contribute their whole span, so this behaves like CPU time
  /// and can exceed wall time. Feeds
  /// RuntimeStats::parallel_solve_cpu_ns.
  uint64_t parallel_cpu_ns() const {
    return parallel_cpu_ns_.load(std::memory_order_relaxed);
  }

  /// Wall-clock nanoseconds during which at least one ParallelFor was
  /// active (union of the busy intervals, tracked by an activity depth
  /// counter). Always <= parallel_cpu_ns(); the two are equal for
  /// strictly serial, non-overlapping calls. Feeds
  /// RuntimeStats::parallel_solve_wall_ns.
  uint64_t parallel_wall_ns() const {
    return parallel_wall_ns_.load(std::memory_order_relaxed);
  }

 private:
  void WorkerLoop();
  void Enqueue(std::function<void()> task);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::atomic<uint64_t> tasks_spawned_{0};
  std::atomic<uint64_t> parallel_cpu_ns_{0};
  std::atomic<uint64_t> parallel_wall_ns_{0};
  // Number of ParallelFor calls currently in flight (any thread); the
  // 0->1 edge stamps wall_start_, the 1->0 edge closes the interval.
  std::atomic<uint64_t> parallel_depth_{0};
  std::atomic<uint64_t> wall_start_ns_{0};
};

}  // namespace pulse

#endif  // PULSE_UTIL_THREAD_POOL_H_
