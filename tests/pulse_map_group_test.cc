#include <cmath>

#include <gtest/gtest.h>

#include "core/operators/aggregate.h"
#include "core/operators/group_by.h"
#include "core/operators/map.h"

namespace pulse {
namespace {

Segment Seg(Key key, double lo, double hi,
            std::vector<std::pair<std::string, Polynomial>> attrs) {
  Segment s(key, Interval::ClosedOpen(lo, hi));
  s.id = NextSegmentId();
  for (auto& [name, poly] : attrs) s.set_attribute(name, poly);
  return s;
}

TEST(ComputedAttr, DifferencePolynomialAndValues) {
  ComputedAttr diff = ComputedAttr::Difference("d", AttrRef::Left("a"),
                                               AttrRef::Left("b"));
  AttrResolver polys = [](const AttrRef& ref) -> Result<Polynomial> {
    return ref.name == "a" ? Polynomial({5.0, 1.0}) : Polynomial({2.0});
  };
  Result<Polynomial> p = diff.BuildPolynomial(polys);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p->Evaluate(1.0), 4.0, 1e-12);
  Predicate::ValueResolver values = [](const AttrRef& ref) -> Result<double> {
    return ref.name == "a" ? 5.0 : 2.0;
  };
  Result<double> v = diff.EvaluateValues(values);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(*v, 3.0);
}

TEST(ComputedAttr, Distance2Forms) {
  ComputedAttr d2 = ComputedAttr::Distance2(
      "dist2", AttrRef::Left("x1"), AttrRef::Left("y1"),
      AttrRef::Left("x2"), AttrRef::Left("y2"));
  Predicate::ValueResolver values = [](const AttrRef& ref) -> Result<double> {
    if (ref.name == "x1") return 0.0;
    if (ref.name == "y1") return 0.0;
    if (ref.name == "x2") return 3.0;
    return 4.0;
  };
  Result<double> v = d2.EvaluateValues(values);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(*v, 25.0);
}

TEST(PulseMap, ComputesDerivedModel) {
  PulseMap m("m", {ComputedAttr::Difference("d", AttrRef::Left("a"),
                                            AttrRef::Left("b"))});
  SegmentBatch out;
  ASSERT_TRUE(m.Process(0,
                        Seg(1, 0.0, 10.0,
                            {{"a", Polynomial({3.0, 1.0})},
                             {"b", Polynomial({1.0})}}),
                        &out)
                  .ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].has_attribute("d"));
  EXPECT_TRUE(out[0].has_attribute("a"));  // keep_inputs default
  EXPECT_NEAR(out[0].attribute("d")->Evaluate(2.0), 4.0, 1e-12);
}

TEST(PulseMap, DropInputsMode) {
  PulseMap m("m",
             {ComputedAttr::Difference("d", AttrRef::Left("a"),
                                       AttrRef::Left("b"))},
             /*keep_inputs=*/false);
  SegmentBatch out;
  ASSERT_TRUE(m.Process(0,
                        Seg(1, 0.0, 10.0,
                            {{"a", Polynomial({3.0})},
                             {"b", Polynomial({1.0})}}),
                        &out)
                  .ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(out[0].has_attribute("a"));
  EXPECT_TRUE(out[0].has_attribute("d"));
}

TEST(PulseMap, Distance2OnJoinedSegment) {
  PulseMap m("m", {ComputedAttr::Distance2(
                      "dist2", AttrRef::Left("s1.x"), AttrRef::Left("s1.y"),
                      AttrRef::Left("s2.x"), AttrRef::Left("s2.y"))});
  SegmentBatch out;
  ASSERT_TRUE(m.Process(0,
                        Seg(1, 0.0, 10.0,
                            {{"s1.x", Polynomial({0.0, 1.0})},
                             {"s1.y", Polynomial()},
                             {"s2.x", Polynomial({10.0, -1.0})},
                             {"s2.y", Polynomial()}}),
                        &out)
                  .ok());
  ASSERT_EQ(out.size(), 1u);
  // dist2(t) = (2t - 10)^2.
  EXPECT_NEAR(out[0].attribute("dist2")->Evaluate(5.0), 0.0, 1e-9);
  EXPECT_NEAR(out[0].attribute("dist2")->Evaluate(7.0), 16.0, 1e-9);
}

TEST(PulseMap, InvertBoundSplitsDifference) {
  PulseMap m("m", {ComputedAttr::Difference("d", AttrRef::Left("a"),
                                            AttrRef::Left("b"))});
  SegmentBatch out;
  ASSERT_TRUE(m.Process(0,
                        Seg(4, 0.0, 10.0,
                            {{"a", Polynomial({3.0, 1.0})},
                             {"b", Polynomial({1.0})}}),
                        &out)
                  .ok());
  EquiSplit split;
  Result<std::vector<AllocatedBound>> allocs =
      m.InvertBound(out[0], "d", 0.2, split);
  ASSERT_TRUE(allocs.ok());
  // Two dependencies, each at margin * 1/2 (Lipschitz share).
  ASSERT_EQ(allocs->size(), 2u);
  double total = 0.0;
  for (const AllocatedBound& ab : *allocs) total += ab.margin;
  EXPECT_NEAR(total, 0.2, 1e-12);
}

TEST(PulseMap, InvertBoundPassthroughAttribute) {
  PulseMap m("m", {ComputedAttr::Difference("d", AttrRef::Left("a"),
                                            AttrRef::Left("b"))});
  SegmentBatch out;
  ASSERT_TRUE(m.Process(0,
                        Seg(4, 0.0, 10.0,
                            {{"a", Polynomial({3.0})},
                             {"b", Polynomial({1.0})}}),
                        &out)
                  .ok());
  EquiSplit split;
  // "a" is not a computed output: passthrough identity.
  Result<std::vector<AllocatedBound>> allocs =
      m.InvertBound(out[0], "a", 0.3, split);
  ASSERT_TRUE(allocs.ok());
  ASSERT_EQ(allocs->size(), 1u);
  EXPECT_EQ((*allocs)[0].attribute, "a");
  EXPECT_NEAR((*allocs)[0].margin, 0.3, 1e-12);
}

PulseGroupBy::InnerFactory MinFactory(double window = 100.0) {
  return [window](Key) -> Result<std::unique_ptr<PulseOperator>> {
    PulseAggregateOptions o;
    o.fn = AggFn::kMin;
    o.input_attribute = "v";
    o.window_seconds = window;
    return MakePulseAggregate("inner", o);
  };
}

TEST(PulseGroupBy, RoutesByKeyAndRekeysOutput) {
  PulseGroupBy g("g", MinFactory());
  SegmentBatch out;
  Segment a = Seg(1, 0.0, 10.0, {{"v", Polynomial({5.0})}});
  Segment b = Seg(2, 0.0, 10.0, {{"v", Polynomial({3.0})}});
  ASSERT_TRUE(g.Process(0, a, &out).ok());
  ASSERT_TRUE(g.Process(0, b, &out).ok());
  ASSERT_EQ(out.size(), 2u);
  // Each group has its own envelope: key 2's constant 3 does not displace
  // key 1's constant 5.
  EXPECT_EQ(out[0].key, 1);
  EXPECT_EQ(out[1].key, 2);
  EXPECT_EQ(g.num_groups(), 2u);
}

TEST(PulseGroupBy, GroupStateIsolated) {
  PulseGroupBy g("g", MinFactory());
  SegmentBatch out;
  ASSERT_TRUE(
      g.Process(0, Seg(1, 0.0, 10.0, {{"v", Polynomial({5.0})}}), &out)
          .ok());
  out.clear();
  // Higher value in the SAME group: no output.
  ASSERT_TRUE(
      g.Process(0, Seg(1, 0.0, 10.0, {{"v", Polynomial({9.0})}}), &out)
          .ok());
  EXPECT_TRUE(out.empty());
  // Same value in a DIFFERENT group: fresh envelope, output produced.
  ASSERT_TRUE(
      g.Process(0, Seg(2, 0.0, 10.0, {{"v", Polynomial({9.0})}}), &out)
          .ok());
  EXPECT_EQ(out.size(), 1u);
}

TEST(PulseGroupBy, InvertBoundDelegates) {
  PulseGroupBy g("g", MinFactory());
  SegmentBatch out;
  ASSERT_TRUE(
      g.Process(0, Seg(5, 0.0, 10.0, {{"v", Polynomial({5.0})}}), &out)
          .ok());
  ASSERT_EQ(out.size(), 1u);
  EquiSplit split;
  Result<std::vector<AllocatedBound>> allocs =
      g.InvertBound(out[0], "agg", 0.5, split);
  ASSERT_TRUE(allocs.ok());
  ASSERT_EQ(allocs->size(), 1u);
  EXPECT_EQ((*allocs)[0].key, 5);
  // Unknown group.
  Segment fake(99, Interval::ClosedOpen(0.0, 1.0));
  fake.id = 424242;
  EXPECT_FALSE(g.InvertBound(fake, "agg", 0.5, split).ok());
}

TEST(PulseGroupBy, FactoryFailurePropagates) {
  PulseGroupBy g("g", [](Key) -> Result<std::unique_ptr<PulseOperator>> {
    return Status::Unimplemented("nope");
  });
  SegmentBatch out;
  EXPECT_FALSE(
      g.Process(0, Seg(1, 0.0, 1.0, {{"v", Polynomial({1.0})}}), &out)
          .ok());
}

}  // namespace
}  // namespace pulse
