file(REMOVE_RECURSE
  "CMakeFiles/historical_whatif.dir/historical_whatif.cpp.o"
  "CMakeFiles/historical_whatif.dir/historical_whatif.cpp.o.d"
  "historical_whatif"
  "historical_whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/historical_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
