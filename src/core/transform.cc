#include "core/transform.h"

#include <limits>

#include "core/operators/aggregate.h"
#include "core/operators/distinct.h"
#include "core/operators/epoch.h"
#include "core/operators/filter.h"
#include "core/operators/group_by.h"
#include "core/operators/join.h"
#include "core/operators/map.h"
#include "engine/distinct.h"
#include "engine/epoch.h"
#include "engine/filter.h"
#include "engine/group_by.h"
#include "engine/join.h"
#include "engine/map.h"
#include "util/logging.h"

namespace pulse {

namespace {

constexpr size_t kNoKey = std::numeric_limits<size_t>::max();

// A logical input resolved against the plan being built.
struct Resolved {
  bool is_stream = false;
  std::string stream;                      // when is_stream
  QueryPlan::NodeId node = 0;              // when !is_stream (discrete)
  std::shared_ptr<const Schema> schema;
  size_t key_index = kNoKey;
};

// Pre-resolves every predicate attribute to a tuple field index so the
// per-tuple hot path is name-free. Shared (by shared_ptr) with the engine
// operators' lambdas.
class TuplePredicateEvaluator {
 public:
  static Result<std::shared_ptr<TuplePredicateEvaluator>> Make(
      const Predicate& predicate, const Schema* left, const Schema* right) {
    auto eval = std::make_shared<TuplePredicateEvaluator>();
    eval->predicate_ = predicate;
    std::vector<AttrRef> refs;
    predicate.CollectAttributes(&refs);
    for (const AttrRef& ref : refs) {
      const Schema* schema = ref.side == Side::kLeft ? left : right;
      if (schema == nullptr) {
        return Status::InvalidArgument(
            "predicate references an absent input side: " + ref.ToString());
      }
      PULSE_ASSIGN_OR_RETURN(size_t idx, schema->IndexOf(ref.name));
      eval->index_[{ref.side == Side::kLeft ? 0 : 1, ref.name}] = idx;
    }
    return eval;
  }

  bool EvalUnary(const Tuple& tuple) const {
    return EvalBinary(tuple, tuple);
  }

  bool EvalBinary(const Tuple& left, const Tuple& right) const {
    Predicate::ValueResolver resolver =
        [this, &left, &right](const AttrRef& ref) -> Result<double> {
      const int side = ref.side == Side::kLeft ? 0 : 1;
      auto it = index_.find({side, ref.name});
      if (it == index_.end()) {
        return Status::Internal("unresolved attribute " + ref.ToString());
      }
      const Tuple& t = side == 0 ? left : right;
      return t.at(it->second).as_double();
    };
    Result<bool> r = predicate_.EvaluateOnValues(resolver);
    PULSE_CHECK(r.ok());
    return *r;
  }

 private:
  Predicate predicate_ = Predicate::And({});
  std::map<std::pair<int, std::string>, size_t> index_;
};

Result<Resolved> ResolveStreamInput(const QuerySpec& spec,
                                    const std::string& name) {
  PULSE_ASSIGN_OR_RETURN(StreamSpec stream, spec.stream(name));
  Resolved r;
  r.is_stream = true;
  r.stream = name;
  r.schema = stream.schema;
  PULSE_ASSIGN_OR_RETURN(r.key_index, stream.schema->IndexOf(
                                          stream.key_field));
  return r;
}

}  // namespace

Result<DiscretePlan> BuildDiscretePlan(const QuerySpec& spec) {
  DiscretePlan out;
  std::vector<Resolved> resolved(spec.num_nodes());

  auto resolve_input = [&](const QuerySpec::Input& in) -> Result<Resolved> {
    if (in.is_stream) return ResolveStreamInput(spec, in.stream);
    if (in.node >= spec.num_nodes() || resolved[in.node].schema == nullptr) {
      return Status::InvalidArgument(
          "node input references an unbuilt node (inputs must precede "
          "consumers)");
    }
    return resolved[in.node];
  };
  // Routes `upstream` into `to`:`port` (stream binding or node edge).
  auto connect = [&](const Resolved& upstream, QueryPlan::NodeId to,
                     size_t port) -> Status {
    if (upstream.is_stream) {
      return out.plan.BindSource(upstream.stream, to, port);
    }
    return out.plan.Connect(upstream.node, to, port);
  };

  for (QuerySpec::NodeId id = 0; id < spec.num_nodes(); ++id) {
    const QuerySpec::Node& node = spec.node(id);
    switch (node.kind) {
      case QuerySpec::OpKind::kFilter: {
        PULSE_ASSIGN_OR_RETURN(Resolved in, resolve_input(node.inputs[0]));
        PULSE_ASSIGN_OR_RETURN(
            std::shared_ptr<TuplePredicateEvaluator> eval,
            TuplePredicateEvaluator::Make(node.filter->predicate,
                                          in.schema.get(), nullptr));
        auto op = std::make_shared<LambdaFilter>(
            node.name, in.schema,
            [eval](const Tuple& t) { return eval->EvalUnary(t); });
        const QueryPlan::NodeId nid = out.plan.AddOperator(op);
        PULSE_RETURN_IF_ERROR(connect(in, nid, 0));
        resolved[id] = Resolved{false, "", nid, in.schema, in.key_index};
        break;
      }
      case QuerySpec::OpKind::kJoin: {
        PULSE_ASSIGN_OR_RETURN(Resolved l, resolve_input(node.inputs[0]));
        PULSE_ASSIGN_OR_RETURN(Resolved r, resolve_input(node.inputs[1]));
        const JoinSpec& js = *node.join;
        PULSE_ASSIGN_OR_RETURN(
            std::shared_ptr<TuplePredicateEvaluator> eval,
            TuplePredicateEvaluator::Make(js.predicate, l.schema.get(),
                                          r.schema.get()));
        std::vector<JoinComparison> structured;
        if (js.match_keys) {
          if (l.key_index == kNoKey || r.key_index == kNoKey) {
            return Status::InvalidArgument(
                "match_keys join requires keyed inputs");
          }
          structured.push_back(
              JoinComparison{l.key_index, CmpOp::kEq, r.key_index});
        }
        const size_t lkey = l.key_index;
        const size_t rkey = r.key_index;
        const bool distinct = js.require_distinct_keys;
        auto extra = [eval, lkey, rkey, distinct](const Tuple& lt,
                                                  const Tuple& rt) {
          if (distinct && lt.at(lkey) == rt.at(rkey)) return false;
          return eval->EvalBinary(lt, rt);
        };
        auto op = std::make_shared<SlidingWindowJoin>(
            node.name, l.schema, r.schema, js.window_seconds,
            std::move(structured), extra, js.left_prefix, js.right_prefix);
        const QueryPlan::NodeId nid = out.plan.AddOperator(op);
        PULSE_RETURN_IF_ERROR(connect(l, nid, 0));
        PULSE_RETURN_IF_ERROR(connect(r, nid, 1));

        std::shared_ptr<const Schema> joined = op->output_schema();
        size_t key_index = kNoKey;
        QueryPlan::NodeId tail = nid;
        if (lkey != kNoKey && rkey != kNoKey) {
          // Materialize a composite pair key so downstream GROUP BY
          // (id1, id2) has a single grouping column.
          std::vector<MapColumn> columns;
          for (size_t i = 0; i < joined->num_fields(); ++i) {
            columns.push_back(MapColumn::FieldExpr(joined->field(i), i));
          }
          const size_t right_base = l.schema->num_fields();
          columns.push_back(MapColumn{
              Field{"pair_key", ValueType::kInt64},
              [lkey, rkey, right_base](const Tuple& t) {
                return Value(CombineKeys(t.at(lkey).as_int64(),
                                         t.at(right_base + rkey)
                                             .as_int64()));
              }});
          auto map_op = std::make_shared<MapOperator>(node.name + ".key",
                                                      std::move(columns));
          const QueryPlan::NodeId mid = out.plan.AddOperator(map_op);
          PULSE_RETURN_IF_ERROR(out.plan.Connect(nid, mid, 0));
          joined = map_op->output_schema();
          key_index = joined->num_fields() - 1;
          tail = mid;
        }
        resolved[id] = Resolved{false, "", tail, joined, key_index};
        break;
      }
      case QuerySpec::OpKind::kAggregate: {
        PULSE_ASSIGN_OR_RETURN(Resolved in, resolve_input(node.inputs[0]));
        const AggregateSpec& as = *node.aggregate;
        PULSE_ASSIGN_OR_RETURN(size_t value_idx,
                               in.schema->IndexOf(as.attribute));
        const WindowSpec window{as.window_seconds, as.slide_seconds};
        if (as.per_key) {
          if (in.key_index == kNoKey) {
            return Status::InvalidArgument(
                "per_key aggregate requires a keyed input");
          }
          auto op = std::make_shared<GroupedWindowedAggregate>(
              node.name, in.schema, window, as.fn, value_idx, in.key_index,
              as.output_attribute);
          const QueryPlan::NodeId nid = out.plan.AddOperator(op);
          PULSE_RETURN_IF_ERROR(connect(in, nid, 0));
          resolved[id] =
              Resolved{false, "", nid, op->output_schema(), 0};
        } else {
          auto op = std::make_shared<WindowedAggregate>(
              node.name, in.schema, window, as.fn, value_idx,
              as.output_attribute);
          const QueryPlan::NodeId nid = out.plan.AddOperator(op);
          PULSE_RETURN_IF_ERROR(connect(in, nid, 0));
          resolved[id] =
              Resolved{false, "", nid, op->output_schema(), kNoKey};
        }
        break;
      }
      case QuerySpec::OpKind::kMap: {
        PULSE_ASSIGN_OR_RETURN(Resolved in, resolve_input(node.inputs[0]));
        const MapSpec& ms = *node.map;
        // Resolve every referenced attribute once; tuple-time evaluation
        // reads by index.
        auto index = std::make_shared<std::map<std::string, size_t>>();
        auto resolve_attr = [&](const AttrRef& ref) -> Status {
          if (index->count(ref.name) > 0) return Status::OK();
          PULSE_ASSIGN_OR_RETURN(size_t idx, in.schema->IndexOf(ref.name));
          (*index)[ref.name] = idx;
          return Status::OK();
        };
        for (const ComputedAttr& ca : ms.outputs) {
          if (ca.kind == ComputedAttr::Kind::kDifference) {
            PULSE_RETURN_IF_ERROR(resolve_attr(ca.a));
            PULSE_RETURN_IF_ERROR(resolve_attr(ca.b));
          } else {
            PULSE_RETURN_IF_ERROR(resolve_attr(ca.x1));
            PULSE_RETURN_IF_ERROR(resolve_attr(ca.y1));
            PULSE_RETURN_IF_ERROR(resolve_attr(ca.x2));
            PULSE_RETURN_IF_ERROR(resolve_attr(ca.y2));
          }
        }
        std::vector<MapColumn> columns;
        size_t key_index = kNoKey;
        if (ms.keep_inputs) {
          for (size_t i = 0; i < in.schema->num_fields(); ++i) {
            columns.push_back(MapColumn::FieldExpr(in.schema->field(i), i));
          }
          key_index = in.key_index;
        } else if (in.key_index != kNoKey) {
          columns.push_back(MapColumn::FieldExpr(
              in.schema->field(in.key_index), in.key_index));
          key_index = 0;
        }
        for (const ComputedAttr& ca : ms.outputs) {
          ComputedAttr attr = ca;  // captured by value
          columns.push_back(MapColumn{
              Field{ca.name, ValueType::kDouble},
              [attr, index](const Tuple& t) {
                Predicate::ValueResolver resolver =
                    [&](const AttrRef& ref) -> Result<double> {
                  auto it = index->find(ref.name);
                  if (it == index->end()) {
                    return Status::Internal("unresolved map attribute");
                  }
                  return t.at(it->second).as_double();
                };
                Result<double> v = attr.EvaluateValues(resolver);
                PULSE_CHECK(v.ok());
                return Value(*v);
              }});
        }
        auto op =
            std::make_shared<MapOperator>(node.name, std::move(columns));
        const QueryPlan::NodeId nid = out.plan.AddOperator(op);
        PULSE_RETURN_IF_ERROR(connect(in, nid, 0));
        resolved[id] =
            Resolved{false, "", nid, op->output_schema(), key_index};
        break;
      }
      case QuerySpec::OpKind::kEpoch: {
        PULSE_ASSIGN_OR_RETURN(Resolved in, resolve_input(node.inputs[0]));
        auto op = std::make_shared<EpochMark>(node.name, in.schema,
                                              node.epoch->epoch_seconds,
                                              node.epoch->output_attribute);
        const QueryPlan::NodeId nid = out.plan.AddOperator(op);
        PULSE_RETURN_IF_ERROR(connect(in, nid, 0));
        // Epoch marking appends a column, so the key's index is stable.
        resolved[id] =
            Resolved{false, "", nid, op->output_schema(), in.key_index};
        break;
      }
      case QuerySpec::OpKind::kDistinct: {
        PULSE_ASSIGN_OR_RETURN(Resolved in, resolve_input(node.inputs[0]));
        if (in.key_index == kNoKey) {
          return Status::InvalidArgument(
              "distinct node '" + node.name +
              "' requires a keyed input (no key survives upstream)");
        }
        auto op = std::make_shared<EpochDistinct>(
            node.name, in.schema, node.distinct->epoch_seconds,
            in.key_index);
        const QueryPlan::NodeId nid = out.plan.AddOperator(op);
        PULSE_RETURN_IF_ERROR(connect(in, nid, 0));
        resolved[id] = Resolved{false, "", nid, in.schema, in.key_index};
        break;
      }
    }
  }

  for (QueryPlan::NodeId sink : out.plan.SinkNodes()) {
    out.sink_schemas.push_back(out.plan.node(sink)->output_schema());
  }
  return out;
}

Result<TransformedPlan> BuildPulsePlan(const QuerySpec& spec) {
  TransformedPlan out;
  std::vector<PulsePlan::NodeId> built(spec.num_nodes(), 0);
  std::vector<bool> is_built(spec.num_nodes(), false);

  auto connect = [&](const QuerySpec::Input& in, PulsePlan::NodeId to,
                     size_t port) -> Status {
    if (in.is_stream) {
      // Validate the stream exists.
      PULSE_ASSIGN_OR_RETURN(StreamSpec stream, spec.stream(in.stream));
      (void)stream;
      return out.plan.BindSource(in.stream, to, port);
    }
    if (in.node >= spec.num_nodes() || !is_built[in.node]) {
      return Status::InvalidArgument(
          "node input references an unbuilt node");
    }
    return out.plan.Connect(built[in.node], to, port);
  };

  for (QuerySpec::NodeId id = 0; id < spec.num_nodes(); ++id) {
    const QuerySpec::Node& node = spec.node(id);
    PulsePlan::NodeId nid = 0;
    switch (node.kind) {
      case QuerySpec::OpKind::kFilter: {
        nid = out.plan.AddOperator(std::make_shared<PulseFilter>(
            node.name, node.filter->predicate));
        PULSE_RETURN_IF_ERROR(connect(node.inputs[0], nid, 0));
        break;
      }
      case QuerySpec::OpKind::kJoin: {
        const JoinSpec& js = *node.join;
        PulseJoinOptions options;
        options.window_seconds = js.window_seconds;
        options.match_keys = js.match_keys;
        options.require_distinct_keys = js.require_distinct_keys;
        options.left_prefix = js.left_prefix;
        options.right_prefix = js.right_prefix;
        nid = out.plan.AddOperator(std::make_shared<PulseJoin>(
            node.name, js.predicate, options));
        PULSE_RETURN_IF_ERROR(connect(node.inputs[0], nid, 0));
        PULSE_RETURN_IF_ERROR(connect(node.inputs[1], nid, 1));
        break;
      }
      case QuerySpec::OpKind::kAggregate: {
        const AggregateSpec& as = *node.aggregate;
        PulseAggregateOptions options;
        options.fn = as.fn;
        options.input_attribute = as.attribute;
        options.output_attribute = as.output_attribute;
        options.window_seconds = as.window_seconds;
        options.slide_seconds = as.slide_seconds;
        // Composed plans may put filters (HAVING) downstream of the
        // aggregate; the eager changed-range protocol is not closed under
        // filtering (no way to retract an overridden range), so built
        // plans always take the settled append-only emission.
        options.finalize = true;
        if (as.per_key) {
          const std::string base = node.name;
          auto factory = [options, base](Key group)
              -> Result<std::unique_ptr<PulseOperator>> {
            return MakePulseAggregate(base + "[" + std::to_string(group) +
                                          "]",
                                      options);
          };
          nid = out.plan.AddOperator(
              std::make_shared<PulseGroupBy>(node.name, factory));
        } else {
          PULSE_ASSIGN_OR_RETURN(std::unique_ptr<PulseOperator> agg,
                                 MakePulseAggregate(node.name, options));
          nid = out.plan.AddOperator(std::move(agg));
        }
        PULSE_RETURN_IF_ERROR(connect(node.inputs[0], nid, 0));
        break;
      }
      case QuerySpec::OpKind::kMap: {
        nid = out.plan.AddOperator(std::make_shared<PulseMap>(
            node.name, node.map->outputs, node.map->keep_inputs));
        PULSE_RETURN_IF_ERROR(connect(node.inputs[0], nid, 0));
        break;
      }
      case QuerySpec::OpKind::kEpoch: {
        nid = out.plan.AddOperator(std::make_shared<PulseEpoch>(
            node.name, node.epoch->epoch_seconds));
        PULSE_RETURN_IF_ERROR(connect(node.inputs[0], nid, 0));
        break;
      }
      case QuerySpec::OpKind::kDistinct: {
        nid = out.plan.AddOperator(std::make_shared<PulseDistinct>(
            node.name, node.distinct->epoch_seconds));
        PULSE_RETURN_IF_ERROR(connect(node.inputs[0], nid, 0));
        break;
      }
    }
    built[id] = nid;
    is_built[id] = true;
    out.node_map[id] = nid;
  }
  return out;
}

Result<SegmentModelBuilder> SegmentModelBuilder::Make(
    const StreamSpec& spec) {
  if (spec.schema == nullptr) {
    return Status::InvalidArgument("stream schema must not be null");
  }
  if (spec.segment_horizon <= 0.0) {
    return Status::InvalidArgument("segment_horizon must be positive");
  }
  SegmentModelBuilder builder;
  builder.spec_ = spec;
  PULSE_ASSIGN_OR_RETURN(builder.key_index_,
                         spec.schema->IndexOf(spec.key_field));
  for (const ModelClause& clause : spec.models) {
    std::vector<size_t> indices;
    indices.reserve(clause.coefficient_fields.size());
    for (const std::string& field : clause.coefficient_fields) {
      PULSE_ASSIGN_OR_RETURN(size_t idx, spec.schema->IndexOf(field));
      indices.push_back(idx);
    }
    builder.coefficient_indices_.push_back(std::move(indices));
    if (spec.schema->HasField(clause.modeled_attribute)) {
      PULSE_ASSIGN_OR_RETURN(
          size_t idx, spec.schema->IndexOf(clause.modeled_attribute));
      builder.observed_indices_[clause.modeled_attribute] = idx;
    }
  }
  return builder;
}

Result<Segment> SegmentModelBuilder::BuildSegment(const Tuple& tuple) const {
  Segment seg;
  seg.id = NextSegmentId();
  seg.key = tuple.at(key_index_).as_int64();
  seg.range = Interval::ClosedOpen(tuple.timestamp,
                                   tuple.timestamp + spec_.segment_horizon);
  for (size_t m = 0; m < spec_.models.size(); ++m) {
    // The MODEL clause is written in segment-local time (the delta
    // attribute); shift to absolute time for plan-wide composition.
    // Coefficients go straight into (inline) polynomial storage.
    Polynomial local;
    local.Resize(coefficient_indices_[m].size());
    size_t c = 0;
    for (size_t idx : coefficient_indices_[m]) {
      local[c++] = tuple.at(idx).as_double();
    }
    local.TrimInPlace();
    seg.set_attribute(spec_.models[m].modeled_attribute,
                      local.Shift(-tuple.timestamp));
  }
  return seg;
}

Key SegmentModelBuilder::KeyOf(const Tuple& tuple) const {
  return tuple.at(key_index_).as_int64();
}

Result<double> SegmentModelBuilder::ObservedValue(
    const Tuple& tuple, const std::string& attribute) const {
  auto it = observed_indices_.find(attribute);
  if (it == observed_indices_.end()) {
    return Status::NotFound("modeled attribute '" + attribute +
                            "' is not an observable tuple field");
  }
  return tuple.at(it->second).as_double();
}

}  // namespace pulse
