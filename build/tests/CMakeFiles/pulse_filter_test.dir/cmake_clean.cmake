file(REMOVE_RECURSE
  "CMakeFiles/pulse_filter_test.dir/pulse_filter_test.cc.o"
  "CMakeFiles/pulse_filter_test.dir/pulse_filter_test.cc.o.d"
  "pulse_filter_test"
  "pulse_filter_test.pdb"
  "pulse_filter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pulse_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
