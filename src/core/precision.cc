#include "core/precision.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace pulse {

std::vector<PrecisionTier> DefaultPrecisionLadder() {
  return {PrecisionTier{4.0, 1.0}, PrecisionTier{16.0, 4.0}};
}

const char* RetractReasonToString(RetractReason reason) {
  switch (reason) {
    case RetractReason::kDeviation:
      return "Deviation";
    case RetractReason::kSpurious:
      return "Spurious";
  }
  return "Unknown";
}

Result<std::unique_ptr<AdaptiveRuntime>> AdaptiveRuntime::Make(
    const QuerySpec& spec, HistoricalRuntime::Options exact,
    AdaptivePrecisionOptions precision) {
  if (precision.ladder.empty()) {
    return Status::InvalidArgument("precision ladder must be non-empty");
  }
  for (const PrecisionTier& tier : precision.ladder) {
    if (tier.error_scale < 1.0) {
      return Status::InvalidArgument(
          "precision tier error_scale must be >= 1 (widening only)");
    }
    if (tier.output_bound <= 0.0) {
      return Status::InvalidArgument(
          "precision tier output_bound must be > 0");
    }
  }
  if (precision.probe_points == 0) precision.probe_points = 1;
  if (precision.max_deferred == 0) precision.max_deferred = 1;

  auto runtime = std::unique_ptr<AdaptiveRuntime>(new AdaptiveRuntime());
  runtime->spec_ = spec;
  runtime->precision_ = std::move(precision);
  runtime->metrics_ = std::make_unique<obs::MetricsRegistry>();

  // Settlement compares against collected outputs, so collection is
  // mandatory; the shard-pool sharing fields do not apply here (the
  // adaptive runtime is session-owned, docs/PRECISION.md).
  exact.collect_outputs = true;
  exact.shared_solve_cache = nullptr;
  exact.output_observer = nullptr;
  exact.metrics = runtime->metrics_.get();
  PULSE_ASSIGN_OR_RETURN(HistoricalRuntime rt,
                         HistoricalRuntime::Make(spec, exact));
  runtime->exact_ = std::make_unique<HistoricalRuntime>(std::move(rt));
  // Keep the static configuration around as the coarse-episode template.
  runtime->exact_template_ = std::move(exact);
  return runtime;
}

Status AdaptiveRuntime::StartEpisode(size_t tier) {
  const PrecisionTier& rung = precision_.ladder[tier - 1];
  HistoricalRuntime::Options coarse = exact_template_;
  coarse.segmentation.max_error *= rung.error_scale;
  coarse.collect_outputs = true;
  coarse.shared_solve_cache = nullptr;
  coarse.output_observer = nullptr;
  // Both runtimes report through the shared registry, so the
  // span/runtime/push_segment histogram the precision controller reads
  // tracks whichever side is currently live.
  coarse.metrics = metrics_.get();
  PULSE_ASSIGN_OR_RETURN(HistoricalRuntime rt,
                         HistoricalRuntime::Make(spec_, coarse));
  coarse_ = std::make_unique<HistoricalRuntime>(std::move(rt));
  tier_ = tier;
  return Status::OK();
}

void AdaptiveRuntime::HarvestProvisionals() {
  if (coarse_ == nullptr) return;
  const double bound = precision_.ladder[tier_ - 1].output_bound;
  for (Segment& segment : coarse_->TakeOutputSegments()) {
    ProvisionalRecord record;
    record.lineage = next_lineage_++;
    record.bound = bound;
    record.segment = std::move(segment);
    open_.emplace(record.lineage, record);
    provisional_out_.push_back(std::move(record));
    ++stats_.provisional;
  }
}

Status AdaptiveRuntime::CloseEpisode() {
  if (coarse_ == nullptr) return Status::OK();
  PULSE_RETURN_IF_ERROR(coarse_->Finish());
  HarvestProvisionals();
  coarse_.reset();
  return Status::OK();
}

void AdaptiveRuntime::HarvestSettled() {
  // Timelines exist only to answer probes from open provisionals, and a
  // provisional's range never predates its coarse episode — so segments
  // settled while nothing is open can never be probed. Retaining them
  // anyway would copy the entire output stream for the session lifetime
  // in the tier-0 steady state.
  const bool retain = !open_.empty();
  for (Segment& segment : exact_->TakeOutputSegments()) {
    if (retain) timelines_[segment.key].push_back(segment);
    settled_out_.push_back(std::move(segment));
  }
}

size_t AdaptiveRuntime::probe_timeline_segments() const {
  size_t total = 0;
  for (const auto& [key, timeline] : timelines_) total += timeline.size();
  return total;
}

Status AdaptiveRuntime::DrainDeferred() {
  for (DeferredItem& item : deferred_) {
    if (item.is_segment) {
      PULSE_RETURN_IF_ERROR(
          exact_->ProcessSegment(item.stream, std::move(item.segment)));
    } else {
      PULSE_RETURN_IF_ERROR(exact_->ProcessTuple(item.stream, item.tuple));
    }
    ++stats_.replayed_items;
  }
  deferred_.clear();
  return Status::OK();
}

Status AdaptiveRuntime::Reconcile() {
  PULSE_RETURN_IF_ERROR(CloseEpisode());
  PULSE_RETURN_IF_ERROR(DrainDeferred());
  HarvestSettled();
  SettleOpen(/*final_pass=*/false);
  PruneTimelines();
  tier_ = 0;
  ++stats_.tighten_events;
  return Status::OK();
}

namespace {

// The settled segment answering for time `t`: the latest one in settled
// order whose range covers t (matching the stream update semantics —
// a successor overlapping its predecessors supersedes them).
const Segment* Covering(const std::vector<Segment>& timeline, double t) {
  for (auto it = timeline.rbegin(); it != timeline.rend(); ++it) {
    if (it->range.Contains(t)) return &*it;
  }
  return nullptr;
}

}  // namespace

void AdaptiveRuntime::SettleOpen(bool final_pass) {
  for (auto it = open_.begin(); it != open_.end();) {
    const ProvisionalRecord& record = it->second;
    const auto timeline_it = timelines_.find(record.segment.key);
    const std::vector<Segment>* timeline =
        timeline_it == timelines_.end() ? nullptr : &timeline_it->second;

    size_t covered = 0;
    double max_deviation = 0.0;
    bool within = true;
    const double lo = record.segment.range.lo;
    const double hi = record.segment.range.hi;
    const size_t probes = precision_.probe_points;
    for (size_t p = 0; p < probes && timeline != nullptr; ++p) {
      const double t =
          lo + (hi - lo) * (static_cast<double>(p) + 0.5) /
                   static_cast<double>(probes);
      const Segment* exact = Covering(*timeline, t);
      if (exact == nullptr) continue;
      ++covered;
      for (const auto& [name, poly] : record.segment.attributes) {
        const auto attr = exact->attributes.find(name);
        if (attr == exact->attributes.end()) continue;
        const double deviation =
            std::fabs(poly.Evaluate(t) - attr->second.Evaluate(t));
        max_deviation = std::max(max_deviation, deviation);
        if (deviation > record.bound) within = false;
      }
    }

    VerdictRecord verdict;
    verdict.lineage = record.lineage;
    verdict.max_deviation = max_deviation;
    if (covered == 0) {
      if (!final_pass) {
        // The exact computation has not reached this range yet (e.g. a
        // window tail still pending) — stay open until Finish.
        ++it;
        continue;
      }
      verdict.confirmed = false;
      verdict.reason = RetractReason::kSpurious;
    } else if (within) {
      if (covered < probes && !final_pass) {
        // Only part of the range is answerable yet — the same pending
        // window tail the covered == 0 branch waits on. The uncovered
        // remainder could still deviate, and a confirm cannot be
        // retracted, so stay open until coverage completes or Finish.
        ++it;
        continue;
      }
      verdict.confirmed = true;
    } else {
      verdict.confirmed = false;
      verdict.reason = RetractReason::kDeviation;
    }
    verdict.confirmed ? ++stats_.confirmed : ++stats_.retracted;
    verdict_out_.push_back(verdict);
    it = open_.erase(it);
  }
}

void AdaptiveRuntime::SettlePending() {
  if (open_.empty()) return;
  SettleOpen(/*final_pass=*/false);
  PruneTimelines();
}

void AdaptiveRuntime::PruneTimelines() {
  // Probes only ever look inside an open provisional's range, so any
  // settled segment ending before the earliest open lower end is dead
  // weight. With nothing open, the whole probe index can go.
  if (open_.empty()) {
    timelines_.clear();
    return;
  }
  double earliest = open_.begin()->second.segment.range.lo;
  for (const auto& [lineage, record] : open_) {
    earliest = std::min(earliest, record.segment.range.lo);
  }
  for (auto& [key, timeline] : timelines_) {
    auto keep = std::remove_if(timeline.begin(), timeline.end(),
                               [earliest](const Segment& s) {
                                 return s.range.hi < earliest;
                               });
    timeline.erase(keep, timeline.end());
  }
}

Status AdaptiveRuntime::Defer(const std::string& stream, const Tuple* tuple,
                              const Segment* segment) {
  DeferredItem item;
  item.stream = stream;
  if (segment != nullptr) {
    item.is_segment = true;
    item.segment = *segment;
  } else {
    item.tuple = *tuple;
  }
  deferred_.push_back(std::move(item));
  ++stats_.deferred_items;
  if (deferred_.size() >= precision_.max_deferred) {
    // Backstop: the precision lever absorbs bursts, it must not grow
    // memory without bound under sustained overload. Reconcile now and
    // drop to the exact tier; admission-level shedding owns what comes
    // next (docs/PRECISION.md).
    ++stats_.forced_reconciles;
    return Reconcile();
  }
  return Status::OK();
}

Status AdaptiveRuntime::ProcessTuple(const std::string& stream,
                                     const Tuple& tuple) {
  if (tier_ == 0) {
    // Defense in depth: anything still buffered must reach the exact
    // runtime before new input to preserve arrival order.
    PULSE_RETURN_IF_ERROR(DrainDeferred());
    PULSE_RETURN_IF_ERROR(exact_->ProcessTuple(stream, tuple));
    HarvestSettled();
    SettlePending();
    return Status::OK();
  }
  PULSE_RETURN_IF_ERROR(coarse_->ProcessTuple(stream, tuple));
  HarvestProvisionals();
  return Defer(stream, &tuple, nullptr);
}

Status AdaptiveRuntime::ProcessTuples(const std::string& stream,
                                      const Tuple* tuples, size_t n) {
  if (tier_ == 0) {
    PULSE_RETURN_IF_ERROR(DrainDeferred());
    PULSE_RETURN_IF_ERROR(exact_->ProcessTuples(stream, tuples, n));
    HarvestSettled();
    SettlePending();
    return Status::OK();
  }
  PULSE_RETURN_IF_ERROR(coarse_->ProcessTuples(stream, tuples, n));
  HarvestProvisionals();
  for (size_t i = 0; i < n; ++i) {
    PULSE_RETURN_IF_ERROR(Defer(stream, &tuples[i], nullptr));
    if (tier_ == 0) {
      // The max_deferred backstop reconciled mid-batch (tuples 0..i
      // replayed, episode closed). The batch tail must take the exact
      // path now: deferring it at tier 0 would strand it behind later
      // direct input, losing both arrival order and — since nothing at
      // tier 0 triggers a reconcile — the tuples themselves.
      if (i + 1 < n) {
        PULSE_RETURN_IF_ERROR(
            exact_->ProcessTuples(stream, tuples + i + 1, n - i - 1));
      }
      HarvestSettled();
      SettlePending();
      return Status::OK();
    }
  }
  return Status::OK();
}

Status AdaptiveRuntime::ProcessSegment(const std::string& stream,
                                       Segment segment) {
  if (tier_ == 0) {
    PULSE_RETURN_IF_ERROR(DrainDeferred());
    PULSE_RETURN_IF_ERROR(
        exact_->ProcessSegment(stream, std::move(segment)));
    HarvestSettled();
    SettlePending();
    return Status::OK();
  }
  // The coarse side cannot re-segment an already-fitted model, so a
  // pushed segment costs the same live work at every tier; the gain on
  // this path is deferral alone. (Tuple input is where the widened
  // budget pays: longer pieces, fewer pushes.)
  PULSE_RETURN_IF_ERROR(coarse_->ProcessSegment(stream, segment));
  HarvestProvisionals();
  return Defer(stream, nullptr, &segment);
}

Status AdaptiveRuntime::SetTier(size_t tier) {
  if (finished_) {
    return Status::FailedPrecondition("SetTier after Finish");
  }
  tier = std::min(tier, precision_.ladder.size());
  if (tier == tier_) return Status::OK();
  if (tier == 0) return Reconcile();
  // Tier-to-tier moves (including partial tightening) switch episodes
  // without reconciling: reconciliation replays deferred work through
  // the exact runtime, which is precisely the cost the widened tier is
  // deferring — doing it while still under pressure would defeat the
  // lever. The new episode's coarse runtime starts fresh.
  PULSE_RETURN_IF_ERROR(CloseEpisode());
  if (tier_ == 0) ++stats_.widen_events;
  return StartEpisode(tier);
}

Status AdaptiveRuntime::Finish() {
  if (finished_) return Status::OK();
  if (tier_ != 0) {
    PULSE_RETURN_IF_ERROR(Reconcile());
  } else {
    PULSE_RETURN_IF_ERROR(DrainDeferred());
  }
  PULSE_RETURN_IF_ERROR(exact_->Finish());
  HarvestSettled();
  SettleOpen(/*final_pass=*/true);
  timelines_.clear();
  finished_ = true;
  return Status::OK();
}

std::vector<Segment> AdaptiveRuntime::TakeSettledOutputs() {
  return std::exchange(settled_out_, {});
}

std::vector<ProvisionalRecord> AdaptiveRuntime::TakeProvisionals() {
  return std::exchange(provisional_out_, {});
}

std::vector<VerdictRecord> AdaptiveRuntime::TakeVerdicts() {
  return std::exchange(verdict_out_, {});
}

}  // namespace pulse
