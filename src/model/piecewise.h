#ifndef PULSE_MODEL_PIECEWISE_H_
#define PULSE_MODEL_PIECEWISE_H_

#include <optional>
#include <string>
#include <vector>

#include "math/interval_set.h"
#include "math/polynomial.h"

namespace pulse {

/// One piece of a piecewise polynomial: a polynomial valid on a time range.
struct Piece {
  Interval range;
  Polynomial poly;
};

/// A piecewise polynomial function s(t) over disjoint, ordered time ranges.
///
/// This is the continuous internal state of Pulse's min/max aggregates
/// (paper Section III-B): "the partially aggregated model s(t) forms a
/// lower (or upper) envelope of the model functions". It also backs model
/// lineage snapshots during query inversion.
class PiecewiseModel {
 public:
  PiecewiseModel() = default;

  bool empty() const { return pieces_.empty(); }
  size_t size() const { return pieces_.size(); }
  const std::vector<Piece>& pieces() const { return pieces_; }

  /// The union of piece ranges.
  IntervalSet Domain() const;

  /// Evaluates s(t); nullopt when t lies outside every piece.
  std::optional<double> Evaluate(double t) const;

  /// Inserts a piece with *update semantics*: the new piece overrides any
  /// previously stored piece over the overlap (predecessors are truncated
  /// or split). Keeps pieces ordered and disjoint.
  void Overwrite(const Piece& piece);

  /// Folds `candidate` into the envelope over `candidate.range`:
  /// afterwards s(t) = min(s(t), p(t)) (is_min) or max(s(t), p(t)) over
  /// that range; where s was undefined, p fills in. Returns the set of
  /// times where the envelope CHANGED to the candidate — exactly the
  /// ranges for which a min/max aggregate must emit updated results.
  IntervalSet MergeEnvelope(const Piece& candidate, bool is_min);

  /// Drops all pieces entirely before `t` and trims pieces straddling it.
  /// Used for window expiry (state bounded by reference-timestamp
  /// monotonicity, Section II-B).
  void ExpireBefore(double t);

  std::string ToString() const;

 private:
  // Merges equal adjacent pieces in the neighbourhood of `touched`.
  void CoalesceAround(const Interval& touched);

  std::vector<Piece> pieces_;  // ordered by range.lo, pairwise disjoint
};

}  // namespace pulse

#endif  // PULSE_MODEL_PIECEWISE_H_
