// SolveCache unit behavior plus the acceptance property of ISSUE 2: a
// cache-equipped run produces output identical to an uncached run — on
// 100 random equation systems, through SolveSystems with a thread pool,
// and end-to-end on the Fig. 7 proximity-join workload.
#include "core/solve_cache.h"

#include <vector>

#include <gtest/gtest.h>

#include "core/equation_system.h"
#include "core/predicate.h"
#include "core/runtime.h"
#include "math/interval_set.h"
#include "math/polynomial.h"
#include "math/roots.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "workload/moving_object.h"

namespace pulse {
namespace {

constexpr Interval kDomain{0.0, 10.0};

TEST(SolveCacheTest, MissThenHitReturnsIdenticalSolution) {
  SolveCache cache;
  const Polynomial p({-4.0, 0.0, 1.0});  // roots at +-2
  IntervalSet out;
  EXPECT_FALSE(
      cache.Lookup(p, CmpOp::kLt, kDomain, RootMethod::kAuto, &out));
  EXPECT_EQ(cache.misses(), 1u);

  const IntervalSet solution =
      SolveComparison(p, CmpOp::kLt, kDomain, RootMethod::kAuto);
  cache.Insert(p, CmpOp::kLt, kDomain, RootMethod::kAuto, solution);
  EXPECT_TRUE(
      cache.Lookup(p, CmpOp::kLt, kDomain, RootMethod::kAuto, &out));
  EXPECT_EQ(out, solution);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SolveCacheTest, KeyDiscriminatesOpDomainAndMethod) {
  SolveCache cache;
  const Polynomial p({-1.0, 1.0});
  const IntervalSet solution =
      SolveComparison(p, CmpOp::kLt, kDomain, RootMethod::kAuto);
  cache.Insert(p, CmpOp::kLt, kDomain, RootMethod::kAuto, solution);

  IntervalSet out;
  EXPECT_FALSE(
      cache.Lookup(p, CmpOp::kLe, kDomain, RootMethod::kAuto, &out));
  EXPECT_FALSE(cache.Lookup(p, CmpOp::kLt, Interval{0.0, 9.0},
                            RootMethod::kAuto, &out));
  EXPECT_FALSE(
      cache.Lookup(p, CmpOp::kLt, kDomain, RootMethod::kBisection, &out));
  const Polynomial q({-1.0, 1.0000001});
  EXPECT_FALSE(
      cache.Lookup(q, CmpOp::kLt, kDomain, RootMethod::kAuto, &out));
  EXPECT_TRUE(
      cache.Lookup(p, CmpOp::kLt, kDomain, RootMethod::kAuto, &out));
}

TEST(SolveCacheTest, HighDegreeRowsAreNotCached) {
  SolveCache cache;
  std::vector<double> coeffs(Polynomial::kInlineCoefficients + 1, 0.0);
  coeffs.back() = 1.0;
  coeffs.front() = -1.0;
  const Polynomial p{std::move(coeffs)};  // degree 8: spills inline buffer
  const IntervalSet solution =
      SolveComparison(p, CmpOp::kLt, kDomain, RootMethod::kAuto);
  cache.Insert(p, CmpOp::kLt, kDomain, RootMethod::kAuto, solution);
  EXPECT_EQ(cache.size(), 0u);
  IntervalSet out;
  EXPECT_FALSE(
      cache.Lookup(p, CmpOp::kLt, kDomain, RootMethod::kAuto, &out));
  // Uncacheable rows do not distort the hit/miss accounting.
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

// Regression guard for the ISSUE 7 "replay_cached anomaly": a 100%-hit
// cache replay ran SLOWER than recomputing, because a low-degree
// closed-form solve is cheaper than key hashing + shard locking + map
// probing + IntervalSet copying. Runtimes now default to min_degree = 3
// so degree <= 2 rows bypass the cache entirely.
TEST(SolveCacheTest, MinDegreeRowsBypassCacheAsUncacheable) {
  SolveCache cache(DefaultRuntimeSolveCacheOptions());
  ASSERT_EQ(cache.options().min_degree, 3u);
  const Polynomial quadratic({-4.0, 0.0, 1.0});
  const IntervalSet solution =
      SolveComparison(quadratic, CmpOp::kLt, kDomain, RootMethod::kAuto);
  cache.Insert(quadratic, CmpOp::kLt, kDomain, RootMethod::kAuto,
               solution);
  EXPECT_EQ(cache.size(), 0u);
  IntervalSet out;
  EXPECT_FALSE(cache.Lookup(quadratic, CmpOp::kLt, kDomain,
                            RootMethod::kAuto, &out));
  // Low-degree rows count as uncacheable, not misses, so the accounting
  // identity hits + misses + uncacheable == lookups still holds.
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_EQ(cache.uncacheable(), 1u);
  EXPECT_EQ(cache.lookups(), 1u);

  // Degree >= min_degree rows still cache normally.
  const Polynomial cubic({-8.0, 0.0, 0.0, 1.0});
  const IntervalSet cubic_solution =
      SolveComparison(cubic, CmpOp::kLt, kDomain, RootMethod::kAuto);
  cache.Insert(cubic, CmpOp::kLt, kDomain, RootMethod::kAuto,
               cubic_solution);
  EXPECT_TRUE(cache.Lookup(cubic, CmpOp::kLt, kDomain, RootMethod::kAuto,
                           &out));
  EXPECT_EQ(out, cubic_solution);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.hits() + cache.misses() + cache.uncacheable(),
            cache.lookups());
}

TEST(SolveCacheTest, GenerationSweepBoundsSizeAndKeepsRecentEntries) {
  SolveCacheOptions options;
  options.capacity = 64;
  options.shards = 1;
  SolveCache cache(options);
  const IntervalSet solution(kDomain);
  for (int i = 0; i < 1000; ++i) {
    const Polynomial p({static_cast<double>(i), 1.0});
    cache.Insert(p, CmpOp::kLt, kDomain, RootMethod::kAuto, solution);
  }
  // current + previous generations: never more than 2x the budget.
  EXPECT_LE(cache.size(), 2u * options.capacity);
  // The newest entry survives the sweeps.
  IntervalSet out;
  EXPECT_TRUE(cache.Lookup(Polynomial({999.0, 1.0}), CmpOp::kLt, kDomain,
                           RootMethod::kAuto, &out));
}

TEST(SolveCacheTest, QuantizedKeysMergeNearbyCoefficients) {
  SolveCacheOptions options;
  options.quantum = 1e-6;
  SolveCache cache(options);
  const Polynomial p({-1.0, 1.0});
  const IntervalSet solution =
      SolveComparison(p, CmpOp::kLt, kDomain, RootMethod::kAuto);
  cache.Insert(p, CmpOp::kLt, kDomain, RootMethod::kAuto, solution);
  // A coefficient perturbation below quantum/2 lands on the same key.
  const Polynomial near({-1.0 + 1e-8, 1.0});
  IntervalSet out;
  EXPECT_TRUE(
      cache.Lookup(near, CmpOp::kLt, kDomain, RootMethod::kAuto, &out));
  EXPECT_EQ(out, solution);
}

// --- Determinism: cache-on == cache-off -------------------------------

Polynomial RandomPolynomial(Rng* rng, size_t degree) {
  std::vector<double> coeffs(degree + 1);
  for (double& c : coeffs) c = rng->Uniform(-5.0, 5.0);
  return Polynomial(std::move(coeffs));
}

std::vector<EquationSystemTask> RandomSystems(uint64_t seed) {
  Rng rng(seed);
  std::vector<EquationSystemTask> tasks;
  tasks.reserve(100);
  constexpr CmpOp kOps[] = {CmpOp::kLt, CmpOp::kLe, CmpOp::kEq,
                            CmpOp::kNe, CmpOp::kGe, CmpOp::kGt};
  for (int k = 0; k < 100; ++k) {
    EquationSystem system;
    const int rows = static_cast<int>(rng.UniformInt(1, 3));
    for (int r = 0; r < rows; ++r) {
      const size_t degree = static_cast<size_t>(rng.UniformInt(1, 4));
      const CmpOp op = kOps[rng.UniformInt(0, 5)];
      system.AddRow(DifferenceEquation{RandomPolynomial(&rng, degree), op});
    }
    const double lo = rng.Uniform(0.0, 5.0);
    tasks.push_back(EquationSystemTask{
        std::move(system),
        Interval::ClosedOpen(lo, lo + rng.Uniform(0.5, 10.0))});
  }
  return tasks;
}

TEST(SolveCacheDeterminismTest, MatchesUncachedOn100RandomSystems) {
  SCOPED_TRACE("replay: RandomSystems(20260807)");
  // Duplicate the task list so the cached run actually hits: the second
  // half re-solves the first half's systems from the cache.
  std::vector<EquationSystemTask> tasks = RandomSystems(20260807);
  const size_t unique = tasks.size();
  for (size_t i = 0; i < unique; ++i) {
    EquationSystemTask copy;
    copy.system = tasks[i].system;
    copy.domain = tasks[i].domain;
    tasks.push_back(std::move(copy));
  }

  Result<std::vector<IntervalSet>> uncached =
      SolveSystems(tasks, RootMethod::kAuto, nullptr, nullptr);
  ASSERT_TRUE(uncached.ok()) << uncached.status();

  SolveCache cache;
  Result<std::vector<IntervalSet>> cached =
      SolveSystems(tasks, RootMethod::kAuto, nullptr, &cache);
  ASSERT_TRUE(cached.ok()) << cached.status();

  ASSERT_EQ(uncached->size(), cached->size());
  for (size_t i = 0; i < uncached->size(); ++i) {
    EXPECT_EQ((*uncached)[i], (*cached)[i])
        << "task " << i << ": uncached=" << (*uncached)[i].ToString()
        << " cached=" << (*cached)[i].ToString();
  }
  EXPECT_GT(cache.hits(), 0u) << "duplicated tasks produced no hits";
}

TEST(SolveCacheDeterminismTest, MatchesUncachedUnderThreadPool) {
  SCOPED_TRACE("replay: RandomSystems(4242)");
  const std::vector<EquationSystemTask> tasks = RandomSystems(4242);
  Result<std::vector<IntervalSet>> uncached =
      SolveSystems(tasks, RootMethod::kAuto, nullptr, nullptr);
  ASSERT_TRUE(uncached.ok()) << uncached.status();

  SolveCache cache;
  ThreadPool pool(4);
  Result<std::vector<IntervalSet>> cached =
      SolveSystems(tasks, RootMethod::kAuto, &pool, &cache);
  ASSERT_TRUE(cached.ok()) << cached.status();

  ASSERT_EQ(uncached->size(), cached->size());
  for (size_t i = 0; i < uncached->size(); ++i) {
    EXPECT_EQ((*uncached)[i], (*cached)[i]) << "task " << i;
  }
}

// End-to-end on the Fig. 7 workload: a cache-enabled HistoricalRuntime
// must emit segment-for-segment identical output to a cache-disabled one.
QuerySpec Fig7Spec() {
  QuerySpec spec;
  (void)spec.AddStream(
      MovingObjectGenerator::MakeStreamSpec("objects", 10.0));
  JoinSpec join;
  join.predicate = Predicate::Comparison(ComparisonTerm::Distance2(
      AttrRef::Left("x"), AttrRef::Left("y"), AttrRef::Right("x"),
      AttrRef::Right("y"), CmpOp::kLt, 100.0));
  join.window_seconds = 2.0;
  join.require_distinct_keys = true;
  spec.AddJoin("join", QuerySpec::Input::Stream("objects"),
               QuerySpec::Input::Stream("objects"), join);
  return spec;
}

TEST(SolveCacheDeterminismTest, Fig7JoinOutputIdenticalCacheOnAndOff) {
  MovingObjectOptions gen;
  gen.num_objects = 8;
  gen.tuple_rate = 200.0;
  gen.tuples_per_segment = 20;
  gen.area = 1000.0;
  gen.noise = 0.0;
  const std::vector<Tuple> trace = MovingObjectGenerator(gen).Generate(4000);

  auto run = [&](bool with_cache) {
    HistoricalRuntime::Options opts;
    opts.segmentation.degree = 1;
    opts.segmentation.max_error = 0.5;
    opts.segmentation.max_points_per_segment = 20;
    opts.collect_outputs = true;
    // This test exercises cache mechanics on degree-2 rows; the runtime
    // default min_degree = 3 would route them around the cache.
    opts.solve_cache->min_degree = 0;
    if (!with_cache) opts.solve_cache.reset();
    Result<HistoricalRuntime> rt = HistoricalRuntime::Make(Fig7Spec(), opts);
    EXPECT_TRUE(rt.ok()) << rt.status();
    for (const Tuple& t : trace) {
      EXPECT_TRUE(rt->ProcessTuple("objects", t).ok());
    }
    EXPECT_TRUE(rt->Finish().ok());
    return std::make_pair(rt->TakeOutputSegments(), rt->stats());
  };

  const auto [cached_out, cached_stats] = run(true);
  const auto [uncached_out, uncached_stats] = run(false);

  ASSERT_GT(uncached_out.size(), 0u) << "workload produced no joins";
  ASSERT_EQ(cached_out.size(), uncached_out.size());
  for (size_t i = 0; i < cached_out.size(); ++i) {
    const Segment& a = cached_out[i];
    const Segment& b = uncached_out[i];
    EXPECT_EQ(a.key, b.key) << "segment " << i;
    EXPECT_EQ(a.range, b.range) << "segment " << i;
    EXPECT_EQ(a.attributes, b.attributes) << "segment " << i;
    EXPECT_EQ(a.unmodeled, b.unmodeled) << "segment " << i;
  }
  // The disabled runtime reports no cache traffic; the enabled one
  // counted every row solve as a hit or a miss.
  EXPECT_EQ(uncached_stats.solve_cache_hits, 0u);
  EXPECT_EQ(uncached_stats.solve_cache_misses, 0u);
  EXPECT_GT(cached_stats.solve_cache_hits + cached_stats.solve_cache_misses,
            0u);
}

TEST(SolveCacheDeterminismTest, SegmentReplayHitsTheCache) {
  // Pushing one fitted segment list twice re-solves identical difference
  // polynomials: pass 2 should be answered from the cache.
  MovingObjectOptions gen;
  gen.num_objects = 8;
  gen.tuple_rate = 200.0;
  gen.tuples_per_segment = 20;
  gen.area = 1000.0;
  gen.noise = 0.0;
  const std::vector<Tuple> trace = MovingObjectGenerator(gen).Generate(2000);

  HistoricalRuntime::Options opts;
  opts.segmentation.degree = 1;
  opts.segmentation.max_error = 0.5;
  opts.segmentation.max_points_per_segment = 20;
  opts.collect_outputs = false;
  // Replay rows are degree 2; drop the runtime min_degree policy so the
  // replay actually goes through the cache under test.
  opts.solve_cache->min_degree = 0;
  StreamSpec stream = MovingObjectGenerator::MakeStreamSpec("objects", 10.0);
  MultiAttributeSegmenter modeler(stream, opts.segmentation);
  std::vector<Segment> segments;
  for (const Tuple& t : trace) {
    Result<std::optional<Segment>> r = modeler.Add(t);
    ASSERT_TRUE(r.ok());
    if (r->has_value()) segments.push_back(std::move(**r));
  }
  ASSERT_GT(segments.size(), 0u);

  Result<HistoricalRuntime> rt = HistoricalRuntime::Make(Fig7Spec(), opts);
  ASSERT_TRUE(rt.ok()) << rt.status();
  for (const Segment& s : segments) {
    ASSERT_TRUE(rt->ProcessSegment("objects", s).ok());
  }
  const uint64_t pass1_hits = rt->stats().solve_cache_hits;
  const uint64_t pass1_misses = rt->stats().solve_cache_misses;
  for (const Segment& s : segments) {
    ASSERT_TRUE(rt->ProcessSegment("objects", s).ok());
  }
  ASSERT_TRUE(rt->Finish().ok());
  const uint64_t pass2_hits = rt->stats().solve_cache_hits - pass1_hits;
  const uint64_t pass2_misses =
      rt->stats().solve_cache_misses - pass1_misses;
  ASSERT_GT(pass2_hits + pass2_misses, 0u);
  // Pass 2's rows are exact repeats of pass 1's: expect a dominant hit
  // rate (new cross-pass segment pairs contribute the few misses).
  EXPECT_GT(pass2_hits, pass2_misses);
}

}  // namespace
}  // namespace pulse