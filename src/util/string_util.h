#ifndef PULSE_UTIL_STRING_UTIL_H_
#define PULSE_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace pulse {

/// Splits `input` on `delim`; empty fields are preserved.
std::vector<std::string> SplitString(std::string_view input, char delim);

/// Joins `parts` with `delim`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view s);

/// Strict double parse of the full string; fails on trailing garbage.
Result<double> ParseDouble(std::string_view s);

/// Strict int64 parse of the full string; fails on trailing garbage.
Result<int64_t> ParseInt64(std::string_view s);

/// Formats a double compactly (up to 12 significant digits, no trailing
/// zeros), for CSV output and bench reports.
std::string FormatDouble(double v);

}  // namespace pulse

#endif  // PULSE_UTIL_STRING_UTIL_H_
