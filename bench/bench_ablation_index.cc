// Ablation A4: segment indexing (the paper's future-work extension,
// Section VII — "segment indexing techniques to process highly segmented
// datasets"). Compares the continuous join's linear-scan partner probing
// against the time-interval SegmentIndex as the number of stored segments
// grows (many entities, heavily fragmented models).
#include <cstdio>

#include "bench_util.h"
#include "core/operators/join.h"
#include "util/rng.h"

namespace pulse {
namespace {

std::vector<Segment> MakeSegments(size_t num_keys, size_t per_key,
                                  double seg_len) {
  // Interleaved per-key timelines: key k's i-th segment covers
  // [i*len, (i+1)*len) — a highly segmented multi-entity stream.
  std::vector<Segment> out;
  Rng rng(7);
  for (size_t i = 0; i < per_key; ++i) {
    for (size_t k = 0; k < num_keys; ++k) {
      Segment s(static_cast<Key>(k),
                Interval::ClosedOpen(i * seg_len, (i + 1) * seg_len));
      s.id = NextSegmentId();
      s.set_attribute("x", Polynomial({rng.Uniform(0.0, 100.0),
                                       rng.Uniform(-1.0, 1.0)}));
      out.push_back(std::move(s));
    }
  }
  return out;
}

double RunJoin(bool use_index, const std::vector<Segment>& segments,
               double window) {
  Predicate pred = Predicate::Comparison(ComparisonTerm::Simple(
      AttrRef::Left("x"), CmpOp::kLt,
      Operand::Attribute(AttrRef::Right("x"))));
  PulseJoinOptions opts;
  opts.window_seconds = window;
  opts.match_keys = true;
  opts.use_segment_index = use_index;
  PulseJoin join("j", pred, opts);
  SegmentBatch out;
  return bench::MeasureSeconds([&] {
    for (size_t i = 0; i < segments.size(); ++i) {
      out.clear();
      (void)join.Process(i % 2, segments[i], &out);
    }
  });
}

}  // namespace
}  // namespace pulse

int main() {
  using namespace pulse;
  std::printf(
      "Ablation A4: segment-indexed join probing vs linear scan\n"
      "(equi-key join over heavily segmented multi-entity state)\n");
  bench::SeriesTable table(
      "A4: join probe cost vs entity count (window holds all segments)",
      "num_keys", {"scan_s", "indexed_s", "scan/indexed"});
  for (size_t num_keys : {10, 50, 100, 200, 400}) {
    const std::vector<Segment> segments =
        MakeSegments(num_keys, /*per_key=*/200, /*seg_len=*/1.0);
    const double window = 20.0;  // ~20*num_keys segments live per side
    const double scan_s = RunJoin(false, segments, window);
    const double index_s = RunJoin(true, segments, window);
    table.AddRow(static_cast<double>(num_keys),
                 {scan_s, index_s, scan_s / index_s});
  }
  table.Print();
  std::printf(
      "\nReading: the linear scan examines every live partner segment per "
      "arrival (cost grows with the\nkey count); the interval index "
      "examines only time-overlapping candidates — the win the paper\n"
      "anticipated for highly segmented datasets.\n");
  return 0;
}
