#include "workload/queries.h"

namespace pulse {

Result<QuerySpec::NodeId> AddMacdQuery(QuerySpec* spec,
                                       const MacdParams& params) {
  PULSE_ASSIGN_OR_RETURN(StreamSpec stream, spec->stream(params.stream));
  (void)stream;

  AggregateSpec short_agg;
  short_agg.fn = AggFn::kAvg;
  short_agg.attribute = "price";
  short_agg.output_attribute = "ap";
  short_agg.window_seconds = params.short_window;
  short_agg.slide_seconds = params.slide;
  short_agg.per_key = true;
  const QuerySpec::NodeId s = spec->AddAggregate(
      "macd.short", QuerySpec::Input::Stream(params.stream), short_agg);

  AggregateSpec long_agg = short_agg;
  long_agg.window_seconds = params.long_window;
  const QuerySpec::NodeId l = spec->AddAggregate(
      "macd.long", QuerySpec::Input::Stream(params.stream), long_agg);

  // Join on symbol where the short-term average exceeds the long-term:
  // "on (S.Symbol = L.Symbol) where S.ap > L.ap".
  JoinSpec join;
  join.predicate = Predicate::Comparison(ComparisonTerm::Simple(
      AttrRef::Left("ap"), CmpOp::kGt,
      Operand::Attribute(AttrRef::Right("ap"))));
  join.window_seconds = params.join_window;
  join.match_keys = true;
  join.left_prefix = "s.";
  join.right_prefix = "l.";
  const QuerySpec::NodeId j =
      spec->AddJoin("macd.join", QuerySpec::Input::Node(s),
                    QuerySpec::Input::Node(l), join);

  // "S.ap - L.ap as diff".
  MapSpec map;
  map.outputs = {ComputedAttr::Difference("diff", AttrRef::Left("s.ap"),
                                          AttrRef::Left("l.ap"))};
  map.keep_inputs = true;
  return spec->AddMap("macd.diff", QuerySpec::Input::Node(j), map);
}

Result<QuerySpec::NodeId> AddFollowingQuery(QuerySpec* spec,
                                            const FollowingParams& params) {
  PULSE_ASSIGN_OR_RETURN(StreamSpec stream, spec->stream(params.stream));
  (void)stream;

  // Self-join: distinct vessels within pruning distance of each other.
  JoinSpec join;
  join.predicate = Predicate::Comparison(ComparisonTerm::Distance2(
      AttrRef::Left("x"), AttrRef::Left("y"), AttrRef::Right("x"),
      AttrRef::Right("y"), CmpOp::kLt,
      params.prune_factor * params.threshold));
  join.window_seconds = params.join_window;
  join.require_distinct_keys = true;
  join.left_prefix = "s1.";
  join.right_prefix = "s2.";
  const QuerySpec::NodeId j = spec->AddJoin(
      "following.join", QuerySpec::Input::Stream(params.stream),
      QuerySpec::Input::Stream(params.stream), join);

  // dist^2 between the pair (sqrt substitution, see header).
  MapSpec map;
  map.outputs = {ComputedAttr::Distance2(
      "dist2", AttrRef::Left("s1.x"), AttrRef::Left("s1.y"),
      AttrRef::Left("s2.x"), AttrRef::Left("s2.y"))};
  map.keep_inputs = false;
  const QuerySpec::NodeId m =
      spec->AddMap("following.dist", QuerySpec::Input::Node(j), map);

  // avg(dist^2) per vessel pair over the long window.
  AggregateSpec agg;
  agg.fn = AggFn::kAvg;
  agg.attribute = "dist2";
  agg.output_attribute = "avg_dist2";
  agg.window_seconds = params.avg_window;
  agg.slide_seconds = params.avg_slide;
  agg.per_key = true;
  const QuerySpec::NodeId a =
      spec->AddAggregate("following.avg", QuerySpec::Input::Node(m), agg);

  // HAVING avg(dist) < threshold  ==  avg(dist^2) < threshold^2 (both
  // plans use the squared form; see header note).
  FilterSpec having;
  having.predicate = Predicate::Comparison(ComparisonTerm::Simple(
      AttrRef::Left("avg_dist2"), CmpOp::kLt,
      Operand::Constant(params.threshold * params.threshold)));
  return spec->AddFilter("following.having", QuerySpec::Input::Node(a),
                         having);
}

}  // namespace pulse
