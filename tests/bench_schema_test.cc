// Schema contract for BENCH_*.json documents.
//
// All persisted bench output goes through bench::BenchReport (the one
// writer), and scripts/check.sh's regression gate parses the checked-in
// documents by field name. These tests pin both sides of that contract:
// the writer's document shape (schema_version 2, params object, results
// rows, optional metrics block) and the checked-in files themselves —
// so schema drift fails in ctest instead of silently breaking the gate.
#include "bench_util.h"

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "util/json.h"

namespace pulse {
namespace {

json::Value ParseOrDie(const std::string& text) {
  Result<json::Value> doc = json::Parse(text);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  return doc.ok() ? *doc : json::Value::MakeNull();
}

// Asserts the invariants every BenchReport document obeys. ASSERT_*
// needs a void function, so the parsed value comes back via out-param.
void CheckReportShape(const std::string& text,
                      const std::string& expected_name, json::Value* out) {
  *out = ParseOrDie(text);
  const json::Value& doc = *out;
  EXPECT_TRUE(doc.is_object());
  const json::Value* bench = doc.Find("bench");
  ASSERT_NE(bench, nullptr) << "missing top-level \"bench\"";
  EXPECT_EQ(bench->as_string(), expected_name);
  const json::Value* version = doc.Find("schema_version");
  ASSERT_NE(version, nullptr) << "missing top-level \"schema_version\"";
  EXPECT_EQ(version->as_number(), 2.0);
  const json::Value* params = doc.Find("params");
  ASSERT_NE(params, nullptr) << "missing top-level \"params\"";
  EXPECT_TRUE(params->is_object());
  const json::Value* results = doc.Find("results");
  ASSERT_NE(results, nullptr) << "missing top-level \"results\"";
  EXPECT_TRUE(results->is_array());
  for (const json::Value& row : results->as_array()) {
    EXPECT_TRUE(row.is_object());
  }
}

void ExpectRowFields(const json::Value& doc,
                     const std::vector<std::string>& fields) {
  const json::Value* results = doc.Find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_FALSE(results->as_array().empty());
  for (const json::Value& row : results->as_array()) {
    for (const std::string& field : fields) {
      EXPECT_NE(row.Find(field), nullptr)
          << "results row missing field \"" << field << "\"";
    }
  }
}

TEST(BenchReportTest, EmitsTheVersionedSchema) {
  bench::BenchReport report("unit");
  report.ParamUint("repeats", 3);
  report.ParamDouble("window_seconds", 2.5);
  report.ParamString("workload", "synthetic");
  report.AddRow()
      .String("scenario", "a")
      .Uint("tuples", 10)
      .Double("tuples_per_sec", 123.5)
      .Bool("core_bound", false);
  report.AddRow().String("scenario", "b").Uint("tuples", 20).Double(
      "tuples_per_sec", 456.0);

  json::Value doc;
  ASSERT_NO_FATAL_FAILURE(CheckReportShape(report.ToJson(), "unit", &doc));
  const json::Value* params = doc.Find("params");
  EXPECT_EQ(params->Find("repeats")->as_number(), 3.0);
  EXPECT_EQ(params->Find("window_seconds")->as_number(), 2.5);
  EXPECT_EQ(params->Find("workload")->as_string(), "synthetic");
  const auto& rows = doc.Find("results")->as_array();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].Find("scenario")->as_string(), "a");
  EXPECT_FALSE(rows[0].Find("core_bound")->as_bool());
  EXPECT_EQ(rows[1].Find("tuples_per_sec")->as_number(), 456.0);
  // No AttachMetrics call: the block is absent, not empty.
  EXPECT_EQ(doc.Find("metrics"), nullptr);
}

TEST(BenchReportTest, AttachedMetricsBecomeTheMetricsBlock) {
  obs::MetricsRegistry registry;
  registry.GetCounter("runtime/tuples_in")->Add(7);
  registry.GetHistogram("span/solve/batch")->Record(12);

  bench::BenchReport report("unit");
  report.AddRow().Uint("threads", 1);
  report.AttachMetrics(registry.Snapshot());

  json::Value doc;
  ASSERT_NO_FATAL_FAILURE(CheckReportShape(report.ToJson(), "unit", &doc));
  const json::Value* metrics = doc.Find("metrics");
  if (!obs::kMetricsEnabled) {
    // Compiled-out registry: snapshots are empty and the block is omitted.
    EXPECT_EQ(metrics, nullptr);
    return;
  }
  ASSERT_NE(metrics, nullptr);
  const json::Value* counters = metrics->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->Find("runtime/tuples_in")->as_number(), 7.0);
  const json::Value* hists = metrics->Find("histograms");
  ASSERT_NE(hists, nullptr);
  const json::Value* batch = hists->Find("span/solve/batch");
  ASSERT_NE(batch, nullptr);
  EXPECT_EQ(batch->Find("count")->as_number(), 1.0);
}

TEST(BenchReportTest, EmptySnapshotIsOmitted) {
  obs::MetricsRegistry registry;
  bench::BenchReport report("unit");
  report.AddRow().Uint("threads", 1);
  report.AttachMetrics(registry.Snapshot());
  json::Value doc;
  ASSERT_NO_FATAL_FAILURE(CheckReportShape(report.ToJson(), "unit", &doc));
  EXPECT_EQ(doc.Find("metrics"), nullptr);
}

// ---------------------------------------------------------------------------
// Checked-in documents: the files scripts/check.sh's bench gate parses.
// Regenerate with `cd /root/repo && ./build/bench/bench_<name>` after
// intentional schema or workload changes.

std::string ReadFileOrEmpty(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

TEST(CheckedInBenchJsonTest, SolverHotpathMatchesGateSchema) {
  const std::string text =
      ReadFileOrEmpty(std::string(PULSE_REPO_ROOT) +
                      "/BENCH_solver_hotpath.json");
  ASSERT_FALSE(text.empty()) << "BENCH_solver_hotpath.json missing";
  json::Value doc;
  ASSERT_NO_FATAL_FAILURE(CheckReportShape(text, "solver_hotpath", &doc));
  // Field names the check.sh regression gate keys on.
  ExpectRowFields(doc, {"scenario", "tuples", "seconds", "tuples_per_sec",
                        "calibration_ops_per_sec", "solves",
                        "poly_heap_allocations", "cache_hits",
                        "cache_misses", "cache_hit_rate"});
  const json::Value* params = doc.Find("params");
  EXPECT_NE(params->Find("repeats"), nullptr);
  EXPECT_NE(params->Find("fig7_prechange_tuples_per_sec"), nullptr);
  // Which batched-kernel tier produced the numbers (ISSUE 7): one of the
  // SimdLevelName strings — "scalar", "sse2", "neon", "avx2".
  const json::Value* kernel = params->Find("solver_kernel");
  ASSERT_NE(kernel, nullptr);
  const std::string name = kernel->as_string();
  EXPECT_TRUE(name == "scalar" || name == "sse2" || name == "neon" ||
              name == "avx2")
      << "unexpected solver_kernel: " << name;
}

TEST(CheckedInBenchJsonTest, ServingThroughputMatchesGateSchema) {
  const std::string text =
      ReadFileOrEmpty(std::string(PULSE_REPO_ROOT) +
                      "/BENCH_serving_throughput.json");
  ASSERT_FALSE(text.empty()) << "BENCH_serving_throughput.json missing";
  json::Value doc;
  ASSERT_NO_FATAL_FAILURE(
      CheckReportShape(text, "serving_throughput", &doc));
  ExpectRowFields(doc, {"policy", "num_shards", "seconds", "tuples_per_sec",
                        "sent", "accepted", "dropped", "shed",
                        "output_segments", "admit_p99_ns", "core_bound"});
  const json::Value* params = doc.Find("params");
  EXPECT_NE(params->Find("sessions"), nullptr);
  EXPECT_NE(params->Find("queue_capacity"), nullptr);
  EXPECT_NE(params->Find("hardware_concurrency"), nullptr);
  // The acceptance bar for the serving layer: at least 16 concurrent
  // sessions sustained, one row per policy plus the admission run, plus
  // the sharded pair (1-shard and multi-shard multikey scenarios).
  EXPECT_GE(params->Find("sessions")->as_number(), 16.0);
  const auto& rows = doc.Find("results")->as_array();
  EXPECT_GE(rows.size(), 6u);
  bool saw_sharded = false;
  for (const json::Value& row : rows) {
    if (row.Find("num_shards")->as_number() > 1.0) saw_sharded = true;
  }
  EXPECT_TRUE(saw_sharded) << "no multi-shard serving scenario checked in";
  // The shard pool publishes per-shard mirrors plus plain-name rollups
  // into the server registry; the attached metrics block must show the
  // shard/<i>/... naming contract of docs/SHARDING.md.
  const json::Value* metrics = doc.Find("metrics");
  ASSERT_NE(metrics, nullptr) << "metrics block missing";
  const json::Value* counters = metrics->Find("counters");
  ASSERT_NE(counters, nullptr);
  bool saw_shard_metric = false;
  for (const auto& [name, value] : counters->as_object()) {
    if (name.rfind("shard/0/", 0) == 0) saw_shard_metric = true;
  }
  EXPECT_TRUE(saw_shard_metric)
      << "no shard/0/... mirror counters in the metrics block";
}

TEST(CheckedInBenchJsonTest, ParallelScalingMatchesGateSchema) {
  const std::string text =
      ReadFileOrEmpty(std::string(PULSE_REPO_ROOT) +
                      "/BENCH_parallel_scaling.json");
  ASSERT_FALSE(text.empty()) << "BENCH_parallel_scaling.json missing";
  json::Value doc;
  ASSERT_NO_FATAL_FAILURE(CheckReportShape(text, "parallel_scaling", &doc));
  ExpectRowFields(doc, {"mode", "threads", "num_shards", "seconds",
                        "tuples_per_sec", "speedup", "solves",
                        "tasks_spawned", "core_bound"});
  const json::Value* params = doc.Find("params");
  EXPECT_NE(params->Find("workload"), nullptr);
  EXPECT_NE(params->Find("sharded_workload"), nullptr);
  EXPECT_NE(params->Find("hardware_concurrency"), nullptr);
  // Both sweeps must be present: the solver-thread sweep and the
  // shard-per-core sweep with at least two distinct shard counts.
  std::set<double> shard_counts;
  bool saw_threads_mode = false;
  for (const json::Value& row : doc.Find("results")->as_array()) {
    if (row.Find("mode")->as_string() == "threads") saw_threads_mode = true;
    if (row.Find("mode")->as_string() == "shards") {
      shard_counts.insert(row.Find("num_shards")->as_number());
    }
  }
  EXPECT_TRUE(saw_threads_mode);
  EXPECT_GE(shard_counts.size(), 2u)
      << "sharded sweep needs >= 2 distinct shard counts";
}

TEST(CheckedInBenchJsonTest, StorageMatchesGateSchema) {
  const std::string text = ReadFileOrEmpty(std::string(PULSE_REPO_ROOT) +
                                           "/BENCH_storage.json");
  ASSERT_FALSE(text.empty()) << "BENCH_storage.json missing";
  json::Value doc;
  ASSERT_NO_FATAL_FAILURE(CheckReportShape(text, "storage", &doc));
  ExpectRowFields(doc, {"scenario", "log_records", "log_bytes", "seconds",
                        "records_per_sec", "queries_per_sec", "speedup",
                        "calibration_ops_per_sec", "core_bound"});
  const json::Value* params = doc.Find("params");
  EXPECT_NE(params->Find("repeats"), nullptr);
  EXPECT_NE(params->Find("epoch_length"), nullptr);
  EXPECT_NE(params->Find("query_leaves"), nullptr);
  EXPECT_NE(params->Find("hardware_concurrency"), nullptr);
  // The storage acceptance bar: recovery timed at >= 3 distinct log
  // sizes (the recovery-time-vs-log-size curve), and the pre-aggregated
  // tree at least 5x faster than the per-query timeline replay.
  std::set<double> recover_sizes;
  double tree_speedup = 0.0;
  bool saw_replay = false;
  for (const json::Value& row : doc.Find("results")->as_array()) {
    const std::string scenario = row.Find("scenario")->as_string();
    if (scenario == "recover") {
      recover_sizes.insert(row.Find("log_records")->as_number());
      EXPECT_GT(row.Find("records_per_sec")->as_number(), 0.0);
    } else if (scenario == "tree_query") {
      tree_speedup = row.Find("speedup")->as_number();
    } else if (scenario == "replay_query") {
      saw_replay = true;
    }
  }
  EXPECT_GE(recover_sizes.size(), 3u)
      << "recovery curve needs >= 3 distinct log sizes";
  EXPECT_TRUE(saw_replay) << "no replay_query baseline row";
  EXPECT_GE(tree_speedup, 5.0)
      << "pre-aggregated tree must be >= 5x the replay baseline";
}

TEST(CheckedInBenchJsonTest, TelemetryMatchesGateSchema) {
  const std::string text = ReadFileOrEmpty(std::string(PULSE_REPO_ROOT) +
                                           "/BENCH_telemetry.json");
  ASSERT_FALSE(text.empty()) << "BENCH_telemetry.json missing";
  json::Value doc;
  ASSERT_NO_FATAL_FAILURE(CheckReportShape(text, "telemetry", &doc));
  ExpectRowFields(doc, {"query", "realization", "tuples", "seconds",
                        "tuples_per_sec", "attacks", "detected", "p50_ms",
                        "p95_ms", "p99_ms", "core_bound"});
  const json::Value* params = doc.Find("params");
  EXPECT_NE(params->Find("hosts"), nullptr);
  EXPECT_NE(params->Find("tuple_rate"), nullptr);
  EXPECT_NE(params->Find("epoch_seconds"), nullptr);
  EXPECT_NE(params->Find("hardware_concurrency"), nullptr);
  // Detection-latency percentiles for at least 3 distinct detection
  // queries, each measured on both realizations, with every scheduled
  // attack detected (the thresholds sit between the baseline band and
  // the attack peak, so a miss is a pipeline bug, not tuning).
  std::set<std::string> queries;
  std::set<std::string> realizations;
  for (const json::Value& row : doc.Find("results")->as_array()) {
    queries.insert(row.Find("query")->as_string());
    realizations.insert(row.Find("realization")->as_string());
    EXPECT_EQ(row.Find("detected")->as_number(),
              row.Find("attacks")->as_number())
        << row.Find("query")->as_string() << "/"
        << row.Find("realization")->as_string() << " missed attacks";
    EXPECT_GT(row.Find("attacks")->as_number(), 0.0);
    EXPECT_LE(row.Find("p50_ms")->as_number(),
              row.Find("p99_ms")->as_number());
  }
  EXPECT_GE(queries.size(), 3u)
      << "need latency percentiles for >= 3 detection queries";
  EXPECT_TRUE(realizations.count("discrete") &&
              realizations.count("pulse"))
      << "both realizations must be benchmarked";
}

TEST(CheckedInBenchJsonTest, PrecisionMatchesGateSchema) {
  const std::string text = ReadFileOrEmpty(std::string(PULSE_REPO_ROOT) +
                                           "/BENCH_precision.json");
  ASSERT_FALSE(text.empty()) << "BENCH_precision.json missing";
  json::Value doc;
  ASSERT_NO_FATAL_FAILURE(CheckReportShape(text, "precision", &doc));
  ExpectRowFields(doc, {"tier", "error_scale", "output_bound",
                        "live_seconds", "tuples_per_sec", "throughput_ratio",
                        "settle_seconds", "provisional", "confirmed",
                        "retracted", "deferred_items", "core_bound"});
  const json::Value* params = doc.Find("params");
  EXPECT_NE(params->Find("workload"), nullptr);
  EXPECT_NE(params->Find("tight_max_error"), nullptr);
  EXPECT_NE(params->Find("ladder_tiers"), nullptr);
  EXPECT_NE(params->Find("hardware_concurrency"), nullptr);
  // The precision-lever acceptance bar (docs/PRECISION.md): one row per
  // tier including the exact baseline, live throughput at the widest
  // tier >= 1.3x tier 0, and conservation on every widened row
  // (provisional == confirmed + retracted once settled).
  const auto& rows = doc.Find("results")->as_array();
  ASSERT_GE(rows.size(), 3u) << "need tier 0 plus >= 2 widened tiers";
  double tier0_tps = 0.0;
  double widest_ratio = 0.0;
  for (const json::Value& row : rows) {
    const double tier = row.Find("tier")->as_number();
    if (tier == 0.0) {
      tier0_tps = row.Find("tuples_per_sec")->as_number();
      EXPECT_EQ(row.Find("provisional")->as_number(), 0.0)
          << "tier 0 must not emit provisionals";
    } else {
      EXPECT_GT(row.Find("error_scale")->as_number(), 1.0);
      EXPECT_GT(row.Find("output_bound")->as_number(), 0.0);
      EXPECT_EQ(row.Find("provisional")->as_number(),
                row.Find("confirmed")->as_number() +
                    row.Find("retracted")->as_number())
          << "conservation violated at tier " << tier;
    }
    widest_ratio = row.Find("throughput_ratio")->as_number();
  }
  EXPECT_GT(tier0_tps, 0.0);
  EXPECT_GE(widest_ratio, 1.3)
      << "widest tier must sustain >= 1.3x the tier-0 live throughput";
}

}  // namespace
}  // namespace pulse
