#ifndef PULSE_SERVE_INGEST_QUEUE_H_
#define PULSE_SERVE_INGEST_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

#include "engine/tuple.h"
#include "model/segment.h"

namespace pulse {
namespace serve {

/// What a session does when a stream's ingest queue is full
/// (docs/SERVING.md discusses when each policy is appropriate).
enum class BackpressurePolicy : uint8_t {
  /// Producer (the session reader thread) waits for space. Lossless:
  /// backpressure propagates through the transport to the client.
  kBlock = 0,
  /// Evict the oldest queued items to admit the newest (freshness over
  /// completeness; the client learns via a kDroppedOldest flow frame).
  kDropOldest = 1,
  /// Reject the arriving items (completeness of what was admitted over
  /// freshness; the client learns via a kShed flow frame).
  kShed = 2,
};

const char* BackpressurePolicyToString(BackpressurePolicy policy);

/// One admitted ingest work item. `seq` is a session-global admission
/// sequence number: the reader thread (single producer for all of a
/// session's queues) assigns consecutive values across streams, and the
/// worker replays items in ascending seq — so micro-batching across
/// per-stream queues preserves the client's arrival order exactly.
///
/// The same item doubles as the cross-shard exchange record
/// (docs/SHARDING.md): the shard router stamps `client` and `stream`
/// so a shard worker shared by many sessions can dispatch into the
/// right client runtime, and `is_finish` marks the end-of-input
/// sentinel a client pushes down every shard lane before merging.
struct IngestItem {
  uint64_t seq = 0;
  /// Shard exchange only: owning client id (ShardClient) and the index
  /// of the target stream in the pool's sorted stream-name table.
  uint64_t client = 0;
  uint32_t stream = 0;
  /// Precision tier stamped at admission by the session reader
  /// (adaptive sessions only; docs/PRECISION.md). The worker applies
  /// tier changes at item boundaries, so tier transitions are a pure
  /// function of the admission sequence — deterministic for a given
  /// arrival order. Always 0 on the shard exchange and in static mode.
  uint8_t tier = 0;
  bool is_segment = false;
  /// Shard exchange only: finish sentinel (no payload).
  bool is_finish = false;
  Tuple tuple;      // meaningful when !is_segment
  Segment segment;  // meaningful when is_segment
};

/// Producer-side outcome of an admission attempt.
enum class PushResult : uint8_t {
  kAccepted = 0,
  /// Queue full under kBlock: nothing was enqueued; the caller should
  /// notify the client (kPaused) and then call PushBlocking.
  kWouldBlock = 1,
  /// Accepted after evicting `*dropped` oldest items (kDropOldest).
  kDroppedOldest = 2,
  /// Rejected (kShed), nothing enqueued.
  kShed = 3,
  /// Queue closed (session shutting down), nothing enqueued.
  kClosed = 4,
};

/// Edge-triggered wakeup shared by all of a session's queues: producers
/// Notify() after every push, the consumer Wait()s on an epoch it read
/// before scanning the queues empty (the classic eventcount, so a push
/// between scan and wait is never lost).
class WorkSignal {
 public:
  uint64_t epoch() const;
  void Notify();
  /// Blocks until the epoch advances past `seen`; returns the new epoch.
  uint64_t Wait(uint64_t seen);

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t epoch_ = 0;
};

/// Bounded single-producer / single-consumer ingest queue for one
/// session stream. The mutex is uncontended in steady state (producer
/// and consumer touch it briefly per item); bounding — not lock
/// freedom — is the load-bearing property: a slow solver surfaces as
/// explicit backpressure at admission instead of unbounded memory.
class IngestQueue {
 public:
  /// `signal` (not owned, may be null) is notified on every successful
  /// push so the session worker can sleep across all queues at once.
  IngestQueue(size_t capacity, WorkSignal* signal);

  /// Non-blocking admission under `policy`. `*item` is consumed (moved
  /// from) only when the result says it was enqueued — on kWouldBlock /
  /// kShed / kClosed it is left intact so the caller can retry with
  /// PushBlocking. On kDroppedOldest, `*dropped` (may be null) receives
  /// the eviction count.
  PushResult TryPush(IngestItem* item, BackpressurePolicy policy,
                     uint64_t* dropped);

  /// kBlock slow path: waits for space (or Close), then enqueues.
  /// `*blocked_ns` (may be null) receives the wait time. Returns false
  /// when the queue was closed before space appeared.
  bool PushBlocking(IngestItem item, uint64_t* blocked_ns);

  /// Consumer side: copies the head's seq (and, when `is_segment` /
  /// `tier` are non-null, its payload kind and precision tier) without
  /// popping; false when empty. (The min-seq merge across a session's
  /// queues needs only this, not the payload; the micro-batcher uses
  /// the tier to keep a batch from crossing a tier change.)
  bool PeekSeq(uint64_t* seq, bool* is_segment = nullptr,
               uint8_t* tier = nullptr) const;

  /// Pops the head into `*out`; false when empty.
  bool Pop(IngestItem* out);

  size_t size() const;
  size_t capacity() const { return capacity_; }

  /// Unblocks producers and makes all further pushes fail with kClosed.
  /// Already-queued items stay poppable (drain reads them out).
  void Close();
  bool closed() const;

 private:
  const size_t capacity_;
  WorkSignal* signal_;
  mutable std::mutex mu_;
  std::condition_variable space_cv_;
  std::deque<IngestItem> items_;
  bool closed_ = false;
};

}  // namespace serve
}  // namespace pulse

#endif  // PULSE_SERVE_INGEST_QUEUE_H_
