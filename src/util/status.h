#ifndef PULSE_UTIL_STATUS_H_
#define PULSE_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace pulse {

/// Error categories used across the library. The set intentionally mirrors
/// the coarse-grained codes used by storage engines (RocksDB/Arrow style):
/// callers branch on the category, messages carry the detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kUnimplemented,
  kNumericError,   // solver divergence, ill-conditioned systems, NaNs
  kCapacity,       // queue overflow / resource exhaustion
  kIoError,
  kInternal,
};

/// Returns a stable human-readable name for `code` ("OK", "InvalidArgument",
/// ...).
const char* StatusCodeToString(StatusCode code);

/// Result of an operation that can fail without a value. Cheap to copy in
/// the OK case (no allocation). Functions on hot paths return Status (or
/// Result<T>) instead of throwing: exceptions are not used in this library.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status NumericError(std::string msg) {
    return Status(StatusCode::kNumericError, std::move(msg));
  }
  static Status Capacity(std::string msg) {
    return Status(StatusCode::kCapacity, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK Status to the caller. Use inside functions returning
/// Status.
#define PULSE_RETURN_IF_ERROR(expr)           \
  do {                                        \
    ::pulse::Status _st = (expr);             \
    if (!_st.ok()) return _st;                \
  } while (false)

}  // namespace pulse

#endif  // PULSE_UTIL_STATUS_H_
