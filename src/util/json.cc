#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace pulse {
namespace json {

// ---------------------------------------------------------------------
// Writer

std::string Writer::Escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (const char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Writer::Newline() {
  if (indent_ <= 0) return;
  out_ += '\n';
  out_.append(stack_.size() * static_cast<size_t>(indent_), ' ');
}

void Writer::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already emitted the separator
  }
  if (!stack_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
    Newline();
  }
}

Writer& Writer::BeginObject() {
  BeforeValue();
  out_ += '{';
  stack_.push_back(true);
  has_element_.push_back(false);
  return *this;
}

Writer& Writer::EndObject() {
  const bool had = !has_element_.empty() && has_element_.back();
  stack_.pop_back();
  has_element_.pop_back();
  if (had) Newline();
  out_ += '}';
  return *this;
}

Writer& Writer::BeginArray() {
  BeforeValue();
  out_ += '[';
  stack_.push_back(false);
  has_element_.push_back(false);
  return *this;
}

Writer& Writer::EndArray() {
  const bool had = !has_element_.empty() && has_element_.back();
  stack_.pop_back();
  has_element_.pop_back();
  if (had) Newline();
  out_ += ']';
  return *this;
}

Writer& Writer::Key(const std::string& key) {
  if (has_element_.back()) out_ += ',';
  has_element_.back() = true;
  Newline();
  out_ += '"';
  out_ += Escape(key);
  out_ += indent_ > 0 ? "\": " : "\":";
  pending_key_ = true;
  return *this;
}

Writer& Writer::String(const std::string& value) {
  BeforeValue();
  out_ += '"';
  out_ += Escape(value);
  out_ += '"';
  return *this;
}

Writer& Writer::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    // JSON has no inf/nan; emit null so documents stay parseable.
    out_ += "null";
    return *this;
  }
  char buf[32];
  // %.17g round-trips doubles; trim to %g-style readability when exact.
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  out_ += buf;
  return *this;
}

Writer& Writer::Uint(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

Writer& Writer::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

Writer& Writer::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

Writer& Writer::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

std::string Writer::Take() {
  if (indent_ > 0) out_ += '\n';
  std::string out = std::move(out_);
  out_.clear();
  return out;
}

// ---------------------------------------------------------------------
// Value

const Value* Value::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

Value Value::MakeNull() { return Value(); }

Value Value::MakeBool(bool b) {
  Value v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

Value Value::MakeNumber(double d) {
  Value v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

Value Value::MakeString(std::string s) {
  Value v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

Value Value::MakeArray(std::vector<Value> items) {
  Value v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

Value Value::MakeObject(std::map<std::string, Value> members) {
  Value v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

// ---------------------------------------------------------------------
// Parser

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Value> Run() {
    PULSE_ASSIGN_OR_RETURN(Value v, ParseValue());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("json: trailing garbage at offset " +
                                     std::to_string(pos_));
    }
    return v;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Status::InvalidArgument(std::string("json: expected '") + c +
                                     "' at offset " + std::to_string(pos_));
    }
    return Status::OK();
  }

  Result<Value> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("json: unexpected end of input");
    }
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        PULSE_ASSIGN_OR_RETURN(std::string s, ParseString());
        return Value::MakeString(std::move(s));
      }
      case 't':
        PULSE_RETURN_IF_ERROR(ExpectWord("true"));
        return Value::MakeBool(true);
      case 'f':
        PULSE_RETURN_IF_ERROR(ExpectWord("false"));
        return Value::MakeBool(false);
      case 'n':
        PULSE_RETURN_IF_ERROR(ExpectWord("null"));
        return Value::MakeNull();
      default:
        return ParseNumber();
    }
  }

  Status ExpectWord(const char* word) {
    const size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) {
      return Status::InvalidArgument("json: bad literal at offset " +
                                     std::to_string(pos_));
    }
    pos_ += len;
    return Status::OK();
  }

  Result<Value> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument("json: bad value at offset " +
                                     std::to_string(pos_));
    }
    const std::string tok = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Status::InvalidArgument("json: bad number '" + tok + "'");
    }
    return Value::MakeNumber(d);
  }

  Result<std::string> ParseString() {
    PULSE_RETURN_IF_ERROR(Expect('"'));
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Status::InvalidArgument("json: truncated \\u escape");
          }
          const unsigned long code =
              std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16);
          pos_ += 4;
          // Snapshot names are ASCII; non-ASCII escapes degrade to '?'.
          out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          return Status::InvalidArgument("json: bad escape");
      }
    }
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("json: unterminated string");
    }
    ++pos_;  // closing quote
    return out;
  }

  Result<Value> ParseArray() {
    PULSE_RETURN_IF_ERROR(Expect('['));
    std::vector<Value> items;
    SkipSpace();
    if (Consume(']')) return Value::MakeArray(std::move(items));
    for (;;) {
      PULSE_ASSIGN_OR_RETURN(Value v, ParseValue());
      items.push_back(std::move(v));
      if (Consume(',')) continue;
      PULSE_RETURN_IF_ERROR(Expect(']'));
      return Value::MakeArray(std::move(items));
    }
  }

  Result<Value> ParseObject() {
    PULSE_RETURN_IF_ERROR(Expect('{'));
    std::map<std::string, Value> members;
    SkipSpace();
    if (Consume('}')) return Value::MakeObject(std::move(members));
    for (;;) {
      SkipSpace();
      PULSE_ASSIGN_OR_RETURN(std::string key, ParseString());
      PULSE_RETURN_IF_ERROR(Expect(':'));
      PULSE_ASSIGN_OR_RETURN(Value v, ParseValue());
      members.emplace(std::move(key), std::move(v));
      if (Consume(',')) continue;
      PULSE_RETURN_IF_ERROR(Expect('}'));
      return Value::MakeObject(std::move(members));
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Value> Parse(const std::string& text) { return Parser(text).Run(); }

}  // namespace json
}  // namespace pulse
