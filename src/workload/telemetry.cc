#include "workload/telemetry.h"

#include <algorithm>

#include "util/logging.h"

namespace pulse {

namespace {

// Metric indices into the per-host track array.
constexpr size_t kSyn = 0;
constexpr size_t kAck = 1;
constexpr size_t kIn = 2;
constexpr size_t kPorts = 3;
constexpr size_t kFanout = 4;

size_t MetricOf(AttackEvent::Kind kind) {
  switch (kind) {
    case AttackEvent::Kind::kSynFlood:
      return kSyn;
    case AttackEvent::Kind::kPortScan:
      return kPorts;
    case AttackEvent::Kind::kDdosVictim:
      return kIn;
    case AttackEvent::Kind::kSuperSpreader:
      return kFanout;
  }
  return kSyn;
}

}  // namespace

TelemetryGenerator::TelemetryGenerator(TelemetryOptions options)
    : options_(options), rng_(options.seed) {
  PULSE_CHECK(options_.num_hosts > 0);
  PULSE_CHECK(options_.tuple_rate > 0.0);
  PULSE_CHECK(options_.attack_duration > 2.0 * options_.ramp_seconds);
  now_ = options_.start_time;
  baseline_.resize(options_.num_hosts);
  for (auto& levels : baseline_) {
    for (double& level : levels) {
      level = rng_.Uniform(
          std::max(0.0, options_.baseline - options_.baseline_jitter),
          options_.baseline + options_.baseline_jitter);
    }
  }
  // Schedule attacks on distinct hosts so ground truth is unambiguous
  // (one attacked metric per host). Onsets land early enough that the
  // attack completes inside the trace.
  const size_t total = options_.syn_floods + options_.port_scans +
                       options_.ddos_victims + options_.super_spreaders;
  PULSE_CHECK(total <= options_.num_hosts);
  std::vector<size_t> hosts(options_.num_hosts);
  for (size_t i = 0; i < hosts.size(); ++i) hosts[i] = i;
  for (size_t i = 0; i < total; ++i) {
    const size_t j = static_cast<size_t>(
        rng_.UniformInt(static_cast<int64_t>(i),
                        static_cast<int64_t>(hosts.size()) - 1));
    std::swap(hosts[i], hosts[j]);
  }
  const double latest_onset = std::max(
      0.0, options_.duration - options_.attack_duration - 1.0);
  size_t next = 0;
  auto schedule = [&](AttackEvent::Kind kind, size_t count) {
    for (size_t i = 0; i < count; ++i) {
      AttackEvent ev;
      ev.kind = kind;
      ev.host = static_cast<int64_t>(hosts[next++]);
      ev.onset = options_.start_time +
                 rng_.Uniform(0.1 * options_.duration, latest_onset);
      ev.end = ev.onset + options_.attack_duration;
      attacks_.push_back(ev);
    }
  };
  schedule(AttackEvent::Kind::kSynFlood, options_.syn_floods);
  schedule(AttackEvent::Kind::kPortScan, options_.port_scans);
  schedule(AttackEvent::Kind::kDdosVictim, options_.ddos_victims);
  schedule(AttackEvent::Kind::kSuperSpreader, options_.super_spreaders);
}

std::shared_ptr<const Schema> TelemetryGenerator::TupleSchema() {
  return Schema::Make({{"id", ValueType::kInt64},
                       {"syn_rate", ValueType::kDouble},
                       {"syn_rate_d", ValueType::kDouble},
                       {"ack_rate", ValueType::kDouble},
                       {"ack_rate_d", ValueType::kDouble},
                       {"in_rate", ValueType::kDouble},
                       {"in_rate_d", ValueType::kDouble},
                       {"port_spread", ValueType::kDouble},
                       {"port_spread_d", ValueType::kDouble},
                       {"fanout", ValueType::kDouble},
                       {"fanout_d", ValueType::kDouble}});
}

StreamSpec TelemetryGenerator::MakeStreamSpec(std::string name,
                                              double segment_horizon) {
  StreamSpec spec;
  spec.name = std::move(name);
  spec.schema = TupleSchema();
  spec.key_field = "id";
  spec.models = {{"syn_rate", {"syn_rate", "syn_rate_d"}},
                 {"ack_rate", {"ack_rate", "ack_rate_d"}},
                 {"in_rate", {"in_rate", "in_rate_d"}},
                 {"port_spread", {"port_spread", "port_spread_d"}},
                 {"fanout", {"fanout", "fanout_d"}}};
  spec.segment_horizon = segment_horizon;
  return spec;
}

TelemetryGenerator::MetricSample TelemetryGenerator::Eval(
    size_t host, size_t metric, double t) const {
  MetricSample s;
  s.value = baseline_[host][metric];
  for (const AttackEvent& ev : attacks_) {
    if (ev.host != static_cast<int64_t>(host)) continue;
    if (MetricOf(ev.kind) != metric) continue;
    const double r = options_.ramp_seconds;
    const double a = options_.peak;
    if (t < ev.onset || t >= ev.end) continue;
    if (t < ev.onset + r) {
      s.value += a * (t - ev.onset) / r;
      s.slope += a / r;
    } else if (t < ev.end - r) {
      s.value += a;
    } else {
      s.value += a * (ev.end - t) / r;
      s.slope -= a / r;
    }
  }
  return s;
}

Tuple TelemetryGenerator::NextTuple() {
  const size_t host = next_host_;
  next_host_ = (next_host_ + 1) % options_.num_hosts;

  Tuple t;
  t.timestamp = now_;
  t.values.reserve(1 + 2 * kNumMetrics);
  t.values.push_back(Value(static_cast<int64_t>(host)));
  for (size_t m = 0; m < kNumMetrics; ++m) {
    const MetricSample s = Eval(host, m, now_);
    t.values.push_back(Value(s.value));
    t.values.push_back(Value(s.slope));
  }
  now_ += 1.0 / options_.tuple_rate;
  return t;
}

std::vector<Tuple> TelemetryGenerator::Generate(size_t n) {
  std::vector<Tuple> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(NextTuple());
  return out;
}

std::vector<Tuple> TelemetryGenerator::GenerateAll() {
  return Generate(
      static_cast<size_t>(options_.duration * options_.tuple_rate));
}

namespace {

// epoch -> filter(attr > threshold) -> distinct, the shared tail of the
// single-attribute detections.
Result<QuerySpec::NodeId> AddThresholdDetection(
    QuerySpec* spec, const TelemetryQueryParams& params,
    const std::string& prefix, QuerySpec::Input input,
    const std::string& attribute, double threshold) {
  EpochSpec epoch;
  epoch.epoch_seconds = params.epoch_seconds;
  const QuerySpec::NodeId e =
      spec->AddEpoch(prefix + ".epoch", std::move(input), epoch);

  FilterSpec filter;
  filter.predicate = Predicate::Comparison(ComparisonTerm::Simple(
      AttrRef::Left(attribute), CmpOp::kGt, Operand::Constant(threshold)));
  const QuerySpec::NodeId f = spec->AddFilter(
      prefix + ".filter", QuerySpec::Input::Node(e), filter);

  DistinctSpec distinct;
  distinct.epoch_seconds = params.epoch_seconds;
  return spec->AddDistinct(prefix + ".distinct", QuerySpec::Input::Node(f),
                           distinct);
}

}  // namespace

Result<QuerySpec::NodeId> AddSynFloodQuery(
    QuerySpec* spec, const TelemetryQueryParams& params) {
  PULSE_ASSIGN_OR_RETURN(StreamSpec stream, spec->stream(params.stream));
  (void)stream;
  MapSpec map;
  map.outputs = {ComputedAttr::Difference("syn_excess",
                                          AttrRef::Left("syn_rate"),
                                          AttrRef::Left("ack_rate"))};
  map.keep_inputs = true;
  const QuerySpec::NodeId m = spec->AddMap(
      "syn_flood.excess", QuerySpec::Input::Stream(params.stream), map);
  return AddThresholdDetection(spec, params, "syn_flood",
                               QuerySpec::Input::Node(m), "syn_excess",
                               params.syn_excess_threshold);
}

Result<QuerySpec::NodeId> AddPortScanQuery(
    QuerySpec* spec, const TelemetryQueryParams& params) {
  PULSE_ASSIGN_OR_RETURN(StreamSpec stream, spec->stream(params.stream));
  (void)stream;
  return AddThresholdDetection(
      spec, params, "port_scan", QuerySpec::Input::Stream(params.stream),
      "port_spread", params.port_spread_threshold);
}

Result<QuerySpec::NodeId> AddDdosVictimQuery(
    QuerySpec* spec, const TelemetryQueryParams& params) {
  PULSE_ASSIGN_OR_RETURN(StreamSpec stream, spec->stream(params.stream));
  (void)stream;
  return AddThresholdDetection(
      spec, params, "ddos_victim", QuerySpec::Input::Stream(params.stream),
      "in_rate", params.in_rate_threshold);
}

Result<QuerySpec::NodeId> AddSuperSpreaderQuery(
    QuerySpec* spec, const TelemetryQueryParams& params) {
  PULSE_ASSIGN_OR_RETURN(StreamSpec stream, spec->stream(params.stream));
  (void)stream;
  return AddThresholdDetection(
      spec, params, "super_spreader",
      QuerySpec::Input::Stream(params.stream), "fanout",
      params.fanout_threshold);
}

Result<QuerySpec::NodeId> AddHeavyHitterQuery(
    QuerySpec* spec, const TelemetryQueryParams& params) {
  PULSE_ASSIGN_OR_RETURN(StreamSpec stream, spec->stream(params.stream));
  (void)stream;
  AggregateSpec agg;
  agg.fn = AggFn::kAvg;
  agg.attribute = "in_rate";
  agg.output_attribute = "avg_in";
  agg.window_seconds = params.heavy_window;
  agg.slide_seconds = params.heavy_slide;
  agg.per_key = true;
  const QuerySpec::NodeId a = spec->AddAggregate(
      "heavy_hitter.avg", QuerySpec::Input::Stream(params.stream), agg);

  FilterSpec having;
  having.predicate = Predicate::Comparison(ComparisonTerm::Simple(
      AttrRef::Left("avg_in"), CmpOp::kGt,
      Operand::Constant(params.heavy_threshold)));
  return spec->AddFilter("heavy_hitter.having", QuerySpec::Input::Node(a),
                         having);
}

}  // namespace pulse
