# Empty dependencies file for pulse_map_group_test.
# This may be replaced when dependencies are built.
