#include "obs/op_metrics.h"

#include <sstream>

namespace pulse {

std::string OperatorMetrics::ToString() const {
  std::ostringstream os;
  os << "in=" << tuples_in << " out=" << tuples_out
     << " invocations=" << invocations << " comparisons=" << comparisons
     << " cpu_s=" << processing_seconds();
  return os.str();
}

void RegisterOperatorViews(obs::ViewGroup& group, const std::string& op_name,
                           const OperatorMetrics& metrics) {
  const std::string prefix = "op/" + op_name + "/";
  group.AddCounterView(prefix + "in", &metrics.tuples_in);
  group.AddCounterView(prefix + "out", &metrics.tuples_out);
  group.AddCounterView(prefix + "processing_ns", &metrics.processing_ns);
  group.AddCounterView(prefix + "invocations", &metrics.invocations);
  group.AddCounterView(prefix + "comparisons", &metrics.comparisons);
}

void RegisterOperatorViews(obs::ViewGroup& group, const std::string& op_name,
                           const PulseOperatorMetrics& metrics) {
  const std::string prefix = "op/" + op_name + "/";
  group.AddCounterView(prefix + "in", &metrics.segments_in);
  group.AddCounterView(prefix + "out", &metrics.segments_out);
  group.AddCounterView(prefix + "processing_ns", &metrics.processing_ns);
  group.AddCounterView(prefix + "solves", &metrics.solves);
  group.AddGaugeView(prefix + "state_size", &metrics.state_size);
}

}  // namespace pulse
