#include "engine/epoch.h"

#include <cmath>

#include "util/logging.h"

namespace pulse {

int64_t EpochIndexOf(double t, double epoch_seconds) {
  return static_cast<int64_t>(std::floor(t / epoch_seconds));
}

EpochMark::EpochMark(std::string name,
                     std::shared_ptr<const Schema> input_schema,
                     double epoch_seconds, std::string output_attribute)
    : Operator(std::move(name)), epoch_seconds_(epoch_seconds) {
  PULSE_CHECK(input_schema != nullptr);
  PULSE_CHECK(epoch_seconds_ > 0.0);
  std::vector<Field> fields = input_schema->fields();
  fields.push_back({std::move(output_attribute), ValueType::kInt64});
  schema_ = Schema::Make(std::move(fields));
}

Status EpochMark::Process(size_t port, const Tuple& input,
                          std::vector<Tuple>* out) {
  PULSE_CHECK(port == 0);
  ++metrics_.invocations;
  ++metrics_.tuples_in;
  Tuple result = input;
  result.values.push_back(Value(EpochIndexOf(input.timestamp,
                                             epoch_seconds_)));
  out->push_back(std::move(result));
  ++metrics_.tuples_out;
  return Status::OK();
}

}  // namespace pulse
