# Empty dependencies file for pulse_model.
# This may be replaced when dependencies are built.
