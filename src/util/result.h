#ifndef PULSE_UTIL_RESULT_H_
#define PULSE_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace pulse {

/// Value-or-Status, the library's fallible-return type (Arrow's
/// arrow::Result idiom). A Result is either OK and holds a T, or holds a
/// non-OK Status. Accessing the value of a failed Result is a programming
/// error caught by assert in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value: `return some_t;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a (non-OK) status: `return st;`.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "OK Status requires a value; use Result(T)");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when failed.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK unless value_ is absent.
  std::optional<T> value_;
};

/// Unwraps a Result into `lhs`, returning the error Status on failure.
/// Usage: PULSE_ASSIGN_OR_RETURN(auto x, ComputeX());
#define PULSE_ASSIGN_OR_RETURN_IMPL(var, lhs, rexpr) \
  auto var = (rexpr);                                \
  if (!var.ok()) return var.status();                \
  lhs = std::move(var).value()

#define PULSE_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define PULSE_ASSIGN_OR_RETURN_NAME(x, y) PULSE_ASSIGN_OR_RETURN_CONCAT(x, y)
#define PULSE_ASSIGN_OR_RETURN(lhs, rexpr)                                  \
  PULSE_ASSIGN_OR_RETURN_IMPL(                                              \
      PULSE_ASSIGN_OR_RETURN_NAME(_result_tmp_, __LINE__), lhs, rexpr)

}  // namespace pulse

#endif  // PULSE_UTIL_RESULT_H_
