#include "serve/batcher.h"

#include <algorithm>
#include <bit>

namespace pulse {
namespace serve {

MicroBatcher::MicroBatcher(BatcherOptions options) : options_(options) {
  if (options_.min_batch == 0) options_.min_batch = 1;
  if (options_.max_batch < options_.min_batch) {
    options_.max_batch = options_.min_batch;
  }
  if (options_.ewma_alpha <= 0.0 || options_.ewma_alpha > 1.0) {
    options_.ewma_alpha = 0.125;
  }
}

void MicroBatcher::RecordArrival(uint64_t now_ns) {
  if (have_last_) {
    const double gap =
        static_cast<double>(now_ns - std::min(now_ns, last_arrival_ns_));
    ewma_gap_ns_ = ewma_gap_ns_ == 0.0
                       ? gap
                       : ewma_gap_ns_ +
                             options_.ewma_alpha * (gap - ewma_gap_ns_);
    published_gap_bits_.store(std::bit_cast<uint64_t>(ewma_gap_ns_),
                              std::memory_order_relaxed);
  }
  last_arrival_ns_ = now_ns;
  have_last_ = true;
}

size_t MicroBatcher::TargetBatchSize() const {
  const double gap = std::bit_cast<double>(
      published_gap_bits_.load(std::memory_order_relaxed));
  if (gap <= 0.0) return options_.min_batch;
  const double target =
      static_cast<double>(options_.target_batch_ns) / gap;
  if (target <= static_cast<double>(options_.min_batch)) {
    return options_.min_batch;
  }
  if (target >= static_cast<double>(options_.max_batch)) {
    return options_.max_batch;
  }
  return static_cast<size_t>(target);
}

double MicroBatcher::ArrivalRatePerSec() const {
  const double gap = std::bit_cast<double>(
      published_gap_bits_.load(std::memory_order_relaxed));
  return gap <= 0.0 ? 0.0 : 1e9 / gap;
}

}  // namespace serve
}  // namespace pulse
