file(REMOVE_RECURSE
  "CMakeFiles/equation_system_test.dir/equation_system_test.cc.o"
  "CMakeFiles/equation_system_test.dir/equation_system_test.cc.o.d"
  "equation_system_test"
  "equation_system_test.pdb"
  "equation_system_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equation_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
