file(REMOVE_RECURSE
  "libpulse_core.a"
)
