#ifndef PULSE_MODEL_SEGMENT_H_
#define PULSE_MODEL_SEGMENT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "math/interval_set.h"
#include "math/polynomial.h"
#include "util/result.h"

namespace pulse {

/// Discrete entity identifier carried by a data stream (paper Section II-B,
/// "Key attributes"): keys are discrete, unique, and modeled attributes are
/// functional dependents of keys throughout the dataflow (Property 2 of
/// query inversion).
using Key = int64_t;

/// A model segment: the first-class datatype of Pulse query processing
/// (paper Section III-C). A segment is a time range [tl, tu) over which a
/// particular set of polynomial coefficients is valid, written
/// s = ([tl, tu), c) in the paper. A segment carries:
///   - the key of the entity it describes,
///   - one polynomial per modeled attribute (in segment-local time,
///     i.e. evaluated at t - range.lo so coefficients stay small),
///   - unmodeled attributes, constant for the segment's lifespan.
struct Segment {
  Key key = 0;
  /// Engine-assigned identifier, unique per operator output; lineage
  /// entries reference producers by this id (0 = unassigned).
  uint64_t id = 0;
  /// Validity range; by stream convention half-open [tl, tu).
  Interval range = Interval::ClosedOpen(0.0, 0.0);
  /// Modeled attribute name -> polynomial in absolute time t.
  std::map<std::string, Polynomial> attributes;
  /// Unmodeled attributes (constant over the segment).
  std::map<std::string, double> unmodeled;

  Segment() = default;
  Segment(Key k, Interval r) : key(k), range(r) {}

  bool has_attribute(const std::string& name) const {
    return attributes.count(name) > 0;
  }

  /// Polynomial for `name`; fails with NotFound when absent.
  Result<Polynomial> attribute(const std::string& name) const;

  void set_attribute(const std::string& name, Polynomial p) {
    attributes[name] = std::move(p);
  }

  /// Evaluates attribute `name` at absolute time t (t need not lie inside
  /// range; extrapolation is the predictive-processing use case).
  Result<double> EvaluateAttribute(const std::string& name, double t) const;

  /// A copy restricted to range ∩ clip (attributes unchanged). The result
  /// range may be empty; callers drop such segments.
  Segment ClipTo(const Interval& clip) const;

  /// True when both segments have the same key and their ranges share at
  /// least one point.
  bool OverlapsInTime(const Segment& other) const {
    return range.Intersects(other.range);
  }

  std::string ToString() const;
};

/// A batch of segments flowing between Pulse operators, ordered by
/// range.lo. Also used as operator output ("equation systems consume
/// segments and produce segments", Section III-C).
using SegmentBatch = std::vector<Segment>;

/// Applies the paper's update semantics (Section II-B) to an ordered
/// per-key timeline: when a successor segment overlaps its predecessors
/// temporally, the successor acts as an update for the overlap — earlier
/// segments are truncated to end where the newcomer begins. `timeline`
/// must be ordered by arrival; `incoming` is appended.
void ApplySegmentUpdate(std::vector<Segment>* timeline, Segment incoming);

}  // namespace pulse

#endif  // PULSE_MODEL_SEGMENT_H_
